//! `cr-serve` — the JSONL face of the batch solver service.
//!
//! Two transports, one protocol (specified in `docs/WIRE.md`):
//!
//! * **stdin mode** (default): reads request objects line by line from
//!   stdin.  A **blank line** flushes the accumulated batch through the
//!   warm [`SolverService`] — responses come back one line each, in input
//!   order, followed by a stdout flush — so a driver process can stream
//!   multiple batches through one process and keep the per-instance
//!   conversion cache warm across them.  EOF flushes the final batch and
//!   exits.  A blank-line flush with no accumulated requests answers with a
//!   structured `bad_request` row instead of being silently swallowed.
//! * **socket mode** (`--listen ADDR`): binds a TCP listener and serves
//!   many concurrent clients through `cr_service::net` — same line
//!   protocol per connection, plus per-client quotas (`quota_exceeded`),
//!   global load shedding (`overloaded`), schedule streaming and graceful
//!   drain on a `{"control":"shutdown"}` frame.  The bound address is
//!   printed as a `{"listening": "..."}` line on stdout so drivers can use
//!   port 0.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cr-service --bin cr-serve < requests.jsonl
//! cargo run --release -p cr-service --bin cr-serve -- --listen 127.0.0.1:7878 \
//!     [--quota N] [--max-inflight N] [--max-clients N] [--stream-threshold N] \
//!     [--deadline-ms N] [--idle-timeout-ms N] [--debug-methods]
//! ```
//!
//! Bad flags and bind failures are *usage errors*: one line on stderr and
//! exit code 2, never a panic backtrace.

#![forbid(unsafe_code)]

use cr_service::net::{Server, ServerConfig};
use cr_service::{wire, SolverService};
use std::io::{self, BufRead, Write};
use std::sync::Arc;

const USAGE: &str = "usage: cr-serve [--listen ADDR] [--quota N] [--max-inflight N] \
[--max-clients N] [--stream-threshold N] [--deadline-ms N] [--idle-timeout-ms N] \
[--metrics-every N] [--debug-methods]\nWithout --listen, serves the JSONL protocol \
on stdin/stdout.  --metrics-every N prints one observability summary line to \
stderr every N seconds.";

/// Reports a usage error the way a CLI should: one line on stderr, the
/// usage string, exit code 2 (distinct from runtime failures).
fn usage_error(message: &str) -> ! {
    eprintln!("cr-serve: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Reports a lost stdio peer (closed pipe, read error) the way a filter
/// should: one line on stderr, exit code 1, never a panic backtrace.
fn stdio_error(what: &str, e: &io::Error) -> ! {
    eprintln!("cr-serve: {what}: {e}");
    std::process::exit(1);
}

fn flush_batch(
    service: &SolverService,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    out: &mut impl Write,
) -> io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let responses = wire::process_batch(service, batch, *next_id);
    *next_id += batch.len() as u64;
    batch.clear();
    for line in responses {
        writeln!(out, "{line}")?;
    }
    out.flush()
}

fn serve_stdin(service: &SolverService) {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut batch: Vec<String> = Vec::new();
    let mut next_id: u64 = 0;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => stdio_error("cannot read request line", &e),
        };
        let wrote = if line.trim().is_empty() {
            if batch.is_empty() {
                // A flush with nothing to flush is a protocol error the
                // client should hear about, not a silent no-op.
                let response = wire::empty_flush_line(next_id);
                next_id += 1;
                writeln!(out, "{response}").and_then(|()| out.flush())
            } else {
                flush_batch(service, &mut batch, &mut next_id, &mut out)
            }
        } else {
            batch.push(line);
            Ok(())
        };
        if let Err(e) = wrote {
            stdio_error("cannot write responses (client gone?)", &e);
        }
    }
    if let Err(e) = flush_batch(service, &mut batch, &mut next_id, &mut out) {
        stdio_error("cannot write responses (client gone?)", &e);
    }
}

fn serve_socket(service: SolverService, addr: &str, config: ServerConfig) {
    let handle = match Server::spawn(Arc::new(service), addr, config) {
        Ok(handle) => handle,
        Err(e) => usage_error(&format!("cannot bind {addr}: {e}")),
    };
    println!("{{\"listening\":\"{}\"}}", handle.addr());
    if let Err(e) = io::stdout().flush() {
        stdio_error("cannot write the listening line", &e);
    }
    // Serve until a client requests a drain via {"control":"shutdown"};
    // join() then returns once every in-flight batch has answered.
    handle.join();
}

fn parse_usize(flag: &str, value: Option<String>) -> usize {
    match value {
        None => usage_error(&format!("{flag} requires a value")),
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| usage_error(&format!("{flag}: {e}"))),
    }
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value {
        None => usage_error(&format!("{flag} requires a value")),
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| usage_error(&format!("{flag}: {e}"))),
    }
}

/// Spawns the `--metrics-every N` reporter: a detached background thread
/// printing one JSON summary line (counters and gauges of the service's
/// observability registry, plus span counts) to stderr every `every`
/// seconds.  Stderr so the JSONL response stream on stdout stays clean.
fn spawn_metrics_reporter(service: &SolverService, every: u64) {
    let registry = service.obs_registry().clone();
    std::thread::Builder::new()
        .name("cr-serve-metrics".to_string())
        .spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_secs(every.max(1)));
            let snapshot = registry.snapshot();
            let mut line = String::from(r#"{"metrics_report":1"#);
            for metric in &snapshot.metrics {
                match &metric.value {
                    cr_obs::MetricValue::Counter(v) => {
                        line.push_str(&format!(r#","{}":{v}"#, metric.name));
                    }
                    cr_obs::MetricValue::Gauge(v) => {
                        line.push_str(&format!(r#","{}":{v}"#, metric.name));
                    }
                    cr_obs::MetricValue::Histogram(h) => {
                        line.push_str(&format!(r#","{}.count":{}"#, metric.name, h.count));
                    }
                }
            }
            for span in &snapshot.spans {
                line.push_str(&format!(r#","span:{}":{}"#, span.path, span.count));
            }
            line.push('}');
            eprintln!("{line}");
        })
        .unwrap_or_else(|e| usage_error(&format!("cannot spawn the metrics reporter: {e}")));
}

fn main() {
    let mut listen: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut debug_methods = false;
    let mut metrics_every: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => usage_error("--listen requires ADDR"),
            },
            "--quota" => config.per_client_quota = parse_usize("--quota", args.next()),
            "--max-inflight" => config.max_inflight = parse_usize("--max-inflight", args.next()),
            "--max-clients" => config.max_clients = parse_usize("--max-clients", args.next()),
            "--stream-threshold" => {
                config.stream.threshold_steps = parse_usize("--stream-threshold", args.next());
            }
            "--deadline-ms" => {
                config.default_deadline_ms = Some(parse_u64("--deadline-ms", args.next()));
            }
            "--idle-timeout-ms" => {
                // 0 disables the idle timeout.
                let ms = parse_u64("--idle-timeout-ms", args.next());
                config.idle_timeout_ms = (ms > 0).then_some(ms);
            }
            "--metrics-every" => {
                // 0 disables the reporter.
                let s = parse_u64("--metrics-every", args.next());
                metrics_every = (s > 0).then_some(s);
            }
            "--debug-methods" => debug_methods = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let service = if debug_methods {
        SolverService::with_standard_registry_and_debug()
    } else {
        SolverService::with_standard_registry()
    };
    if let Some(every) = metrics_every {
        spawn_metrics_reporter(&service, every);
    }
    match listen {
        Some(addr) => serve_socket(service, &addr, config),
        None => serve_stdin(&service),
    }
}
