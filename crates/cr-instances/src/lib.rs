//! # cr-instances — instance families for the CRSharing problem
//!
//! The paper's evaluation is analytical: its "datasets" are worst-case
//! constructions, illustrative examples and a polynomial-time reduction.
//! This crate makes all of them available programmatically, adds seeded
//! random families and synthetic many-core workloads for the simulator, and
//! provides JSON (de)serialization for experiment artifacts.
//!
//! * [`worst_case`] — Figure 1/2 examples, the Theorem 3 RoundRobin family
//!   (Figure 3) and the Theorem 8 GreedyBalance block family (Figure 5);
//! * [`reduction`] — the Theorem 4 Partition reduction and a Partition
//!   solver for ground truth;
//! * [`random`] — seeded random unit-size and arbitrary-size instances;
//! * [`workload`] — synthetic multi-phase many-core workloads;
//! * [`serde_io`] — JSON persistence of instances, schedules and
//!   measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod random;
pub mod reduction;
pub mod serde_io;
pub mod workload;
pub mod worst_case;

pub use random::{
    random_batch, random_multi_batch, random_multi_unit_instance, random_sized_instance,
    random_unit_instance, RandomConfig, RequirementProfile,
};
pub use reduction::{is_yes_instance, partition_to_crsharing, solve_partition, PartitionReduction};
pub use serde_io::{MeasurementRecord, NamedInstance};
pub use workload::{average_demand, generate_workload, TaskMix, WorkloadConfig};
pub use worst_case::{
    figure1_instance, figure2_instance, greedy_balance_max_blocks, greedy_balance_worst_case,
    greedy_balance_worst_case_steps, rotating_bottleneck_instance, round_robin_worst_case,
    round_robin_worst_case_opt, wide_oversubscribed_instance,
};
