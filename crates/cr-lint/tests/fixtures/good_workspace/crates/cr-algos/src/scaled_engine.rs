//! Fixture hot module: every loop either polls the gate or carries a
//! written-down justification.

use crate::solver::SolveError;

/// Sums the DP cells, polling the cancellation gate each cell.
pub fn sweep(cells: &[u64], gate: &mut impl FnMut() -> Result<(), SolveError>) -> Result<u64, SolveError> {
    let mut acc = 0u64;
    for &cell in cells {
        gate()?;
        acc = acc.wrapping_add(cell);
    }
    // lint: allow(cancel_coverage) — bounded: a fixed four-iteration epilogue
    for _ in 0..4 {
        acc = acc.wrapping_add(1);
    }
    Ok(acc)
}
