//! Fixture serving crate: panic-free and lock-disciplined.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

use std::io::Write;
use std::sync::Mutex;

/// Reports the cache size without holding the guard across I/O: the
/// length is copied out inside a block, then the guard is already dead
/// when the write happens.
pub fn report_len(cache: &Mutex<Vec<u8>>, out: &mut impl Write) -> std::io::Result<()> {
    let len = {
        match cache.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    };
    writeln!(out, "{len}")
}
