//! `cr-lint` — run the workspace-invariant static analysis pass.
//!
//! ```text
//! cr-lint [--root PATH] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/setup error.
//! Without `--root`, walks up from the current directory to the first
//! directory holding both `Cargo.toml` and `crates/`.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes `text` (plus a newline) to stdout, exiting quietly when the
/// reader has gone away (`cr-lint | head` must not panic-backtrace).
fn emit(text: &str) {
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(1);
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--json" => json = true,
            "--list-rules" => {
                for rule in cr_lint::rules::RULE_NAMES {
                    emit(rule);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                emit(
                    "cr-lint [--root PATH] [--json] [--list-rules]\n\n\
                     Workspace-invariant static analysis: cancel-gate coverage, panic\n\
                     hygiene, lock discipline, wire-vocabulary sync, crate hygiene.\n\
                     See docs/LINTS.md. Exit: 0 clean, 1 violations, 2 usage error.",
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            return usage(
                "no workspace root found (looked upward for Cargo.toml + crates/); pass --root",
            );
        }
    };

    let report = match cr_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cr-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        emit(&cr_lint::diag::render_json(
            &root.display().to_string(),
            &report.diagnostics,
            report.files_scanned,
        ));
    } else {
        for d in &report.diagnostics {
            emit(&d.to_string());
        }
        eprintln!(
            "cr-lint: {} violation(s) across {} file(s) scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the workspace root.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cr-lint: {msg} (try --help)");
    ExitCode::from(2)
}
