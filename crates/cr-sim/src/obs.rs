//! Exports the simulator's exact waste accounting into the process-wide
//! observability registry.
//!
//! The step loops already compute `wasted_units_per_step` and per-core
//! starvation exactly (integer units, no estimation); this module folds a
//! finished report into the registry once per run — windowed utilization
//! lands in a parts-per-million histogram, starvation and the bottleneck
//! resource in gauges, raw unit totals in counters.  Everything stays
//! integer-only, matching the cr-obs recording contract.

use cr_obs::{names, Registry};

use crate::metrics::{MultiSimReport, SimReport};

/// Steps per utilization window: each window of this many simulated steps
/// contributes one observation to the `sim.window_utilization_ppm`
/// histogram (the final partial window is scaled by its actual length, so
/// short runs still report).
pub const UTILIZATION_WINDOW: usize = 32;

/// Parts-per-million denominator.
const PPM: u64 = 1_000_000;

/// Decile boundaries for the utilization histogram (ppm).
const UTILIZATION_BOUNDS: [u64; 10] = [
    100_000, 200_000, 300_000, 400_000, 500_000, 600_000, 700_000, 800_000, 900_000, 1_000_000,
];

/// Widens a `usize` without a panic path.
fn wide(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Observes one resource layer's waste series as windowed utilization.
fn observe_windows(registry: &Registry, capacity: u64, wasted_per_step: &[u64]) {
    if capacity == 0 {
        return;
    }
    let hist = registry.histogram(names::SIM_WINDOW_UTILIZATION_PPM, &UTILIZATION_BOUNDS);
    for window in wasted_per_step.chunks(UTILIZATION_WINDOW) {
        let pool = capacity.saturating_mul(wide(window.len()));
        let wasted: u64 = window.iter().fold(0u64, |acc, &w| acc.saturating_add(w));
        let useful = pool.saturating_sub(wasted);
        hist.observe(useful.saturating_mul(PPM) / pool.max(1));
    }
}

/// Folds one single-resource run into the global registry.
pub(crate) fn record_report(report: &SimReport) {
    let registry = Registry::global();
    if !registry.enabled() {
        return;
    }
    registry
        .counter(names::SIM_STEPS)
        .add(wide(report.makespan));
    registry
        .counter(names::SIM_CONSUMED_UNITS)
        .add(report.consumed_units);
    registry
        .counter(names::SIM_WASTED_UNITS)
        .add(report.wasted_units_total());
    observe_windows(registry, report.capacity, &report.wasted_units_per_step);
    let starved = report
        .per_core
        .iter()
        .filter(|core| core.starved_steps > 0)
        .count();
    registry
        .gauge(names::SIM_STARVED_CORES)
        .set(i64::try_from(starved).unwrap_or(i64::MAX));
}

/// Folds one multi-resource run into the global registry (one utilization
/// window series per resource layer).
pub(crate) fn record_multi_report(report: &MultiSimReport) {
    let registry = Registry::global();
    if !registry.enabled() {
        return;
    }
    registry
        .counter(names::SIM_STEPS)
        .add(wide(report.makespan));
    let consumed: u64 = report
        .consumed_units
        .iter()
        .fold(0u64, |acc, &c| acc.saturating_add(c));
    registry.counter(names::SIM_CONSUMED_UNITS).add(consumed);
    let wasted: u64 = report
        .wasted_units_per_step
        .iter()
        .flatten()
        .fold(0u64, |acc, &w| acc.saturating_add(w));
    registry.counter(names::SIM_WASTED_UNITS).add(wasted);
    for (capacity, series) in report
        .capacities
        .iter()
        .zip(report.wasted_units_per_step.iter())
    {
        observe_windows(registry, *capacity, series);
    }
    let starved = report
        .per_core
        .iter()
        .filter(|core| core.starved_steps > 0)
        .count();
    registry
        .gauge(names::SIM_STARVED_CORES)
        .set(i64::try_from(starved).unwrap_or(i64::MAX));
    registry
        .gauge(names::SIM_BOTTLENECK_RESOURCE)
        .set(i64::try_from(report.bottleneck_resource()).unwrap_or(i64::MAX));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_report_ppm_utilization() {
        let reg = Registry::new();
        // capacity 10, 3 steps wasting 0/5/10 → one partial window,
        // pool 30, wasted 15 → 500_000 ppm.
        observe_windows(&reg, 10, &[0, 5, 10]);
        let snap = reg.snapshot();
        let m = snap
            .metrics
            .iter()
            .find(|m| m.name == names::SIM_WINDOW_UTILIZATION_PPM);
        if reg.enabled() {
            let Some(m) = m else {
                panic!("histogram missing")
            };
            let cr_obs::MetricValue::Histogram(h) = &m.value else {
                panic!("wrong kind")
            };
            assert_eq!(h.count, 1);
            assert_eq!(h.sum, 500_000);
        }
    }
}
