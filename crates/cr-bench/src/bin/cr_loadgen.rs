//! `cr-loadgen` — sustained mixed-traffic load generator for the socket
//! serving tier.
//!
//! Drives N concurrent client connections against a running
//! `cr-serve --listen` server (or, with no `--addr`, an in-process server
//! it spawns itself) with a Poisson-paced blend of heuristic, exact and
//! simulator requests, then prints a latency/throughput summary.
//! `--multi-every N` makes every N-th request of each client carry one
//! extra resource layer (the `k = 2` wire shorthand), so the sustained
//! load also exercises the multi-resource solve path:
//!
//! ```text
//! cr-loadgen [--addr HOST:PORT] [--clients N] [--requests N]
//!            [--rate HZ] [--seed N] [--multi-every N]
//! cr-loadgen --addr HOST:PORT --smoke
//! cr-loadgen --addr HOST:PORT --chaos [--rounds N]
//! ```
//!
//! `--smoke` is the CI handshake: replay the committed golden batch, check
//! the responses byte-for-byte against the in-process reference, then drain
//! the server via `{"control":"shutdown"}` and verify the clean close.
//! Exits non-zero on any divergence.
//!
//! `--chaos` runs the fault-injection suite of [`cr_bench::chaos`]:
//! mid-line disconnects, slow-loris dribbling, malformed frames,
//! deadline-busting solves and kill-while-streaming, with a golden smoke
//! byte-identity check plus an `inflight == 0` stats probe after every
//! storm.  Exits non-zero on the first broken contract.

#![forbid(unsafe_code)]

use cr_bench::chaos::{self, ChaosConfig};
use cr_bench::loadgen::{self, LoadConfig};
use cr_service::net::{Server, ServerConfig};
use cr_service::SolverService;
use std::net::SocketAddr;
use std::sync::Arc;

struct Args {
    addr: Option<SocketAddr>,
    smoke: bool,
    chaos: bool,
    obs: bool,
    chaos_config: ChaosConfig,
    config: LoadConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        smoke: false,
        chaos: false,
        obs: false,
        chaos_config: ChaosConfig::default(),
        config: LoadConfig::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => {
                let text = value("--addr");
                args.addr = Some(
                    text.parse()
                        .unwrap_or_else(|e| panic!("--addr {text}: {e}")),
                );
            }
            "--smoke" => args.smoke = true,
            "--chaos" => args.chaos = true,
            "--obs" => args.obs = true,
            "--rounds" => {
                args.chaos_config.rounds = value("--rounds").parse().expect("--rounds");
            }
            "--clients" => args.config.clients = value("--clients").parse().expect("--clients"),
            "--requests" => {
                args.config.requests_per_client = value("--requests").parse().expect("--requests");
            }
            "--rate" => args.config.rate_hz = value("--rate").parse().expect("--rate"),
            "--seed" => args.config.seed = value("--seed").parse().expect("--seed"),
            "--multi-every" => {
                args.config.multi_every = value("--multi-every").parse().expect("--multi-every");
            }
            "--help" | "-h" => {
                println!(
                    "usage: cr-loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
                     [--rate HZ] [--seed N] [--multi-every N] [--obs] [--smoke] \
                     [--chaos [--rounds N]]\n\
                     Without --addr, spawns an in-process server to load.\n\
                     --multi-every N: every N-th request carries an extra resource layer.\n\
                     --obs: after the run, scrape the server's stats + metrics frames and \
                     print them after the client-side report."
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // No --addr: load an in-process server (handy for a one-command local
    // benchmark; CI drives a separately spawned cr-serve instead).
    let local = if args.addr.is_none() {
        let service = Arc::new(SolverService::with_standard_registry());
        Some(
            Server::spawn(service, "127.0.0.1:0", ServerConfig::default())
                .expect("spawn in-process server"),
        )
    } else {
        None
    };
    let addr = args
        .addr
        .unwrap_or_else(|| local.as_ref().expect("in-process server").addr());

    if args.smoke {
        match loadgen::smoke(addr) {
            Ok(()) => println!("{{\"smoke\":\"ok\",\"addr\":\"{addr}\"}}"),
            Err(e) => {
                eprintln!("cr-loadgen smoke failed: {e}");
                std::process::exit(1);
            }
        }
    } else if args.chaos {
        match chaos::run(addr, &args.chaos_config) {
            Ok(report) => println!(
                "{{\"chaos\":\"ok\",\"addr\":\"{addr}\",\"storms\":{},\"smoke_checks\":{},\
                 \"deadline_exceeded_rows\":{},\"bad_request_rows\":{},\
                 \"connections_killed\":{}}}",
                report.storms,
                report.smoke_checks,
                report.deadline_exceeded_rows,
                report.bad_request_rows,
                report.connections_killed
            ),
            Err(e) => {
                eprintln!("cr-loadgen chaos failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let report = loadgen::run(addr, &args.config);
        println!(
            "{{\"addr\":\"{addr}\",\"clients\":{},\"requests\":{},\"ok\":{},\"rejected\":{},\
             \"retries\":{},\"retry_exhausted\":{},\
             \"wall_secs\":{:.3},\"p50_ms\":{:.2},\"p95_ms\":{:.2},\"p99_ms\":{:.2},\
             \"max_ms\":{:.2},\"requests_per_sec\":{:.1}}}",
            args.config.clients,
            report.answered(),
            report.ok,
            report.rejected,
            report.retries,
            report.retry_exhausted,
            report.wall_secs,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.max_ms,
            report.requests_per_sec
        );
        if args.obs {
            // Join the client-side percentiles above with the server-side
            // view: the stats frame, then the full metrics dump, scraped on
            // a dedicated connection after the load finished.
            match loadgen::scrape_obs(addr) {
                Ok(scrape) => {
                    println!("{}", scrape.stats);
                    println!("{}", scrape.header);
                    for line in &scrape.lines {
                        println!("{line}");
                    }
                }
                Err(e) => {
                    eprintln!("cr-loadgen --obs scrape failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(handle) = local {
        handle.shutdown();
        handle.join();
    }
}
