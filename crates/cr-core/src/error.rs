//! Error types shared across the CRSharing model crates.

use crate::job::JobId;
use crate::rational::Ratio;
use std::fmt;

/// Errors raised when constructing or validating a problem [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The instance has no processors.
    NoProcessors,
    /// A resource requirement lies outside the unit interval `[0, 1]`.
    ///
    /// The paper's base model requires `r_ij ∈ [0, 1]`; requirements above 1
    /// must first be rescaled (footnote 3 of the paper), see
    /// `cr_algos::arbitrary::rescale_requirements`.
    RequirementOutOfRange {
        /// The offending job.
        job: JobId,
        /// Its out-of-range requirement.
        requirement: Ratio,
    },
    /// A processing volume is not strictly positive.
    NonPositiveVolume {
        /// The offending job.
        job: JobId,
        /// Its non-positive volume.
        volume: Ratio,
    },
    /// An extra resource layer does not have one requirement row per
    /// processor.
    ResourceLayerProcessorMismatch {
        /// Zero-based resource index of the offending layer (extra layers
        /// start at resource `1`; resource `0` is the base requirement).
        resource: usize,
        /// Number of processors in the instance.
        expected: usize,
        /// Number of rows found in the layer.
        found: usize,
    },
    /// A row of an extra resource layer does not have one requirement per
    /// job of the corresponding processor.
    ResourceLayerJobsMismatch {
        /// Zero-based resource index of the offending layer.
        resource: usize,
        /// The offending processor.
        processor: usize,
        /// Number of jobs on that processor.
        expected: usize,
        /// Number of requirements found in the row.
        found: usize,
    },
    /// A requirement on an extra resource lies outside the unit interval
    /// `[0, 1]`.
    ResourceRequirementOutOfRange {
        /// Zero-based resource index of the offending layer.
        resource: usize,
        /// The offending job.
        job: JobId,
        /// Its out-of-range requirement.
        requirement: Ratio,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NoProcessors => write!(f, "instance has no processors"),
            InstanceError::RequirementOutOfRange { job, requirement } => write!(
                f,
                "job {job} has resource requirement {requirement} outside [0, 1]"
            ),
            InstanceError::NonPositiveVolume { job, volume } => {
                write!(f, "job {job} has non-positive processing volume {volume}")
            }
            InstanceError::ResourceLayerProcessorMismatch {
                resource,
                expected,
                found,
            } => write!(
                f,
                "resource {resource}: expected {expected} processor rows, found {found}"
            ),
            InstanceError::ResourceLayerJobsMismatch {
                resource,
                processor,
                expected,
                found,
            } => write!(
                f,
                "resource {resource}: processor {processor} has {expected} jobs but the layer \
                 row holds {found} requirements"
            ),
            InstanceError::ResourceRequirementOutOfRange {
                resource,
                job,
                requirement,
            } => write!(
                f,
                "job {job} has requirement {requirement} on resource {resource} outside [0, 1]"
            ),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Errors raised when validating a resource-assignment [`crate::Schedule`]
/// against an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule's per-step assignment vector does not have one entry per
    /// processor.
    WrongProcessorCount {
        /// Time step of the malformed assignment.
        step: usize,
        /// Number of processors in the instance.
        expected: usize,
        /// Number of shares found in the step.
        found: usize,
    },
    /// A single processor's share lies outside `[0, 1]`.
    ShareOutOfRange {
        /// Time step of the offending share.
        step: usize,
        /// Processor receiving the share.
        processor: usize,
        /// The out-of-range share.
        share: Ratio,
    },
    /// The shares of a time step sum to more than the full resource.
    ResourceOveruse {
        /// Time step in which the resource is overused.
        step: usize,
        /// Total assigned share (> 1).
        total: Ratio,
    },
    /// The schedule ended although some jobs still have remaining work.
    UnfinishedJobs {
        /// The jobs left unfinished.
        unfinished: Vec<JobId>,
    },
    /// The schedule references an instance with a different processor count.
    ProcessorCountMismatch {
        /// Processors in the instance.
        instance: usize,
        /// Processors addressed by the schedule.
        schedule: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongProcessorCount {
                step,
                expected,
                found,
            } => write!(
                f,
                "time step {step}: expected {expected} processor shares, found {found}"
            ),
            ScheduleError::ShareOutOfRange {
                step,
                processor,
                share,
            } => write!(
                f,
                "time step {step}: processor {processor} has share {share} outside [0, 1]"
            ),
            ScheduleError::ResourceOveruse { step, total } => write!(
                f,
                "time step {step}: assigned shares sum to {total} > 1 (resource overused)"
            ),
            ScheduleError::UnfinishedJobs { unfinished } => write!(
                f,
                "schedule finished but {} job(s) still have remaining work (first: {})",
                unfinished.len(),
                unfinished
                    .first()
                    .map(std::string::ToString::to_string)
                    .unwrap_or_else(|| "?".to_string())
            ),
            ScheduleError::ProcessorCountMismatch { instance, schedule } => write!(
                f,
                "instance has {instance} processors but schedule assigns {schedule}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_error_messages_mention_job() {
        let e = InstanceError::RequirementOutOfRange {
            job: JobId::new(2, 3),
            requirement: Ratio::new(3, 2),
        };
        let msg = e.to_string();
        assert!(msg.contains("3/2"));
        assert!(msg.contains("(2, 3)"));
    }

    #[test]
    fn schedule_error_messages() {
        let e = ScheduleError::ResourceOveruse {
            step: 4,
            total: Ratio::new(5, 4),
        };
        assert!(e.to_string().contains("step 4"));
        assert!(e.to_string().contains("5/4"));

        let e = ScheduleError::UnfinishedJobs {
            unfinished: vec![JobId::new(0, 1)],
        };
        assert!(e.to_string().contains("1 job"));
    }
}
