//! Multi-resource (`k ≥ 2`) runners for the six polynomial heuristics.
//!
//! Each runner drives a [`MultiStepper`] — the exact per-resource step
//! simulator from `cr-core` — splitting **every resource pool
//! independently** with the same share rule the scalar heuristic applies to
//! the single resource, and reports the makespan when all chains drain.
//! The binding resource therefore sets the pace automatically: a processor
//! advances its frontier job only once every positive layer has absorbed
//! its full per-step demand.
//!
//! Two deliberate deviations from the scalar code paths, both documented
//! here because the `k = 1` requests never route through this module (the
//! scalar implementations remain the production fast path):
//!
//! * ordering heuristics (`GreedyBalance`, `Largest`/`Smallest`
//!   `RequirementFirst`) rank processors by the **frontier job's remaining
//!   requirement vector** compared lexicographically layer by layer, the
//!   multi-resource stand-in for the scalar "remaining workload" key;
//! * the scaled (`u64`) and rational engines split pools differently —
//!   largest-remainder rounding on the per-resource grid versus exact
//!   division — so their makespans may legitimately differ for
//!   `EqualShare` / `ProportionalShare`, exactly as a finer grid would.
//!
//! Termination mirrors the scalar arguments: in serve-in-order rules the
//! first-ranked processor always receives its full per-step demand on every
//! layer (a single demand never exceeds the layer capacity), and in the
//! split rules the largest-remainder tie-break hands the lowest-ranked
//! active processor at least one unit per layer, so some chain always
//! drains and finished chains leave the active set.

use cr_core::scaled::largest_remainder_split;
use cr_core::{Instance, MultiStepper, Ratio, StepUnit};

/// Which polynomial share rule a multi-resource run applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PolyKind {
    /// Equal split of every pool over the active processors.
    EqualShare,
    /// Grant demands outright when they fit, else split proportionally.
    ProportionalShare,
    /// Serve in order: unfinished jobs desc, remaining vector desc, index.
    GreedyBalance,
    /// Serve in order of lexicographically largest remaining vector.
    LargestRequirementFirst,
    /// Serve in order of lexicographically smallest remaining vector.
    SmallestRequirementFirst,
    /// Phase over job indices, serving same-phase processors in order.
    RoundRobin,
}

/// A [`StepUnit`] that can additionally split one resource pool over
/// weighted claimants: `u64` via largest-remainder rounding on the grid,
/// [`Ratio`] via exact division.
pub(crate) trait SplitUnit: StepUnit {
    /// Splits `cap` over `weights`; all-zero weights yield all-zero shares.
    fn split_pool(cap: Self, weights: &[Self]) -> Vec<Self>;
}

impl SplitUnit for u64 {
    fn split_pool(cap: Self, weights: &[Self]) -> Vec<Self> {
        largest_remainder_split(cap, weights)
    }
}

impl SplitUnit for Ratio {
    fn split_pool(cap: Self, weights: &[Self]) -> Vec<Self> {
        let total: Ratio = weights.iter().copied().sum();
        if total == Ratio::ZERO {
            return vec![Ratio::ZERO; weights.len()];
        }
        weights.iter().map(|&w| cap * w / total).collect()
    }
}

/// Runs `kind` on the scaled per-resource grids; `None` when a layer's
/// grid overflows `u64`.
pub(crate) fn multi_makespan_scaled(kind: PolyKind, instance: &Instance) -> Option<usize> {
    let mut stepper = MultiStepper::<u64>::try_new_scaled(instance)?;
    Some(run(kind, &mut stepper))
}

/// Runs `kind` with exact rational arithmetic (never overflows).
pub(crate) fn multi_makespan_rational(kind: PolyKind, instance: &Instance) -> usize {
    let mut stepper = MultiStepper::<Ratio>::new_rational(instance);
    run(kind, &mut stepper)
}

fn run<V: SplitUnit>(kind: PolyKind, stepper: &mut MultiStepper<V>) -> usize {
    match kind {
        PolyKind::EqualShare => run_split(stepper, |s, i, r| {
            // Equal positive weight per active processor; the layer's own
            // capacity is the one positive `V` always at hand.
            if s.is_active(i) {
                s.capacity(r)
            } else {
                V::ZERO
            }
        }),
        PolyKind::ProportionalShare => run_proportional(stepper),
        PolyKind::GreedyBalance
        | PolyKind::LargestRequirementFirst
        | PolyKind::SmallestRequirementFirst => run_serve_order(kind, stepper),
        PolyKind::RoundRobin => run_round_robin(stepper),
    }
}

/// Transposes resource-major rows (`k × m`) into the processor-major
/// shares (`m × k`) that [`MultiStepper::push_step`] consumes.
fn transpose<V: StepUnit>(rows: Vec<Vec<V>>, m: usize) -> Vec<Vec<V>> {
    let mut shares = vec![Vec::with_capacity(rows.len()); m];
    for row in rows {
        for (share, slot) in row.into_iter().zip(shares.iter_mut()) {
            slot.push(share);
        }
    }
    shares
}

/// Splits every layer's pool by `weight(stepper, processor, layer)`
/// independently until all chains drain.
fn run_split<V: SplitUnit>(
    stepper: &mut MultiStepper<V>,
    weight: impl Fn(&MultiStepper<V>, usize, usize) -> V,
) -> usize {
    let m = stepper.processors();
    let k = stepper.resources();
    // lint: allow(cancel_coverage) — bounded by the termination argument in the module docs
    while !stepper.all_done() {
        let rows: Vec<Vec<V>> = (0..k)
            .map(|r| {
                let weights: Vec<V> = (0..m).map(|i| weight(stepper, i, r)).collect();
                V::split_pool(stepper.capacity(r), &weights)
            })
            .collect();
        stepper.push_step(&transpose(rows, m));
    }
    stepper.current_step()
}

/// Per layer: grant the raw demands when their sum fits the capacity,
/// otherwise split the pool proportionally to the demands.
fn run_proportional<V: SplitUnit>(stepper: &mut MultiStepper<V>) -> usize {
    let m = stepper.processors();
    let k = stepper.resources();
    // lint: allow(cancel_coverage) — bounded by the termination argument in the module docs
    while !stepper.all_done() {
        let rows: Vec<Vec<V>> = (0..k)
            .map(|r| {
                let demands: Vec<V> = (0..m).map(|i| stepper.step_demand(i, r)).collect();
                let total = demands.iter().try_fold(V::ZERO, |t, &d| t.checked_add(d));
                match total {
                    Some(t) if t <= stepper.capacity(r) => demands,
                    _ => V::split_pool(stepper.capacity(r), &demands),
                }
            })
            .collect();
        stepper.push_step(&transpose(rows, m));
    }
    stepper.current_step()
}

/// The remaining requirement vector of `processor`'s frontier job, the
/// lexicographic ordering key of the serve-in-order rules.
fn remaining_vector<V: SplitUnit>(stepper: &MultiStepper<V>, processor: usize) -> Vec<V> {
    (0..stepper.resources())
        .map(|r| stepper.remaining(processor, r))
        .collect()
}

/// Serves processors in the rule's priority order, granting each its full
/// per-layer demand while the layer's pool lasts.
fn run_serve_order<V: SplitUnit>(kind: PolyKind, stepper: &mut MultiStepper<V>) -> usize {
    let m = stepper.processors();
    // lint: allow(cancel_coverage) — bounded by the termination argument in the module docs
    while !stepper.all_done() {
        let mut order: Vec<usize> = (0..m).filter(|&i| stepper.is_active(i)).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (remaining_vector(stepper, a), remaining_vector(stepper, b));
            match kind {
                PolyKind::GreedyBalance => stepper
                    .unfinished_jobs(b)
                    .cmp(&stepper.unfinished_jobs(a))
                    .then_with(|| rb.cmp(&ra))
                    .then_with(|| a.cmp(&b)),
                PolyKind::SmallestRequirementFirst => ra.cmp(&rb).then_with(|| a.cmp(&b)),
                _ => rb.cmp(&ra).then_with(|| a.cmp(&b)),
            }
        });
        let shares = serve_in_order(stepper, &order);
        stepper.push_step(&shares);
    }
    stepper.current_step()
}

/// RoundRobin: one phase per job index; within a phase, every processor
/// whose frontier job sits at that index is served in processor order
/// until the phase drains.
fn run_round_robin<V: SplitUnit>(stepper: &mut MultiStepper<V>) -> usize {
    let m = stepper.processors();
    let phases = (0..m)
        .map(|i| stepper.unfinished_jobs(i))
        .max()
        .unwrap_or(0);
    // lint: allow(cancel_coverage) — bounded: one pass over the chain's job indices
    for phase in 0..phases {
        // lint: allow(cancel_coverage) — bounded by the termination argument in the module docs
        loop {
            let participants: Vec<usize> = (0..m)
                .filter(|&i| {
                    stepper
                        .active_job(i)
                        .map(|id| id.index == phase)
                        .unwrap_or(false)
                })
                .collect();
            if participants.is_empty() {
                break;
            }
            let shares = serve_in_order(stepper, &participants);
            stepper.push_step(&shares);
        }
    }
    stepper.current_step()
}

/// Grants each processor in `order` `min(step demand, pool left)` on every
/// layer.  The first processor always receives its full demand (a single
/// demand never exceeds a layer's capacity), which drives termination.
fn serve_in_order<V: SplitUnit>(stepper: &MultiStepper<V>, order: &[usize]) -> Vec<Vec<V>> {
    let m = stepper.processors();
    let k = stepper.resources();
    let mut left: Vec<V> = (0..k).map(|r| stepper.capacity(r)).collect();
    let mut shares = vec![vec![V::ZERO; k]; m];
    for &i in order {
        for (r, (slot, pool)) in shares[i].iter_mut().zip(left.iter_mut()).enumerate() {
            let demand = stepper.step_demand(i, r);
            let grant = if demand <= *pool { demand } else { *pool };
            *slot = grant;
            *pool = pool.sub(grant);
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::{ratio, InstanceBuilder};

    const ALL: [PolyKind; 6] = [
        PolyKind::EqualShare,
        PolyKind::ProportionalShare,
        PolyKind::GreedyBalance,
        PolyKind::LargestRequirementFirst,
        PolyKind::SmallestRequirementFirst,
        PolyKind::RoundRobin,
    ];

    fn sample() -> Instance {
        InstanceBuilder::new()
            .processor([ratio(6, 10), ratio(4, 10)])
            .processor([ratio(3, 10), ratio(9, 10)])
            .processor([ratio(1, 2), ratio(1, 2)])
            .extra_layer([
                vec![ratio(1, 4), ratio(3, 4)],
                vec![ratio(7, 10), ratio(1, 10)],
                vec![ratio(1, 2), ratio(1, 2)],
            ])
            .build()
    }

    #[test]
    fn every_rule_drains_a_two_resource_instance() {
        let inst = sample();
        let total_jobs = 6;
        for kind in ALL {
            let scaled = multi_makespan_scaled(kind, &inst).expect("grid fits");
            let rational = multi_makespan_rational(kind, &inst);
            // Any makespan is at least the binding workload bound and at
            // most one step per unit of work per job.
            for value in [scaled, rational] {
                assert!(value >= 2, "{kind:?} produced {value}");
                assert!(value <= 4 * total_jobs, "{kind:?} produced {value}");
            }
        }
    }

    #[test]
    fn binding_second_resource_slows_the_heuristics_down() {
        // Layer 1 workload is 3 → every rule needs at least 3 steps even
        // though layer 0 is nearly free.
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 100)])
            .processor([ratio(1, 100)])
            .processor([ratio(1, 100)])
            .extra_layer([vec![Ratio::ONE], vec![Ratio::ONE], vec![Ratio::ONE]])
            .build();
        for kind in ALL {
            assert!(multi_makespan_scaled(kind, &inst).expect("grid fits") >= 3);
            assert!(multi_makespan_rational(kind, &inst) >= 3);
        }
    }

    #[test]
    fn serve_order_rules_agree_across_engines() {
        // Serve-in-order rules make no rounding decisions, so scaled and
        // rational must agree exactly.
        let inst = sample();
        for kind in [
            PolyKind::GreedyBalance,
            PolyKind::LargestRequirementFirst,
            PolyKind::SmallestRequirementFirst,
            PolyKind::RoundRobin,
        ] {
            assert_eq!(
                multi_makespan_scaled(kind, &inst).expect("grid fits"),
                multi_makespan_rational(kind, &inst),
                "{kind:?} diverged across engines"
            );
        }
    }

    #[test]
    fn empty_instance_takes_zero_steps() {
        let inst = InstanceBuilder::new().empty_processor().build();
        for kind in ALL {
            assert_eq!(multi_makespan_scaled(kind, &inst), Some(0));
            assert_eq!(multi_makespan_rational(kind, &inst), 0);
        }
    }
}
