//! The metric registry: named counters, gauges and histograms plus the
//! span-time table, snapshotted in one stable sorted order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Whether recording is compiled in at all.  With the `obs-off` feature the
/// function is a constant `false`, so every `if recording_compiled()` guard
/// (and the atomic traffic behind it) is removed by the optimizer.
#[inline]
#[must_use]
pub(crate) fn recording_compiled() -> bool {
    cfg!(not(feature = "obs-off"))
}

/// A monotone counter: the only mutation is adding a non-negative amount,
/// so values never decrease and any two snapshots of the same counter are
/// ordered.  Handles are cheap `Arc` clones of the same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if recording_compiled() && self.enabled.load(Ordering::SeqCst) {
            self.cell.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// The current value.  Reads are always live, even when recording is
    /// disabled (the value simply stops moving).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// A gauge: the latest observation of a signed quantity that can move both
/// ways (window utilization in ppm, starved cores after the last run).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if recording_compiled() && self.enabled.load(Ordering::SeqCst) {
            self.cell.store(v, Ordering::SeqCst);
        }
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if recording_compiled() && self.enabled.load(Ordering::SeqCst) {
            self.cell.fetch_add(delta, Ordering::SeqCst);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// Shared state of one histogram.
#[derive(Debug)]
struct HistCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Box<[u64]>,
    /// One count per finite bucket plus a trailing overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-boundary histogram with exact integer bucket counts.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] < v <= bounds[i]`
/// (the first bucket counts `v <= bounds[0]`); one extra overflow bucket
/// counts everything above the last bound.  The exact maximum is tracked
/// alongside so the overflow bucket still reports a finite upper bound.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    fn with_flag(bounds: &[u64], enabled: Arc<AtomicBool>) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistCore {
                bounds: sorted.into_boxed_slice(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
            enabled,
        }
    }

    /// A histogram not attached to any registry (always recording).  The
    /// load generator uses one of these for client-side latencies so a
    /// million samples cost a fixed few hundred cells instead of an
    /// unbounded buffer.
    #[must_use]
    pub fn standalone(bounds: &[u64]) -> Histogram {
        Histogram::with_flag(bounds, Arc::new(AtomicBool::new(true)))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !recording_compiled() || !self.enabled.load(Ordering::SeqCst) {
            return;
        }
        let core = &self.core;
        let idx = core.bounds.partition_point(|&b| b < v);
        if let Some(bucket) = core.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::SeqCst);
        }
        core.count.fetch_add(1, Ordering::SeqCst);
        core.sum.fetch_add(v, Ordering::SeqCst);
        core.max.fetch_max(v, Ordering::SeqCst);
    }

    /// The number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of bounds, counts and aggregates.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.core;
        HistogramSnapshot {
            bounds: core.bounds.to_vec(),
            counts: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::SeqCst))
                .collect(),
            count: core.count.load(Ordering::SeqCst),
            sum: core.sum.load(Ordering::SeqCst),
            max: core.max.load(Ordering::SeqCst),
        }
    }
}

/// A strictly increasing geometric boundary grid from `first` up to at
/// least `last`, stepping by the rational ratio `num / den` (rounded down,
/// but always advancing by at least 1).  Integer-only, so the same call
/// yields the same grid on every platform.
///
/// The load generator's latency grid is
/// `geometric_bounds(10_000, 120_000_000_000, 17, 16)` — 10 µs to 120 s in
/// 6.25% steps, ~270 buckets — which bounds the nearest-rank percentile
/// error at one step.
#[must_use]
pub fn geometric_bounds(first: u64, last: u64, num: u64, den: u64) -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut b = first.max(1);
    let (num, den) = (num.max(2), den.max(1));
    while b < last {
        bounds.push(b);
        let next = b.saturating_mul(num) / den;
        b = next.max(b + 1);
    }
    bounds.push(last);
    bounds
}

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// A signed gauge.
    Gauge(i64),
    /// A histogram's buckets and aggregates.
    Histogram(HistogramSnapshot),
}

/// A histogram's point-in-time buckets and aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    pub bounds: Vec<u64>,
    /// One count per finite bucket, plus a trailing overflow count.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, even for overflow-bucket samples).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The nearest-rank `numer/denom` quantile, reported as the inclusive
    /// upper bound of the bucket containing that rank (the exact maximum
    /// for ranks landing in the overflow bucket).  `None` when empty.
    ///
    /// Integer-only: rank = ceil(count * numer / denom), clamped to
    /// [1, count], matching the classic nearest-rank definition.
    #[must_use]
    pub fn nearest_rank(&self, numer: u64, denom: u64) -> Option<u64> {
        if self.count == 0 || denom == 0 {
            return None;
        }
        let rank = self
            .count
            .saturating_mul(numer)
            .div_ceil(denom)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// One span path's accumulated wall time in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// The `/`-joined nesting path (each segment is a span name).
    pub path: String,
    /// How many times a span with this path completed.
    pub count: u64,
    /// Total wall time across those completions, in nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time copy of every metric and span, each sorted by name so
/// two snapshots of identical state render identically (the golden-test
/// contract of the `{"control":"metrics"}` wire frame).
///
/// Metrics are read in ascending name order; combined with counters being
/// monotone, a recording discipline that bumps per-part counters whose
/// names sort *before* their total (e.g. `service.solve.by_method.*`
/// before `service.solve.total`, incremented total-first) guarantees
/// `sum(parts) <= total` in every snapshot, with equality at quiescence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All metrics, ascending by name.
    pub metrics: Vec<MetricSnapshot>,
    /// All span paths, ascending by path.
    pub spans: Vec<SpanSnapshot>,
}

/// A registered metric (the registry's side of the shared cells).
#[derive(Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Histogram),
}

/// Per-path span accumulator (guarded by the span-table mutex).
#[derive(Debug, Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

/// A named-metric registry plus span-time table.
///
/// [`Registry::global`] is the process-wide instance production code
/// records into; [`Registry::new`] builds isolated instances for exact
/// tests.  Cloning shares the underlying state (handles stay valid).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with recording enabled.
    #[must_use]
    pub fn new() -> Registry {
        let inner = Inner::default();
        inner.enabled.store(true, Ordering::SeqCst);
        Registry {
            inner: Arc::new(inner),
        }
    }

    /// The process-wide registry.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Whether recording is currently enabled (and compiled in).
    #[must_use]
    pub fn enabled(&self) -> bool {
        recording_compiled() && self.inner.enabled.load(Ordering::SeqCst)
    }

    /// Runtime kill switch: existing and future handles of this registry
    /// stop (or resume) recording.  Reads and snapshots stay live.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::SeqCst);
    }

    fn metrics_guard(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        match self.inner.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.metrics.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    fn spans_guard(&self) -> MutexGuard<'_, BTreeMap<String, SpanStat>> {
        match self.inner.spans.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.inner.spans.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// If `name` is already registered as a different metric kind the
    /// returned handle is *detached* (it records, but into a cell no
    /// snapshot reads) — a deliberate no-panic degradation for what is
    /// always a programming error caught by the vocabulary lint.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let enabled = Arc::clone(&self.inner.enabled);
        let cell = {
            let mut metrics = self.metrics_guard();
            let entry = metrics
                .entry(name.to_string())
                .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
            match entry {
                Metric::Counter(cell) => Arc::clone(cell),
                Metric::Gauge(_) | Metric::Histogram(_) => Arc::new(AtomicU64::new(0)),
            }
        };
        Counter { cell, enabled }
    }

    /// The gauge registered under `name`, created on first use (detached on
    /// a kind mismatch, as for [`Registry::counter`]).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let enabled = Arc::clone(&self.inner.enabled);
        let cell = {
            let mut metrics = self.metrics_guard();
            let entry = metrics
                .entry(name.to_string())
                .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
            match entry {
                Metric::Gauge(cell) => Arc::clone(cell),
                Metric::Counter(_) | Metric::Histogram(_) => Arc::new(AtomicI64::new(0)),
            }
        };
        Gauge { cell, enabled }
    }

    /// The histogram registered under `name`, created on first use with the
    /// given bucket bounds (detached on a kind mismatch; an existing
    /// histogram keeps its original bounds).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let enabled = Arc::clone(&self.inner.enabled);
        let hist = {
            let mut metrics = self.metrics_guard();
            let entry = metrics.entry(name.to_string()).or_insert_with(|| {
                Metric::Histogram(Histogram::with_flag(bounds, Arc::clone(&enabled)))
            });
            match entry {
                Metric::Histogram(hist) => hist.clone(),
                Metric::Counter(_) | Metric::Gauge(_) => {
                    Histogram::with_flag(bounds, Arc::clone(&enabled))
                }
            }
        };
        hist
    }

    /// Accumulates one completed span under `path` (called by the
    /// [`Span`](crate::Span) guard's drop; also usable directly for spans
    /// measured by other means).
    pub fn record_span(&self, path: &str, elapsed_ns: u64) {
        if !self.enabled() {
            return;
        }
        let mut spans = self.spans_guard();
        let stat = spans.entry(path.to_string()).or_default();
        stat.count = stat.count.saturating_add(1);
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    }

    /// A point-in-time copy of every metric and span in ascending name
    /// order.  Under `obs-off` nothing records, so registered entries all
    /// read zero and the span table stays empty.
    ///
    /// The two tables are read under their own locks, metrics first; each
    /// individual read is atomic, so counters are never torn and never
    /// decrease across successive snapshots.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics: Vec<MetricSnapshot> = {
            let table = self.metrics_guard();
            table
                .iter()
                .map(|(name, metric)| MetricSnapshot {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(cell) => MetricValue::Counter(cell.load(Ordering::SeqCst)),
                        Metric::Gauge(cell) => MetricValue::Gauge(cell.load(Ordering::SeqCst)),
                        Metric::Histogram(hist) => MetricValue::Histogram(hist.snapshot()),
                    },
                })
                .collect()
        };
        let spans: Vec<SpanSnapshot> = {
            let table = self.spans_guard();
            table
                .iter()
                .map(|(path, stat)| SpanSnapshot {
                    path: path.clone(),
                    count: stat.count,
                    total_ns: stat.total_ns,
                })
                .collect()
        };
        Snapshot { metrics, spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        if !recording_compiled() {
            return;
        }
        let reg = Registry::new();
        reg.counter("b.two").add(2);
        reg.counter("a.one").inc();
        reg.counter("b.two").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"]);
        assert_eq!(snap.metrics[1].value, MetricValue::Counter(3));
    }

    #[test]
    fn gauges_move_both_ways() {
        if !recording_compiled() {
            return;
        }
        let reg = Registry::new();
        let g = reg.gauge("g");
        g.set(5);
        g.add(-7);
        assert_eq!(g.value(), -2);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        if !recording_compiled() {
            return;
        }
        let h = Histogram::standalone(&[10, 20]);
        for v in [1, 10, 11, 20, 21, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 2, 2]);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1 + 10 + 11 + 20 + 21 + 1000);
        assert_eq!(snap.max, 1000);
    }

    #[test]
    fn nearest_rank_matches_the_classic_definition() {
        if !recording_compiled() {
            return;
        }
        let h = Histogram::standalone(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        for v in 1..=10 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.nearest_rank(50, 100), Some(5));
        assert_eq!(snap.nearest_rank(95, 100), Some(10));
        assert_eq!(snap.nearest_rank(99, 100), Some(10));
        assert_eq!(snap.nearest_rank(1, 100), Some(1));
    }

    #[test]
    fn nearest_rank_overflow_reports_exact_max() {
        if !recording_compiled() {
            return;
        }
        let h = Histogram::standalone(&[10]);
        h.observe(12345);
        let snap = h.snapshot();
        assert_eq!(snap.nearest_rank(50, 100), Some(12345));
    }

    #[test]
    fn geometric_bounds_are_strictly_increasing_and_span_the_range() {
        let bounds = geometric_bounds(10_000, 120_000_000_000, 17, 16);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.first().copied(), Some(10_000));
        assert_eq!(bounds.last().copied(), Some(120_000_000_000));
        assert!(bounds.len() < 400, "grid stays compact: {}", bounds.len());
    }

    #[test]
    fn runtime_kill_switch_stops_recording_but_not_reads() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        reg.set_enabled(false);
        c.inc();
        assert_eq!(c.value(), if recording_compiled() { 1 } else { 0 });
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.value(), if recording_compiled() { 2 } else { 0 });
    }

    #[test]
    fn kind_mismatch_degrades_to_a_detached_handle() {
        let reg = Registry::new();
        reg.counter("name").inc();
        let g = reg.gauge("name");
        g.set(7);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        if recording_compiled() {
            assert_eq!(snap.metrics[0].value, MetricValue::Counter(1));
        }
    }
}
