//! Scaled-core vs. rational-core timing for the exact solvers, the
//! scheduling heuristics and the online simulator.
//!
//! Times each exact solver twice on identical instances — once through its
//! public entry point (the scaled-integer engine) and once through the
//! retained `*_rational` reference path — and writes `BENCH_exact.json`
//! with per-family medians and speedup factors.  This is the benchmark the
//! ISSUE-2 ≥5× acceptance target is tracked against at solver granularity
//! (the pipeline-level number lives in `BENCH_pipeline.json`).
//!
//! ISSUE-3 extends the comparison to the scheduling layer: the six
//! polynomial schedulers (scaled production path vs. `schedule_rational`
//! reference), and the `cr-sim` online policies (the integer-unit engine
//! vs. the offline rational counterpart that computes the identical
//! schedule with per-step `Ratio` arithmetic — the cost model of the
//! pre-ISSUE-3 engine).  Every case's two paths must agree on the summed
//! makespans; the binary asserts this.
//!
//! Usage: `cargo run --release -p cr-bench --bin bench_exact --
//! [--out-dir DIR] [--iters N]`

use cr_algos::{
    brute_force_makespan, brute_force_makespan_rational, opt_m_makespan, opt_m_makespan_rational,
    opt_two_makespan, opt_two_makespan_rational, EqualShare, GreedyBalance,
    LargestRequirementFirst, ProportionalShare, RoundRobin, Scheduler, SmallestRequirementFirst,
};
use cr_core::Instance;
use cr_instances::{
    generate_workload, random_unit_instance, wide_oversubscribed_instance, RandomConfig,
    RequirementProfile, TaskMix, WorkloadConfig,
};
use cr_sim::{
    EqualSharePolicy, GreedyBalancePolicy, OnlinePolicy, ProportionalSharePolicy, RoundRobinPolicy,
    Simulator,
};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    out_dir: PathBuf,
    iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_dir: PathBuf::from("."),
        iters: 5,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out-dir" => {
                args.out_dir = PathBuf::from(iter.next().expect("--out-dir requires a value"));
            }
            "--iters" => {
                args.iters = iter
                    .next()
                    .expect("--iters requires a value")
                    .parse()
                    .expect("invalid iteration count");
            }
            "--help" | "-h" => {
                println!("usage: bench_exact [--out-dir DIR] [--iters N]");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    args
}

/// Median wall time in milliseconds of `iters` runs of `f` (which must
/// return a checksum so the work cannot be optimized away).
fn median_ms(iters: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(iters);
    let mut checksum = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        checksum = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], checksum)
}

struct CaseResult {
    case: String,
    solver: &'static str,
    instances: usize,
    scaled_ms: f64,
    rational_ms: f64,
}

fn measure(
    out: &mut Vec<CaseResult>,
    iters: usize,
    case: impl Into<String>,
    solver: &'static str,
    instances: &[Instance],
    scaled: impl Fn(&Instance) -> usize,
    rational: impl Fn(&Instance) -> usize,
) {
    let sum_over = |f: &dyn Fn(&Instance) -> usize| -> usize { instances.iter().map(f).sum() };
    let (scaled_ms, scaled_sum) = median_ms(iters, || sum_over(&scaled));
    let (rational_ms, rational_sum) = median_ms(iters, || sum_over(&rational));
    assert_eq!(
        scaled_sum, rational_sum,
        "scaled and rational cores disagree on a makespan"
    );
    out.push(CaseResult {
        case: case.into(),
        solver,
        instances: instances.len(),
        scaled_ms,
        rational_ms,
    });
}

fn main() {
    let args = parse_args();
    let mut results: Vec<CaseResult> = Vec::new();

    // The random-exact grid's (m, n, profile) sweep — the pipeline's hot set.
    for (m, n) in [(2usize, 4usize), (3, 3), (3, 4), (4, 3)] {
        for profile in [RequirementProfile::Uniform, RequirementProfile::Light] {
            let cfg = RandomConfig {
                profile,
                ..RandomConfig::uniform(m, n)
            };
            let instances: Vec<Instance> = (0..10)
                .map(|rep| random_unit_instance(&cfg, 1000 + rep))
                .collect();
            measure(
                &mut results,
                args.iters,
                format!("{profile:?} m={m} n={n}"),
                "opt_m",
                &instances,
                opt_m_makespan,
                opt_m_makespan_rational,
            );
        }
    }

    // Wide-m oversubscribed instances: 32 or more simultaneously active
    // processors were a hard error before ISSUE 4 (the scaled engine
    // asserted, the rational path shift-overflowed its u32 subset mask).
    // The family keeps the active set at full width while the heavy chains
    // oversubscribe the resource; see
    // `cr_instances::wide_oversubscribed_instance`.
    for m in [16usize, 32, 48] {
        let instances = vec![wide_oversubscribed_instance(m, 4, 3, 12, 90)];
        measure(
            &mut results,
            args.iters,
            format!("WideOversub m={m}"),
            "opt_m",
            &instances,
            opt_m_makespan,
            opt_m_makespan_rational,
        );
    }

    // The two-processor DP at sizes where the O(n²) table dominates.
    for n in [128usize, 512, 1024] {
        let instances: Vec<Instance> = vec![random_unit_instance(&RandomConfig::uniform(2, n), 11)];
        measure(
            &mut results,
            args.iters,
            format!("Uniform m=2 n={n}"),
            "opt_two",
            &instances,
            opt_two_makespan,
            opt_two_makespan_rational,
        );
    }

    // Brute force on a three-processor reference workload.
    let instances: Vec<Instance> = (0..5)
        .map(|rep| random_unit_instance(&RandomConfig::uniform(3, 4), 2000 + rep))
        .collect();
    measure(
        &mut results,
        args.iters,
        "Uniform m=3 n=4".to_string(),
        "brute_force",
        &instances,
        brute_force_makespan,
        brute_force_makespan_rational,
    );

    // The scheduling layer: scaled production paths vs. the rational
    // reference implementations of the six polynomial schedulers.
    for (m, n) in [(8usize, 48usize), (16, 64)] {
        let instances: Vec<Instance> = (0..8)
            .map(|rep| random_unit_instance(&RandomConfig::uniform(m, n), 3000 + rep))
            .collect();
        let case = format!("Uniform m={m} n={n}");
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "greedy_balance",
            &instances,
            |i| GreedyBalance::new().schedule(i).num_steps(),
            |i| GreedyBalance::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "round_robin",
            &instances,
            |i| RoundRobin::new().schedule(i).num_steps(),
            |i| RoundRobin::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "equal_share",
            &instances,
            |i| EqualShare::new().schedule(i).num_steps(),
            |i| EqualShare::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "proportional_share",
            &instances,
            |i| ProportionalShare::new().schedule(i).num_steps(),
            |i| ProportionalShare::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "largest_first",
            &instances,
            |i| LargestRequirementFirst::new().schedule(i).num_steps(),
            |i| {
                LargestRequirementFirst::new()
                    .schedule_rational(i)
                    .num_steps()
            },
        );
        measure(
            &mut results,
            args.iters,
            case,
            "smallest_first",
            &instances,
            |i| SmallestRequirementFirst::new().schedule(i).num_steps(),
            |i| {
                SmallestRequirementFirst::new()
                    .schedule_rational(i)
                    .num_steps()
            },
        );
    }

    // The online simulator: the integer-unit engine vs. the offline
    // rational counterpart producing the identical schedule (the per-step
    // Ratio arithmetic the engine ran on before the scaled port).  The
    // workloads have equal phase counts per task, so every online policy
    // reproduces its offline twin's makespan exactly.
    fn run_sim(instance: &Instance, policy: &mut dyn OnlinePolicy) -> usize {
        Simulator::from_instance(instance)
            .run(policy)
            .expect("simulation completes")
            .report
            .makespan
    }
    for (cores, mix) in [(16usize, TaskMix::Mixed), (64, TaskMix::IoBound)] {
        let cfg = WorkloadConfig {
            cores,
            phases_per_task: 16,
            mix,
            denominator: 100,
            unit_phases: true,
        };
        let workloads: Vec<Instance> = (0..4)
            .map(|rep| generate_workload(&cfg, 9000 + cores as u64 + rep))
            .collect();
        let case = format!("{mix:?} cores={cores}");
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "sim_greedy",
            &workloads,
            |i| run_sim(i, &mut GreedyBalancePolicy),
            |i| GreedyBalance::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "sim_round_robin",
            &workloads,
            |i| run_sim(i, &mut RoundRobinPolicy),
            |i| RoundRobin::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case.clone(),
            "sim_equal_share",
            &workloads,
            |i| run_sim(i, &mut EqualSharePolicy),
            |i| EqualShare::new().schedule_rational(i).num_steps(),
        );
        measure(
            &mut results,
            args.iters,
            case,
            "sim_proportional",
            &workloads,
            |i| run_sim(i, &mut ProportionalSharePolicy),
            |i| ProportionalShare::new().schedule_rational(i).num_steps(),
        );
    }

    println!(
        "{:<24} {:<12} {:>6} {:>12} {:>12} {:>9}",
        "case", "solver", "insts", "scaled ms", "rational ms", "speedup"
    );
    for r in &results {
        println!(
            "{:<24} {:<12} {:>6} {:>12.3} {:>12.3} {:>8.1}x",
            r.case,
            r.solver,
            r.instances,
            r.scaled_ms,
            r.rational_ms,
            r.rational_ms / r.scaled_ms.max(1e-9)
        );
    }

    let json = results_json(&results);
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = args.out_dir.join("BENCH_exact.json");
    std::fs::write(&path, json).expect("write BENCH_exact.json");
    println!("\nwrote {}", path.display());
}

fn results_json(results: &[CaseResult]) -> String {
    let round = |x: f64| (x * 1000.0).round() / 1000.0;
    let cases: Vec<serde::Value> = results
        .iter()
        .map(|r| {
            serde::Value::Object(vec![
                ("case".to_string(), serde::Value::String(r.case.clone())),
                (
                    "solver".to_string(),
                    serde::Value::String(r.solver.to_string()),
                ),
                (
                    "instances".to_string(),
                    serde::Value::Number(serde::Number::Int(r.instances as i128)),
                ),
                (
                    "scaled_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round(r.scaled_ms))),
                ),
                (
                    "rational_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round(r.rational_ms))),
                ),
                (
                    "speedup".to_string(),
                    serde::Value::Number(serde::Number::Float(round(
                        r.rational_ms / r.scaled_ms.max(1e-9),
                    ))),
                ),
            ])
        })
        .collect();
    let root = serde::Value::Object(vec![
        (
            "benchmark".to_string(),
            serde::Value::String("exact solver cores: scaled vs rational".to_string()),
        ),
        ("cases".to_string(), serde::Value::Array(cases)),
    ]);
    serde_json::to_string_pretty(&root).expect("benchmark serialization is infallible")
}
