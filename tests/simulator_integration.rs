//! Integration tests tying the online simulator (`cr-sim`) back to the
//! offline algorithms and bounds: the online policies reproduce their
//! offline counterparts' schedules exactly (the engine and the offline
//! schedulers share the scaled-integer semantics), and all policies respect
//! the model's feasibility constraints and lower bounds.

mod common;

use common::unit_instance;
use crsharing::algos::{EqualShare, GreedyBalance, ProportionalShare, RoundRobin, Scheduler};
use crsharing::core::bounds;
use crsharing::instances::{generate_workload, TaskMix, WorkloadConfig};
use crsharing::sim::{
    standard_policies, EqualSharePolicy, GreedyBalancePolicy, ProportionalSharePolicy,
    RoundRobinPolicy, Simulator,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The online GreedyBalance policy sees exactly the information the
    /// offline algorithm uses, so simulation and offline scheduling agree
    /// step for step.
    #[test]
    fn online_greedy_matches_offline_greedy(instance in unit_instance(4, 5)) {
        let offline = GreedyBalance::new().schedule(&instance);
        let sim = Simulator::from_instance(&instance);
        let outcome = sim.run(&mut GreedyBalancePolicy).unwrap();
        prop_assert_eq!(outcome.schedule, offline);
    }

    /// The splitting policies also reproduce their offline counterparts:
    /// engine and offline schedulers compute the identical largest-remainder
    /// splits on the identical unit grid.
    #[test]
    fn online_splitters_match_offline_splitters(instance in unit_instance(4, 4)) {
        let sim = Simulator::from_instance(&instance);
        let equal = sim.run(&mut EqualSharePolicy).unwrap();
        prop_assert_eq!(equal.schedule, EqualShare::new().schedule(&instance));
        let prop = sim.run(&mut ProportionalSharePolicy).unwrap();
        prop_assert_eq!(prop.schedule, ProportionalShare::new().schedule(&instance));
    }

    /// The online RoundRobin policy needs at most as many steps as the
    /// offline algorithm's analytical bound, and at least the lower bound.
    #[test]
    fn online_round_robin_is_consistent(instance in unit_instance(4, 4)) {
        let sim = Simulator::from_instance(&instance);
        let outcome = sim.run(&mut RoundRobinPolicy).unwrap();
        let offline = RoundRobin::new().makespan(&instance);
        prop_assert!(outcome.report.makespan >= bounds::trivial_lower_bound(&instance));
        // The online variant keeps the phase barriers, so it matches the
        // offline algorithm exactly when all chains have equal length.
        let equal_chains = (0..instance.processors())
            .all(|i| instance.jobs_on(i) == instance.max_chain_length());
        if equal_chains {
            prop_assert_eq!(outcome.report.makespan, offline);
        }
    }

    /// Every built-in policy terminates, produces a feasible schedule and
    /// reports consistent (and exactly-accounted) metrics.
    #[test]
    fn all_policies_are_feasible(instance in unit_instance(4, 4)) {
        let sim = Simulator::from_instance(&instance);
        for mut policy in standard_policies() {
            let outcome = sim.run(policy.as_mut()).unwrap();
            let trace = outcome.schedule.trace(&instance).expect("feasible schedule");
            prop_assert_eq!(trace.makespan(), outcome.report.makespan);
            prop_assert!(outcome.report.bus_utilization <= 1.0 + 1e-9);
            prop_assert!(outcome.report.makespan >= outcome.report.lower_bound);
            // Exact accounting: consumed + wasted units cover the pool.
            prop_assert_eq!(
                outcome.report.consumed_units + outcome.report.wasted_units_total(),
                outcome.report.capacity * outcome.report.makespan as u64
            );
            for core in &outcome.report.per_core {
                prop_assert!(core.completion_time <= outcome.report.makespan);
                prop_assert!(core.slowdown() >= 1.0 - 1e-9);
            }
        }
    }
}

#[test]
fn greedy_balance_policy_meets_theorem7_bound_on_workloads() {
    for mix in [
        TaskMix::IoBound,
        TaskMix::Mixed,
        TaskMix::Bursty,
        TaskMix::ComputeBound,
    ] {
        for cores in [4usize, 8, 16] {
            let cfg = WorkloadConfig {
                cores,
                phases_per_task: 6,
                mix,
                denominator: 100,
                unit_phases: true,
            };
            let workload = generate_workload(&cfg, 1234 + cores as u64);
            let sim = Simulator::from_instance(&workload);
            let report = sim.run(&mut GreedyBalancePolicy).unwrap().report;
            assert!(
                report.normalized_makespan() <= 2.0 - 1.0 / cores as f64 + 1e-9,
                "Theorem 7 violated for {mix:?} on {cores} cores: {}",
                report.normalized_makespan()
            );
        }
    }
}

#[test]
fn io_bound_workloads_saturate_the_bus_under_greedy_balance() {
    let cfg = WorkloadConfig {
        cores: 16,
        phases_per_task: 10,
        mix: TaskMix::IoBound,
        denominator: 100,
        unit_phases: true,
    };
    let workload = generate_workload(&cfg, 5);
    let sim = Simulator::from_instance(&workload);
    let report = sim.run(&mut GreedyBalancePolicy).unwrap().report;
    assert!(
        report.bus_utilization > 0.9,
        "bandwidth-bound workload should keep the bus busy, got {}",
        report.bus_utilization
    );
}
