//! Problem instances of the CRSharing problem.
//!
//! An [`Instance`] is a set of `m` processors, each with a fixed, ordered
//! sequence of [`Job`]s.  The scheduler may *only* decide how the shared
//! continuous resource is split among the processors at each discrete time
//! step; job-to-processor assignment and per-processor job order are part of
//! the input (this is the defining restriction of the paper's model compared
//! to general discrete-continuous scheduling).

use crate::error::InstanceError;
use crate::job::{Job, JobId};
use crate::rational::Ratio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CRSharing problem instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// `jobs[i]` is the ordered job sequence of processor `i`.
    jobs: Vec<Vec<Job>>,
}

impl Instance {
    /// Creates an instance from explicit per-processor job sequences and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no processors, a requirement lies
    /// outside `[0, 1]`, or a volume is not strictly positive.  Processors
    /// with empty job sequences are allowed (they are simply never active).
    pub fn new(jobs: Vec<Vec<Job>>) -> Result<Self, InstanceError> {
        if jobs.is_empty() {
            return Err(InstanceError::NoProcessors);
        }
        for (i, row) in jobs.iter().enumerate() {
            for (j, job) in row.iter().enumerate() {
                if !job.requirement.in_unit_interval() {
                    return Err(InstanceError::RequirementOutOfRange {
                        job: JobId::new(i, j),
                        requirement: job.requirement,
                    });
                }
                if !job.volume.is_positive() {
                    return Err(InstanceError::NonPositiveVolume {
                        job: JobId::new(i, j),
                        volume: job.volume,
                    });
                }
            }
        }
        Ok(Instance { jobs })
    }

    /// Builds a **unit-size** instance from per-processor requirement lists.
    ///
    /// # Panics
    ///
    /// Panics if validation fails; use [`Instance::new`] for fallible
    /// construction.
    #[must_use]
    pub fn unit_from_requirements(reqs: Vec<Vec<Ratio>>) -> Self {
        let jobs = reqs
            .into_iter()
            .map(|row| row.into_iter().map(Job::unit).collect())
            .collect();
        Instance::new(jobs).expect("invalid unit-size instance")
    }

    /// Builds a unit-size instance from integer percentages, matching the
    /// notation of the paper's figures (e.g. Figure 1 uses rows
    /// `[20, 10, 10, 10]`, `[50, 55, 90, 55, 10]`, `[50, 40, 95]`).
    ///
    /// # Panics
    ///
    /// Panics if a percentage lies outside `[0, 100]`.
    #[must_use]
    pub fn unit_from_percentages(rows: &[&[i64]]) -> Self {
        let reqs = rows
            .iter()
            .map(|row| row.iter().map(|&p| Ratio::from_percent(p)).collect())
            .collect();
        Instance::unit_from_requirements(reqs)
    }

    /// Number of processors `m`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs `nᵢ` on processor `i`.
    #[must_use]
    pub fn jobs_on(&self, processor: usize) -> usize {
        self.jobs[processor].len()
    }

    /// The maximum chain length `n = maxᵢ nᵢ`.
    #[must_use]
    pub fn max_chain_length(&self) -> usize {
        self.jobs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of jobs over all processors.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }

    /// Returns the job `(i, j)`.
    #[must_use]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.processor][id.index]
    }

    /// Returns the job sequence of processor `i`.
    #[must_use]
    pub fn processor_jobs(&self, processor: usize) -> &[Job] {
        &self.jobs[processor]
    }

    /// Iterates over all `(JobId, &Job)` pairs in processor-major order.
    pub fn iter_jobs(&self) -> impl Iterator<Item = (JobId, &Job)> + '_ {
        self.jobs.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(move |(j, job)| (JobId::new(i, j), job))
        })
    }

    /// `M_j`: the set of processors having at least `j + 1` jobs (i.e. having
    /// a job at zero-based position `j`).  Matches the paper's `M_j` for
    /// one-based `j = j_zero_based + 1`.
    #[must_use]
    pub fn machines_with_job(&self, index: usize) -> Vec<usize> {
        (0..self.processors())
            .filter(|&i| self.jobs_on(i) > index)
            .collect()
    }

    /// Whether all jobs have unit size (the case analyzed by the paper).
    #[must_use]
    pub fn is_unit_size(&self) -> bool {
        self.iter_jobs().all(|(_, job)| job.is_unit())
    }

    /// Total workload `Σ_ij r_ij · p_ij` in the alternative model
    /// interpretation — the left-hand side of Observation 1.
    #[must_use]
    pub fn total_workload(&self) -> Ratio {
        self.iter_jobs().map(|(_, job)| job.workload()).sum()
    }

    /// Workload of column `j` restricted to `M_j`, i.e. `Σ_{i ∈ M_j} r_ij·p_ij`.
    /// Used by the RoundRobin analysis (Theorem 3).
    #[must_use]
    pub fn column_workload(&self, index: usize) -> Ratio {
        self.machines_with_job(index)
            .into_iter()
            .map(|i| self.jobs[i][index].workload())
            .sum()
    }

    /// The largest single resource requirement in the instance.
    #[must_use]
    pub fn max_requirement(&self) -> Ratio {
        self.iter_jobs()
            .map(|(_, job)| job.requirement)
            .max()
            .unwrap_or(Ratio::ZERO)
    }

    /// Consumes the instance and returns the raw job matrix.
    #[must_use]
    pub fn into_jobs(self) -> Vec<Vec<Job>> {
        self.jobs
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CRSharing instance: m = {}, n = {}, total workload = {}",
            self.processors(),
            self.max_chain_length(),
            self.total_workload()
        )?;
        for (i, row) in self.jobs.iter().enumerate() {
            write!(f, "  p{i}:")?;
            for job in row {
                if job.is_unit() {
                    write!(f, " {}", job.requirement)?;
                } else {
                    write!(f, " {}x{}", job.requirement, job.volume)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Incremental builder for instances, convenient in generators and tests.
///
/// # Examples
///
/// ```
/// use cr_core::{InstanceBuilder, Ratio};
///
/// let inst = InstanceBuilder::new()
///     .processor([Ratio::new(1, 2), Ratio::new(1, 4)])
///     .processor([Ratio::ONE])
///     .build();
/// assert_eq!(inst.processors(), 2);
/// assert_eq!(inst.total_jobs(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InstanceBuilder {
    jobs: Vec<Vec<Job>>,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processor with the given unit-size job requirements.
    #[must_use]
    pub fn processor<I: IntoIterator<Item = Ratio>>(mut self, requirements: I) -> Self {
        self.jobs
            .push(requirements.into_iter().map(Job::unit).collect());
        self
    }

    /// Adds a processor with explicit jobs (arbitrary volumes).
    #[must_use]
    pub fn processor_jobs<I: IntoIterator<Item = Job>>(mut self, jobs: I) -> Self {
        self.jobs.push(jobs.into_iter().collect());
        self
    }

    /// Adds an empty processor (no jobs).
    #[must_use]
    pub fn empty_processor(mut self) -> Self {
        self.jobs.push(Vec::new());
        self
    }

    /// Finalizes the instance.
    ///
    /// # Panics
    ///
    /// Panics if validation fails.
    #[must_use]
    pub fn build(self) -> Instance {
        Instance::new(self.jobs).expect("invalid instance")
    }

    /// Finalizes the instance, returning validation errors.
    pub fn try_build(self) -> Result<Instance, InstanceError> {
        Instance::new(self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::ratio;

    fn fig1_instance() -> Instance {
        Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]])
    }

    #[test]
    fn construction_and_stats() {
        let inst = fig1_instance();
        assert_eq!(inst.processors(), 3);
        assert_eq!(inst.jobs_on(0), 4);
        assert_eq!(inst.jobs_on(1), 5);
        assert_eq!(inst.jobs_on(2), 3);
        assert_eq!(inst.max_chain_length(), 5);
        assert_eq!(inst.total_jobs(), 12);
        assert!(inst.is_unit_size());
        // 0.2+0.1+0.1+0.1 + 0.5+0.55+0.9+0.55+0.1 + 0.5+0.4+0.95 = 4.95
        assert_eq!(inst.total_workload(), ratio(495, 100));
    }

    #[test]
    fn machines_with_job_matches_mj() {
        let inst = fig1_instance();
        assert_eq!(inst.machines_with_job(0), vec![0, 1, 2]);
        assert_eq!(inst.machines_with_job(2), vec![0, 1, 2]);
        assert_eq!(inst.machines_with_job(3), vec![0, 1]);
        assert_eq!(inst.machines_with_job(4), vec![1]);
        assert!(inst.machines_with_job(5).is_empty());
    }

    #[test]
    fn column_workload() {
        let inst = fig1_instance();
        assert_eq!(inst.column_workload(0), ratio(120, 100));
        assert_eq!(inst.column_workload(4), ratio(10, 100));
    }

    #[test]
    fn validation_rejects_bad_requirement() {
        let err = Instance::new(vec![vec![Job::unit(ratio(3, 2))]]).unwrap_err();
        assert!(matches!(err, InstanceError::RequirementOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_bad_volume() {
        let err = Instance::new(vec![vec![Job::new(ratio(1, 2), Ratio::ZERO)]]).unwrap_err();
        assert!(matches!(err, InstanceError::NonPositiveVolume { .. }));
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(matches!(
            Instance::new(vec![]).unwrap_err(),
            InstanceError::NoProcessors
        ));
    }

    #[test]
    fn empty_processor_is_allowed() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2)])
            .empty_processor()
            .build();
        assert_eq!(inst.processors(), 2);
        assert_eq!(inst.jobs_on(1), 0);
        assert_eq!(inst.max_chain_length(), 1);
    }

    #[test]
    fn builder_with_volumes() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 2), ratio(3, 1))])
            .processor([ratio(1, 4)])
            .build();
        assert!(!inst.is_unit_size());
        assert_eq!(inst.total_workload(), ratio(3, 2) + ratio(1, 4));
    }

    #[test]
    fn iter_jobs_order() {
        let inst = fig1_instance();
        let ids: Vec<JobId> = inst.iter_jobs().map(|(id, _)| id).collect();
        assert_eq!(ids[0], JobId::new(0, 0));
        assert_eq!(ids[4], JobId::new(1, 0));
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn display_contains_rows() {
        let inst = fig1_instance();
        let text = inst.to_string();
        assert!(text.contains("p0:"));
        assert!(text.contains("p2:"));
        assert!(text.contains("m = 3"));
    }

    #[test]
    fn serde_roundtrip() {
        let inst = fig1_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn max_requirement() {
        assert_eq!(fig1_instance().max_requirement(), ratio(95, 100));
    }
}
