//! Shared grid builders for the paper's experiment tables.
//!
//! Both the per-figure binaries (`fig3_roundrobin_worstcase`, …) and the
//! all-in-one `experiments` binary build their cell grids here, so a sweep
//! tweak happens in exactly one place and the per-cell instance labels —
//! which the [`Runner`](crate::pipeline::Runner) derives RNG seeds from —
//! stay consistent across binaries.

use crate::pipeline::{Algorithm, Cell, Family, Reference};
use cr_instances::{
    greedy_balance_max_blocks, is_yes_instance, round_robin_worst_case_opt, RequirementProfile,
};

/// The chain lengths swept by the Figure 3 family.
pub const FIG3_SIZES: [usize; 8] = [5, 10, 25, 50, 100, 250, 500, 1000];

/// Figure 1 running example: every scheduler in the line-up against the
/// exact optimum.
#[must_use]
pub fn fig1_cells() -> Vec<Cell> {
    Algorithm::poly_line_up()
        .iter()
        .chain(&[Algorithm::OptM])
        .map(|&algorithm| {
            Cell::new(
                "fig1",
                "figure 1 example",
                algorithm,
                Family::Figure1,
                Reference::OptM,
            )
        })
        .collect()
}

/// Figure 2 four-50%-jobs example: nested optimal schedules have makespan 4.
#[must_use]
pub fn fig2_cells() -> Vec<Cell> {
    [
        Algorithm::GreedyBalance,
        Algorithm::RoundRobin,
        Algorithm::OptM,
    ]
    .iter()
    .map(|&algorithm| {
        Cell::new(
            "fig2",
            "figure 2 example",
            algorithm,
            Family::Figure2,
            Reference::KnownOptimum(4),
        )
    })
    .collect()
}

/// Figure 3 / Theorem 3: the adversarial RoundRobin family, ratio → 2.
#[must_use]
pub fn fig3_cells(sizes: &[usize]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &n in sizes {
        for algorithm in [Algorithm::RoundRobin, Algorithm::GreedyBalance] {
            cells.push(Cell::new(
                "fig3",
                format!("fig3 n={n}"),
                algorithm,
                Family::RoundRobinWorstCase { n },
                Reference::KnownOptimum(round_robin_worst_case_opt(n)),
            ));
        }
    }
    cells
}

/// The Partition multisets of the Figure 4 table (three YES, three NO).
#[must_use]
pub fn fig4_default_cases() -> Vec<Vec<u64>> {
    vec![
        vec![2, 2, 3, 3],
        vec![2, 3, 4, 5, 6],
        vec![4, 4, 4, 4],
        vec![2, 2, 3, 5],
        vec![3, 3, 3, 5],
        vec![1, 2, 4, 5],
    ]
}

/// Figure 4 / Theorem 4: Partition reduction; YES → makespan 4, NO → ≥ 5.
#[must_use]
pub fn fig4_cells(cases: &[Vec<u64>]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for values in cases {
        let verdict = if is_yes_instance(values) { "YES" } else { "NO" };
        let label = format!("{values:?} ({verdict})");
        for algorithm in [
            Algorithm::BruteForce,
            Algorithm::GreedyBalance,
            Algorithm::RoundRobin,
        ] {
            cells.push(Cell::new(
                "fig4",
                label.clone(),
                algorithm,
                Family::Partition {
                    values: values.clone(),
                },
                Reference::BruteForce,
            ));
        }
    }
    cells
}

/// Figure 5 / Theorem 8: the GreedyBalance block construction, ratio →
/// 2 − 1/m.  Block counts that do not fit the `1/denominator` grid are
/// skipped, as in the paper's construction.
#[must_use]
pub fn fig5_cells(denominator: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for m in 2..=6usize {
        let max_blocks = greedy_balance_max_blocks(m, denominator);
        for blocks in [1usize, 4, 16, 64] {
            if blocks > max_blocks {
                continue;
            }
            // Reference: exact optimum on tiny cases, workload lower bound
            // otherwise (the optimum approaches it as ε → 0).
            let reference = if m * blocks * m <= 12 {
                Reference::OptM
            } else {
                Reference::WorkloadBound
            };
            cells.push(Cell::new(
                "fig5",
                format!("fig5 m={m} blocks={blocks}"),
                Algorithm::GreedyBalance,
                Family::GreedyWorstCase {
                    m,
                    denominator,
                    blocks,
                },
                reference,
            ));
        }
    }
    cells
}

/// E8-style random grid: GreedyBalance and RoundRobin against the exact
/// optimum on small instances.  Heavy-requirement instances on four
/// processors make the configuration search expensive, so that corner is
/// excluded (see E7).
#[must_use]
pub fn random_exact_cells(reps: u64, profiles: &[RequirementProfile]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (m, n) in [(2usize, 4usize), (3, 3), (3, 4), (4, 3)] {
        for &profile in profiles {
            if m >= 4 && matches!(profile, RequirementProfile::Heavy) {
                continue;
            }
            for rep in 0..reps {
                for &algorithm in &[Algorithm::GreedyBalance, Algorithm::RoundRobin] {
                    cells.push(Cell::new(
                        "E8",
                        format!("{profile:?} m={m} n={n} rep={rep}"),
                        algorithm,
                        Family::RandomUnit { m, n, profile },
                        Reference::OptM,
                    ));
                }
            }
        }
    }
    cells
}

/// E8-style random grid against the best lower bound on larger instances.
#[must_use]
pub fn random_large_cells(reps: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (m, n) in [(4usize, 20usize), (8, 20), (16, 40)] {
        for rep in 0..reps {
            cells.push(Cell::new(
                "E8-large",
                format!("uniform m={m} n={n} rep={rep}"),
                Algorithm::GreedyBalance,
                Family::RandomUnit {
                    m,
                    n,
                    profile: RequirementProfile::Uniform,
                },
                Reference::BestLowerBound,
            ));
        }
    }
    cells
}

/// E12-style grid: arbitrary job sizes against the trivial lower bound
/// (workload, chain and volume-chain — the volume-chain part matters here).
#[must_use]
pub fn sized_cells(reps: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (m, n, vmax) in [(3usize, 4usize, 3u64), (4, 6, 4), (8, 8, 4)] {
        for rep in 0..reps {
            for &algorithm in &[Algorithm::GreedyBalance, Algorithm::RoundRobin] {
                cells.push(Cell::new(
                    "E12",
                    format!("sized m={m} n={n} vmax={vmax} rep={rep}"),
                    algorithm,
                    Family::RandomSized { m, n, vmax },
                    Reference::TrivialLowerBound,
                ));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Runner;

    #[test]
    fn builders_produce_consistent_labels() {
        // Every cell sharing an instance label must share family and
        // reference, otherwise the Runner's memoization key would be
        // ambiguous.
        let grids = [
            fig1_cells(),
            fig2_cells(),
            fig3_cells(&FIG3_SIZES[..3]),
            fig4_cells(&fig4_default_cases()),
            fig5_cells(1000),
            random_exact_cells(2, &[RequirementProfile::Uniform]),
            random_large_cells(2),
            sized_cells(2),
        ];
        for cells in &grids {
            for a in cells {
                for b in cells {
                    if a.experiment == b.experiment && a.instance == b.instance {
                        assert_eq!(a.family, b.family);
                        assert_eq!(a.reference, b.reference);
                    }
                }
            }
        }
    }

    #[test]
    fn fig4_yes_cases_have_optimum_four() {
        let runner = Runner::default();
        let results = runner.run(&fig4_cells(&fig4_default_cases()));
        for result in results
            .iter()
            .filter(|r| r.algorithm == Algorithm::BruteForce.name())
        {
            if result.instance.contains("(YES)") {
                assert_eq!(result.makespan, 4, "{}", result.instance);
            } else {
                assert!(result.makespan >= 5, "{}", result.instance);
            }
        }
    }

    #[test]
    fn sized_grid_uses_the_trivial_bound() {
        let cells = sized_cells(1);
        assert!(cells
            .iter()
            .all(|c| c.reference == Reference::TrivialLowerBound));
    }
}
