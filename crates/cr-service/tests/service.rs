//! Batch-service contracts: order stability, per-request isolation, warm
//! cache behavior, and byte-identical results across thread counts and
//! batch split points.

use cr_algos::solver::{Budget, EnginePreference, SolveRequest};
use cr_core::Instance;
use cr_service::{wire, SolverService};
use proptest::prelude::*;

/// The method line-up mixed through the property-test batches.
const METHODS: [&str; 6] = [
    "GreedyBalance",
    "RoundRobin",
    "ProportionalShare",
    "OptM",
    "Bounds",
    "sim:GreedyBalance",
];

fn instance_from(rows: &[Vec<u64>]) -> Instance {
    let reqs = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|&pct| cr_core::Ratio::new(i128::from(pct), 100))
                .collect()
        })
        .collect();
    Instance::unit_from_requirements(reqs)
}

/// Renders a result list exactly as the serve loop would, so "byte
/// identical" means identical wire output.
fn render(service: &SolverService, requests: &[SolveRequest]) -> Vec<String> {
    service
        .solve_batch(requests)
        .iter()
        .enumerate()
        .map(|(i, result)| wire::response_line(i as u64, &requests[i].method, result))
        .collect()
}

#[test]
fn mixed_batch_isolates_failures_without_poisoning_siblings() {
    let service = SolverService::with_standard_registry();
    let fig = instance_from(&[vec![60, 40, 80], vec![30, 90, 10]]);
    let tall = instance_from(&[vec![100], vec![100], vec![100]]);
    let requests = vec![
        SolveRequest::new("GreedyBalance", fig.clone()),
        SolveRequest::new("NoSuchMethod", fig.clone()),
        SolveRequest::new("OptM", tall.clone()).with_budget(Budget {
            max_rounds: Some(1),
            ..Budget::UNLIMITED
        }),
        SolveRequest::new("OptTwo", tall.clone()),
        SolveRequest::new("OptM", fig.clone()),
    ];
    let results = service.solve_batch(&requests);
    assert_eq!(results.len(), requests.len());
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert_eq!(results[1].as_ref().unwrap_err().kind(), "unknown_method");
    assert_eq!(results[2].as_ref().unwrap_err().kind(), "budget_exhausted");
    assert_eq!(
        results[3].as_ref().unwrap_err().kind(),
        "wrong_processor_count"
    );
    let exact = results[4].as_ref().unwrap();
    assert_eq!(exact.makespan, Some(cr_algos::opt_m_makespan(&fig)));
    // The heuristic's answer is bounded by the sibling's exact optimum.
    assert!(results[0].as_ref().unwrap().makespan >= exact.makespan);
}

#[test]
fn warm_cache_holds_one_entry_per_distinct_instance() {
    let service = SolverService::with_standard_registry();
    let fig = instance_from(&[vec![60, 40], vec![40, 60]]);
    let other = instance_from(&[vec![50], vec![50]]);
    let requests = vec![
        SolveRequest::new("GreedyBalance", fig.clone()),
        SolveRequest::new("OptTwo", fig.clone()),
        SolveRequest::new("OptM", fig.clone()),
        SolveRequest::new("EqualShare", other.clone()),
    ];
    let first = service.solve_batch(&requests);
    assert_eq!(service.cached_instances(), 2);
    // A second pass over the same instances hits the warm cache and returns
    // identical results.
    let second = service.solve_batch(&requests);
    assert_eq!(service.cached_instances(), 2);
    assert_eq!(first, second);
}

#[test]
fn single_solve_and_batch_agree() {
    let service = SolverService::with_standard_registry();
    let fig = instance_from(&[vec![60, 40, 80], vec![30, 90, 10]]);
    let requests: Vec<SolveRequest> = METHODS
        .iter()
        .map(|&m| SolveRequest::new(m, fig.clone()))
        .collect();
    let batched = service.solve_batch(&requests);
    for (request, batched_result) in requests.iter().zip(&batched) {
        assert_eq!(&service.solve(request), batched_result);
    }
}

#[test]
fn engine_preference_rides_the_wire() {
    let service = SolverService::with_standard_registry();
    let line =
        r#"{"method":"OptM","engine":"rational","rows":[[60,40],[40,60]],"want_schedule":true}"#;
    let parsed = wire::parse_request(line, 7).unwrap();
    assert_eq!(parsed.id, 7);
    assert_eq!(parsed.request.engine, EnginePreference::Rational);
    let outcome = service.solve(&parsed.request).unwrap();
    assert_eq!(outcome.engine.as_str(), "rational");
    assert!(outcome.schedule.is_some());
}

#[test]
fn malformed_lines_become_bad_request_responses_in_order() {
    let service = SolverService::with_standard_registry();
    let lines: Vec<String> = vec![
        r#"{"method":"GreedyBalance","rows":[[50,50]]}"#.to_string(),
        "definitely not json".to_string(),
        r#"{"rows":[[50]]}"#.to_string(),
        r#"{"method":"GreedyBalance","rows":[[150]]}"#.to_string(),
        r#"{"method":"OptTwo","rows":[[40],[40]]}"#.to_string(),
    ];
    let responses = wire::process_batch(&service, &lines, 0);
    assert_eq!(responses.len(), lines.len());
    // One processor, a chain of two 50% jobs: the chain bound forces 2.
    assert!(responses[0].contains("\"makespan\":2"));
    assert!(responses[1].contains("bad_request"));
    assert!(responses[2].contains("missing field `method`"));
    assert!(responses[3].contains("outside [0, 100]"));
    assert!(responses[4].contains("\"makespan\":1"));
    for (i, response) in responses.iter().enumerate() {
        assert!(response.contains(&format!("\"id\":{i}")), "{response}");
    }
}

/// The Rust mirror of CI's `cr-serve` smoke job: the committed 12-request
/// batch (`tests/data/smoke_batch.jsonl`) must come back complete, in
/// order, with the golden makespan per method, a structured error in the
/// deliberately over-budget slot, and the two multi-resource slots — one
/// solved `k = 2` request whose extra layer binds (makespan 4 vs the scalar
/// optimum 2 of the same base rows) and one misshapen `resources` layer
/// rejected as `bad_request`.  If this test needs updating, update the
/// `service-smoke` assertions in `.github/workflows/ci.yml` too.
#[test]
fn smoke_batch_matches_the_ci_goldens() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/smoke_batch.jsonl");
    let lines: Vec<String> = std::fs::read_to_string(path)
        .expect("read smoke batch")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 12);
    let service = SolverService::with_standard_registry();
    let responses = wire::process_batch(&service, &lines, 0);
    assert_eq!(responses.len(), 12);
    // (method, makespan golden or None for the bounds/error slots).  A
    // rejected slot answers with an empty method string.
    let goldens: [(&str, Option<usize>); 12] = [
        ("GreedyBalance", Some(6)),
        ("RoundRobin", Some(8)),
        ("OptM", Some(6)),
        ("OptTwo", Some(2)),
        ("EqualShare", Some(3)),
        ("ProportionalShare", Some(2)),
        ("Bounds", None),
        ("sim:GreedyBalance", Some(3)),
        ("OptM", None),
        ("BruteForce", Some(3)),
        ("OptM", Some(4)),
        ("", None),
    ];
    for (i, (response, (method, makespan))) in responses.iter().zip(goldens).enumerate() {
        assert!(
            response.contains(&format!("\"id\":{i},\"method\":\"{method}\"")),
            "slot {i} order or method diverged: {response}"
        );
        if let Some(value) = makespan {
            assert!(
                response.contains(&format!("\"makespan\":{value}")),
                "slot {i} golden makespan diverged: {response}"
            );
        }
    }
    assert!(responses[6].contains("\"best\":5"), "{}", responses[6]);
    assert!(
        responses[8].contains("budget_exhausted"),
        "{}",
        responses[8]
    );
    assert!(
        responses[11].contains("bad_request") && responses[11].contains("layer row holds 1"),
        "{}",
        responses[11]
    );
}

#[test]
fn multi_resource_requests_ride_the_wire() {
    let service = SolverService::with_standard_registry();
    // The `resources` shorthand and an `instance` with embedded `extra`
    // layers describe the same k = 2 instance and must answer identically.
    let shorthand = wire::parse_request(
        r#"{"method":"OptM","rows":[[60,40],[40,60]],"resources":[[[90,90],[90,90]]]}"#,
        0,
    )
    .unwrap();
    assert_eq!(shorthand.request.instance.resources(), 2);
    let instance_json =
        serde_json::to_string(&serde::Serialize::serialize(&shorthand.request.instance)).unwrap();
    let embedded_json = format!(r#"{{"method":"OptM","instance":{instance_json}}}"#);
    let embedded = wire::parse_request(&embedded_json, 1).unwrap();
    assert_eq!(embedded.request.instance, shorthand.request.instance);
    let a = service.solve(&shorthand.request).unwrap();
    assert_eq!(a.makespan, Some(4));
    assert_eq!(service.solve(&embedded.request).unwrap().makespan, Some(4));

    // `resources` next to a full `instance` is a structured parse error.
    let err = wire::parse_request(
        &embedded_json.replace("\"instance\"", "\"resources\":[],\"instance\""),
        2,
    )
    .unwrap_err();
    assert!(err.contains("`rows` shorthand"), "{err}");

    // Schedules stay single-resource: want_schedule on k = 2 is the
    // structured resource_mismatch kind, for online and offline methods.
    for method in ["OptM", "sim:GreedyBalance"] {
        let line = format!(
            r#"{{"method":"{method}","rows":[[60,40],[40,60]],"resources":[[[90,90],[90,90]]],"want_schedule":true}}"#
        );
        let parsed = wire::parse_request(&line, 3).unwrap();
        let err = service.solve(&parsed.request).unwrap_err();
        assert_eq!(err.kind(), "resource_mismatch", "{method}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The service determinism contract: results are byte-identical across
    /// worker counts (RAYON_NUM_THREADS=1 vs the default) and across batch
    /// split points.
    #[test]
    fn batch_results_are_thread_and_split_invariant(
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=4), 1..=3),
        extra in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 1..=3),
        split in 0usize..=11,
    ) {
        let service = SolverService::with_standard_registry();
        let a = instance_from(&rows);
        let b = instance_from(&extra);
        let mut requests = Vec::new();
        for (i, &method) in METHODS.iter().enumerate() {
            let inst = if i % 2 == 0 { a.clone() } else { b.clone() };
            let mut request = SolveRequest::new(method, inst);
            request.want_schedule = i % 3 == 0;
            requests.push(request);
        }

        let parallel = render(&service, &requests);

        // Serial run: byte-identical output.
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = render(&service, &requests);
        std::env::remove_var("RAYON_NUM_THREADS");
        prop_assert_eq!(&parallel, &serial);

        // Split at an arbitrary point: concatenation is byte-identical too
        // (per-request results do not depend on batch composition).
        let split = split.min(requests.len());
        let mut joined = service
            .solve_batch(&requests[..split])
            .into_iter()
            .chain(service.solve_batch(&requests[split..]))
            .enumerate()
            .map(|(i, result)| wire::response_line(i as u64, &requests[i].method, &result))
            .collect::<Vec<String>>();
        prop_assert_eq!(&parallel, &joined);
        joined.clear();
    }
}

#[test]
fn poisoned_cache_mutex_recovers_and_counts_the_rebuild() {
    let service = SolverService::with_standard_registry();
    let instance = instance_from(&[vec![60, 40], vec![40, 60]]);
    // Warm the cache, then poison its mutex the way a panicking solver
    // holding the lock would.
    let _ = service.solve_batch(&[SolveRequest::new("GreedyBalance", instance.clone())]);
    assert_eq!(service.cached_instances(), 1);
    assert_eq!(service.cache_rebuilds(), 0);
    service.poison_cache_for_tests();
    // The next batch recovers: the cache is cleared and rebuilt warm, the
    // rebuild is counted once, and results are unaffected.
    let results = service.solve_batch(&[SolveRequest::new("GreedyBalance", instance)]);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert_eq!(service.cache_rebuilds(), 1);
    assert_eq!(service.cached_instances(), 1);
}

#[test]
fn panicking_solver_occupies_its_slot_while_siblings_answer() {
    let service = SolverService::with_standard_registry_and_debug();
    let instance = instance_from(&[vec![60, 40], vec![40, 60]]);
    let requests = vec![
        SolveRequest::new("GreedyBalance", instance.clone()),
        SolveRequest::new("debug:panic", instance.clone()),
        SolveRequest::new("Bounds", instance.clone()),
    ];
    let results = service.solve_batch(&requests);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    match &results[1] {
        Err(err) => {
            assert_eq!(err.kind(), "internal_error");
            assert!(err.to_string().contains("deliberate panic"), "{err}");
        }
        Ok(_) => panic!("panicking solver reported success"),
    }
    assert!(results[2].is_ok(), "{:?}", results[2]);
    // The service keeps answering normally afterwards — byte-identical to
    // a fresh service.
    let sane = vec![SolveRequest::new("OptM", instance)];
    let after = render(&service, &sane);
    let fresh = render(&SolverService::with_standard_registry(), &sane);
    assert_eq!(after, fresh);
}
