//! Nested span tracing on a thread-local name stack.
//!
//! [`Span::enter`] pushes a static name and returns an RAII guard; the
//! guard's drop pops the name and accumulates the span's wall time in the
//! global registry under the `/`-joined path of everything on the stack at
//! that moment (`"serve.solve/optm.search/optm.round"`).  Names may
//! themselves contain dots, so the path separator is `/`.
//!
//! Each OS thread has its own stack: spans nest within a thread, and a
//! parallel stage's worker threads each start from an empty stack (the
//! vendored rayon shim spawns fresh scoped threads per operation, so no
//! foreign frames ever interleave).  Drops run during panic unwinding too,
//! which keeps the stack balanced and still records the aborted span.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::{recording_compiled, Registry};

thread_local! {
    /// The current thread's span-name stack.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard for one traced span; see the module docs.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
pub struct Span {
    /// `None` when recording is off (the guard is inert).
    start: Option<Instant>,
    /// Stack length *including* this span's own name.
    depth: usize,
}

impl Span {
    /// Enters a span named `name` on the global registry.
    pub fn enter(name: &'static str) -> Span {
        if !recording_compiled() || !Registry::global().enabled() {
            return Span {
                start: None,
                depth: 0,
            };
        }
        let depth = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.len()
        });
        Span {
            start: Some(Instant::now()),
            depth,
        }
    }

    /// The current thread's span path (`/`-joined), for tests and
    /// diagnostics.  Empty when no span is active.
    #[must_use]
    pub fn current_path() -> String {
        STACK.with(|stack| stack.borrow().join("/"))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Out-of-order drops (std::mem::drop on a parent first) would
            // leave orphaned children; truncating to our own depth keeps
            // the stack consistent in that (unsupported but harmless) case.
            stack.truncate(self.depth);
            let path = stack.join("/");
            stack.pop();
            path
        });
        Registry::global().record_span(&path, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Span tests share the global registry (and one toggles its enable
    /// flag), so they serialize on this lock instead of racing.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Count recorded for exactly `path` in the global registry
    /// (assertions are deltas on paths unique to each test).
    fn count_of(path: &str) -> u64 {
        Registry::global()
            .snapshot()
            .spans
            .iter()
            .filter(|s| s.path == path)
            .map(|s| s.count)
            .sum()
    }

    #[test]
    fn nesting_builds_slash_joined_paths() {
        if !recording_compiled() {
            return;
        }
        let _serial = serialize();
        let before = count_of("t.outer/t.inner");
        {
            let _outer = Span::enter("t.outer");
            assert_eq!(Span::current_path(), "t.outer");
            {
                let _inner = Span::enter("t.inner");
                assert_eq!(Span::current_path(), "t.outer/t.inner");
            }
            assert_eq!(Span::current_path(), "t.outer");
        }
        assert_eq!(Span::current_path(), "");
        assert_eq!(count_of("t.outer/t.inner"), before + 1);
    }

    #[test]
    fn sequential_siblings_accumulate_under_one_path() {
        if !recording_compiled() {
            return;
        }
        let _serial = serialize();
        let before = count_of("t.seq/t.child");
        let _outer = Span::enter("t.seq");
        for _ in 0..3 {
            let _child = Span::enter("t.child");
        }
        drop(_outer);
        assert_eq!(count_of("t.seq/t.child"), before + 3);
    }

    #[test]
    fn panic_during_span_unwinds_the_stack_and_still_records() {
        if !recording_compiled() {
            return;
        }
        let _serial = serialize();
        let before_inner = count_of("t.panics/t.doomed");
        let before_outer = count_of("t.panics");
        let result = std::panic::catch_unwind(|| {
            let _outer = Span::enter("t.panics");
            let _inner = Span::enter("t.doomed");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(Span::current_path(), "", "unwinding must pop every frame");
        assert_eq!(count_of("t.panics/t.doomed"), before_inner + 1);
        assert_eq!(count_of("t.panics"), before_outer + 1);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = serialize();
        let probe = "t.disabled.probe";
        let before = count_of(probe);
        Registry::global().set_enabled(false);
        let span = Span::enter(probe);
        assert_eq!(Span::current_path(), "");
        drop(span);
        Registry::global().set_enabled(true);
        assert_eq!(count_of(probe), before);
    }
}
