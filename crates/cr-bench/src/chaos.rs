//! Chaos / fault-injection harness for the socket serving tier.
//!
//! `cr-loadgen --chaos` drives this module against a live `cr-serve
//! --listen` process.  Each *storm* injects one class of client
//! misbehavior — mid-line disconnects, slow-loris dribbling, oversized and
//! malformed frames, deadline-busting solves, connections killed while a
//! schedule is streaming — and after **every** storm the harness replays
//! the committed golden smoke batch on a fresh connection and demands
//! byte-identity with the in-process reference, then probes the
//! `{"control":"stats"}` frame until `inflight` returns to zero.
//!
//! The contract under test is the serving tier's failure-domain design
//! (`docs/ARCHITECTURE.md`): a misbehaving client may lose *its own*
//! connection, but never a sibling's answer, never an in-flight slot, and
//! never the server process.

use crate::loadgen::SMOKE_BATCH;
use cr_service::{wire, SolverService};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One chaos run's shape.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Full storm-cycle repetitions (every cycle runs all five storms,
    /// each followed by a golden smoke + quiescence check).
    pub rounds: usize,
    /// Per-request deadline handed to the deadline-buster storm; the
    /// pathological instance it guards runs for minutes uncancelled.
    pub deadline_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            rounds: 2,
            deadline_ms: 100,
        }
    }
}

/// Aggregated tallies of one chaos run (all asserts already passed if this
/// is returned at all — the counts exist so drivers can print evidence
/// that the storms actually exercised their fault paths).
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Storms injected (5 per round).
    pub storms: usize,
    /// Golden smoke-batch byte-identity checks that passed (one per storm).
    pub smoke_checks: usize,
    /// `deadline_exceeded` rows observed from the deadline-buster storm.
    pub deadline_exceeded_rows: usize,
    /// `bad_request` rows observed from the malformed-frame storm.
    pub bad_request_rows: usize,
    /// Connections deliberately killed mid-protocol across all storms.
    pub connections_killed: usize,
}

/// How long the quiescence probe will poll `stats` for `inflight` to
/// return to zero (a cancelled flush may still be unwinding when the
/// chaos client's socket closes).
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

fn connect(addr: SocketAddr) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    Ok(stream)
}

/// Sends `lines` plus a flushing blank line and reads `expect` response
/// lines on one fresh connection.
fn roundtrip(addr: SocketAddr, lines: &[String], expect: usize) -> Result<Vec<String>, String> {
    let mut stream = connect(addr)?;
    for line in lines {
        writeln!(stream, "{line}").map_err(|e| format!("send request: {e}"))?;
    }
    writeln!(stream).map_err(|e| format!("send flush: {e}"))?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(expect);
    for i in 0..expect {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read response {i}: {e}"))?;
        if line.is_empty() {
            return Err(format!("connection closed before response {i}"));
        }
        responses.push(line.trim_end().to_string());
    }
    Ok(responses)
}

/// The golden check run after every storm: the committed smoke batch must
/// come back byte-identical to the in-process reference on a fresh
/// connection — a misbehaving sibling may never corrupt a well-behaved
/// client's answers.
fn golden_smoke(addr: SocketAddr) -> Result<(), String> {
    let batch: Vec<String> = SMOKE_BATCH.lines().map(str::to_string).collect();
    let reference = wire::process_batch(&SolverService::with_standard_registry(), &batch, 0);
    let responses = roundtrip(addr, &batch, reference.len())?;
    for (i, (got, want)) in responses.iter().zip(&reference).enumerate() {
        if got != want {
            return Err(format!(
                "post-storm smoke response {i} diverged:\n  got:  {got}\n  want: {want}"
            ));
        }
    }
    Ok(())
}

/// Extracts an integer counter from a stats frame line.
fn stats_field(line: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let rest = &line[line.find(&key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Polls the `{"control":"stats"}` frame until `inflight` returns to zero:
/// no storm may leak a request slot, even when it cancelled a flush by
/// dying mid-solve.
fn assert_quiescent(addr: SocketAddr) -> Result<(), String> {
    let start = Instant::now();
    let mut last = String::new();
    while start.elapsed() < QUIESCE_TIMEOUT {
        let mut stream = connect(addr)?;
        writeln!(stream, r#"{{"control":"stats"}}"#).map_err(|e| format!("send stats: {e}"))?;
        stream.flush().map_err(|e| e.to_string())?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read stats: {e}"))?;
        if !line.contains("\"control\":\"stats\"") {
            return Err(format!(
                "stats probe got a non-stats line: {}",
                line.trim_end()
            ));
        }
        match stats_field(&line, "inflight") {
            Some(0) => return Ok(()),
            Some(_) => last = line.trim_end().to_string(),
            None => return Err(format!("stats frame without inflight: {}", line.trim_end())),
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Err(format!("in-flight slots never drained to zero: {last}"))
}

/// The deadline-busting request: a 6-processor brute-force instance that
/// runs for minutes uncancelled (same instance the `cr-service` net tests
/// pin), bounded only by its `deadline_ms`.  Public so the experiments
/// driver's deadline-enforcement cell measures the same workload the
/// chaos suite storms with.
#[must_use]
pub fn pathological_line(deadline_ms: u64) -> String {
    format!(
        concat!(
            r#"{{"method":"BruteForce","deadline_ms":{},"rows":"#,
            r#"[[10,20,30,40,50],[15,25,35,45,55],[12,22,32,42,52],"#,
            r#"[13,23,33,43,53],[14,24,34,44,54],[16,26,36,46,56]]}}"#
        ),
        deadline_ms
    )
}

/// Storm 1: connections dropped mid-protocol — half a request line with no
/// newline, a complete line that was never flushed, and a flushed batch
/// whose responses are never read.
fn storm_midline_disconnect(addr: SocketAddr, report: &mut ChaosReport) -> Result<(), String> {
    // Half a line, no terminating newline.
    let mut partial = connect(addr)?;
    partial
        .write_all(br#"{"method":"GreedyBalance","rows":[[60,"#)
        .map_err(|e| format!("send partial line: {e}"))?;
    partial.flush().map_err(|e| e.to_string())?;
    drop(partial);

    // A complete request line, but the client dies before the blank-line
    // flush ever arrives.
    let mut unflushed = connect(addr)?;
    writeln!(unflushed, r#"{{"method":"OptM","rows":[[60,40],[40,60]]}}"#)
        .map_err(|e| format!("send unflushed line: {e}"))?;
    unflushed.flush().map_err(|e| e.to_string())?;
    drop(unflushed);

    // A flushed batch whose client hangs up without reading a byte back.
    let mut unread = connect(addr)?;
    writeln!(unread, r#"{{"method":"OptM","rows":[[60,40],[40,60]]}}"#)
        .map_err(|e| format!("send unread batch: {e}"))?;
    writeln!(unread).map_err(|e| format!("send unread flush: {e}"))?;
    unread.flush().map_err(|e| e.to_string())?;
    drop(unread);

    report.connections_killed += 3;
    Ok(())
}

/// Storm 2: slow-loris — a well-formed request dribbled a byte at a time
/// must still answer correctly (mid-line bytes count as activity, not
/// idleness), then a dribbler that gives up mid-line.
fn storm_slow_loris(addr: SocketAddr, report: &mut ChaosReport) -> Result<(), String> {
    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let request = "{\"method\":\"GreedyBalance\",\"rows\":[[50,50]]}\n\n";
    for chunk in request.as_bytes().chunks(3) {
        writer
            .write_all(chunk)
            .map_err(|e| format!("dribble chunk: {e}"))?;
        writer.flush().map_err(|e| e.to_string())?;
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read dribbled response: {e}"))?;
    // One processor, a chain of two 50% jobs: the chain bound forces 2.
    if !line.contains("\"makespan\":2") {
        return Err(format!(
            "dribbled request answered wrong: {}",
            line.trim_end()
        ));
    }

    // The loris that never finishes its line.
    let mut quitter = connect(addr)?;
    for chunk in br#"{"method":"RoundRobin","ro"#.chunks(2) {
        quitter
            .write_all(chunk)
            .map_err(|e| format!("dribble quitter: {e}"))?;
        quitter.flush().map_err(|e| e.to_string())?;
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(quitter);
    report.connections_killed += 1;
    Ok(())
}

/// Storm 3: oversized, malformed and shape-mismatched multi-resource
/// frames answer structured `bad_request` rows on a connection that
/// survives to serve the valid sibling in the same batch.
fn storm_malformed_frames(addr: SocketAddr, report: &mut ChaosReport) -> Result<(), String> {
    let oversized = format!("{{\"method\":\"{}\"}}", "x".repeat(1 << 16));
    let lines = vec![
        oversized,
        "definitely not json".to_string(),
        r#"{"method":"GreedyBalance","rows":[[150]]}"#.to_string(),
        // An extra resource layer whose row holds 1 requirement against 2
        // jobs: the multi-resource shorthand's shape check must reject it.
        r#"{"method":"GreedyBalance","rows":[[50,50]],"resources":[[[50]]]}"#.to_string(),
        r#"{"method":"GreedyBalance","rows":[[50,50]]}"#.to_string(),
    ];
    let responses = roundtrip(addr, &lines, lines.len())?;
    for (i, response) in responses[..4].iter().enumerate() {
        if !response.contains("\"kind\":\"bad_request\"") {
            return Err(format!(
                "malformed frame {i} was not a structured bad_request: {response}"
            ));
        }
        report.bad_request_rows += 1;
    }
    if !responses[4].contains("\"makespan\":2") {
        return Err(format!(
            "valid sibling of malformed frames answered wrong: {}",
            responses[4]
        ));
    }
    Ok(())
}

/// Storm 4: deadline-busters — pathological solves bounded only by their
/// `deadline_ms` must answer `deadline_exceeded` promptly with a
/// byte-identical well-behaved sibling.
fn storm_deadline_busters(
    addr: SocketAddr,
    config: &ChaosConfig,
    report: &mut ChaosReport,
) -> Result<(), String> {
    let greedy = r#"{"method":"GreedyBalance","rows":[[60,40],[40,60]]}"#.to_string();
    let reference = wire::process_batch(
        &SolverService::with_standard_registry(),
        std::slice::from_ref(&greedy),
        0,
    );
    let lines = vec![greedy, pathological_line(config.deadline_ms)];
    let start = Instant::now();
    let responses = roundtrip(addr, &lines, 2)?;
    let elapsed = start.elapsed();
    if responses[0] != reference[0] {
        return Err(format!(
            "deadline-buster's sibling diverged:\n  got:  {}\n  want: {}",
            responses[0], reference[0]
        ));
    }
    if !responses[1].contains("\"kind\":\"deadline_exceeded\"") {
        return Err(format!(
            "pathological request did not hit its deadline: {}",
            responses[1]
        ));
    }
    report.deadline_exceeded_rows += 1;
    // Generous wall bound: the uncancelled solve runs for minutes, so even
    // 10× the deadline proves enforcement while tolerating slow CI hosts.
    let bound = Duration::from_millis(config.deadline_ms.saturating_mul(10).max(2_000));
    if elapsed > bound {
        return Err(format!(
            "deadline enforcement took {elapsed:?} (deadline {} ms)",
            config.deadline_ms
        ));
    }
    Ok(())
}

/// Storm 5: the client dies while a schedule is streaming — head and one
/// chunk are read, then the socket drops mid-stream.
fn storm_kill_while_streaming(addr: SocketAddr, report: &mut ChaosReport) -> Result<(), String> {
    // 300 chained 100% jobs: a 300-step schedule, over the default
    // 256-step streaming threshold.
    let rows = vec!["[100]"; 300];
    let line = format!(
        "{{\"method\":\"EqualShare\",\"rows\":[{}],\"want_schedule\":true}}",
        rows.join(",")
    );
    let stream = connect(addr)?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").map_err(|e| format!("send streaming request: {e}"))?;
    writeln!(writer).map_err(|e| format!("send flush: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut frame = String::new();
    reader
        .read_line(&mut frame)
        .map_err(|e| format!("read stream head: {e}"))?;
    if !frame.contains("\"frame\":\"head\"") {
        return Err(format!("expected a stream head, got: {}", frame.trim_end()));
    }
    frame.clear();
    reader
        .read_line(&mut frame)
        .map_err(|e| format!("read first chunk: {e}"))?;
    if !frame.contains("\"frame\":\"chunk\"") {
        return Err(format!(
            "expected a stream chunk, got: {}",
            frame.trim_end()
        ));
    }
    // Die with the rest of the stream still in flight.
    drop(reader);
    drop(writer);
    report.connections_killed += 1;
    Ok(())
}

/// Runs the full chaos suite against a serving socket.
///
/// # Errors
///
/// A human-readable description of the first broken contract: a corrupted
/// sibling response, a missing structured error, a leaked in-flight slot,
/// or a server that stopped answering.
pub fn run(addr: SocketAddr, config: &ChaosConfig) -> Result<ChaosReport, String> {
    /// One storm entry: injects its faults and tallies what it exercised.
    type Storm = fn(SocketAddr, &ChaosConfig, &mut ChaosReport) -> Result<(), String>;
    let mut report = ChaosReport::default();
    let storms: [(&str, Storm); 5] = [
        ("midline-disconnect", |a, _, r| {
            storm_midline_disconnect(a, r)
        }),
        ("slow-loris", |a, _, r| storm_slow_loris(a, r)),
        ("malformed-frames", |a, _, r| storm_malformed_frames(a, r)),
        ("deadline-busters", storm_deadline_busters),
        ("kill-while-streaming", |a, _, r| {
            storm_kill_while_streaming(a, r)
        }),
    ];
    for round in 0..config.rounds.max(1) {
        for (name, storm) in &storms {
            storm(addr, config, &mut report)
                .map_err(|e| format!("round {round}, storm {name}: {e}"))?;
            report.storms += 1;
            golden_smoke(addr).map_err(|e| format!("round {round}, after storm {name}: {e}"))?;
            report.smoke_checks += 1;
            assert_quiescent(addr)
                .map_err(|e| format!("round {round}, after storm {name}: {e}"))?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fields_parse_out_of_frame_lines() {
        let line = r#"{"control":"stats","connections":3,"served":12,"inflight":0}"#;
        assert_eq!(stats_field(line, "inflight"), Some(0));
        assert_eq!(stats_field(line, "served"), Some(12));
        assert_eq!(stats_field(line, "missing"), None);
    }

    #[test]
    fn pathological_lines_parse_and_carry_their_deadline() {
        let line = pathological_line(100);
        assert!(line.contains("\"deadline_ms\":100"));
        let parsed = cr_service::wire::parse_request(&line, 0).expect("parses");
        assert_eq!(parsed.request.budget.max_wall_ms, Some(100));
    }
}
