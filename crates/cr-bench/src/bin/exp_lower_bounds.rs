//! E9 — quality of the lower bounds (Observation 1, chain bound, Lemma 5,
//! Lemma 6) relative to the exact optimum on small instances and relative to
//! GreedyBalance on larger ones.

#![forbid(unsafe_code)]

use cr_algos::{opt_m_makespan, GreedyBalance, Scheduler};
use cr_core::{bounds, SchedulingGraph};
use cr_instances::{
    figure1_instance, greedy_balance_worst_case, random_unit_instance, round_robin_worst_case,
    RandomConfig,
};

fn report(label: &str, instance: &cr_core::Instance, optimum: Option<usize>) {
    let schedule = GreedyBalance::new().schedule(instance);
    let trace = schedule.trace(instance).expect("feasible");
    let graph = SchedulingGraph::build(instance, &trace);
    let workload = bounds::workload_bound_steps(instance);
    let chain = bounds::chain_bound(instance);
    let lemma5 = bounds::component_bound(&graph);
    let lemma6 = bounds::class_bound_steps(&graph, instance.processors());
    let best = bounds::best_lower_bound(instance, &graph);
    let opt_text = optimum.map_or("—".to_string(), |o| o.to_string());
    println!(
        "  {label:<28} workload {workload:>5}  chain {chain:>5}  Lemma5 {lemma5:>5}  Lemma6 {lemma6:>5}  best {best:>5}  OPT {opt_text:>5}  Greedy {:>5}",
        trace.makespan()
    );
    if let Some(opt) = optimum {
        assert!(best <= opt, "a lower bound exceeded the optimum on {label}");
    }
}

fn main() {
    println!("E9 — lower-bound quality (Observation 1, Lemmas 5 and 6)\n");

    report(
        "figure 1 example",
        &figure1_instance(),
        Some(opt_m_makespan(&figure1_instance())),
    );
    report("fig3 family n=40", &round_robin_worst_case(40), Some(41));
    report(
        "fig5 blocks m=3 b=2",
        &greedy_balance_worst_case(3, 100, 2),
        None,
    );

    for &(m, n) in &[(3usize, 3usize), (3, 4), (4, 3)] {
        for seed in 0..3u64 {
            let instance = random_unit_instance(&RandomConfig::uniform(m, n), seed);
            let opt = opt_m_makespan(&instance);
            report(
                &format!("uniform m={m} n={n} seed={seed}"),
                &instance,
                Some(opt),
            );
        }
    }

    for &(m, n) in &[(8usize, 16usize), (16, 16)] {
        for seed in 0..2u64 {
            let instance = random_unit_instance(&RandomConfig::uniform(m, n), seed);
            report(&format!("uniform m={m} n={n} seed={seed}"), &instance, None);
        }
    }

    println!(
        "\npaper: Observation 1 and the chain bound hold for every instance; Lemma 5 requires a\n\
         non-wasting schedule and Lemma 6 a balanced one (both are satisfied by GreedyBalance)."
    );
}
