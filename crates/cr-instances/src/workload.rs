//! Synthetic many-core workloads for the shared-bus simulator (`cr-sim`).
//!
//! The paper motivates CRSharing with many-core chips whose cores share a
//! single data bus: I/O-intensive scientific tasks progress only as fast as
//! the bandwidth they are granted.  The paper itself contains no measured
//! traces, so this module generates synthetic multi-phase tasks with the
//! relevant structure: every core runs one task, every task is a sequence of
//! phases, and each phase has a bandwidth requirement (the job's resource
//! requirement) and a length (the job's processing volume).

use cr_core::{Instance, Job, Ratio};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// High-level task mix of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMix {
    /// Every task is I/O-bound: most phases demand 50–100% of the bus.
    IoBound,
    /// Every task is compute-bound: phases demand at most 20% of the bus.
    ComputeBound,
    /// Half of the cores run I/O-bound tasks, the other half compute-bound
    /// tasks — the scenario in which bandwidth arbitration matters most.
    Mixed,
    /// Tasks alternate between long low-bandwidth phases and short bursts
    /// that want the whole bus.
    Bursty,
}

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of cores (= processors of the CRSharing instance).
    pub cores: usize,
    /// Number of phases (= jobs) per task.
    pub phases_per_task: usize,
    /// Task mix.
    pub mix: TaskMix,
    /// Grid denominator for bandwidth requirements.
    pub denominator: u64,
    /// Whether phases have unit length (`true`) or random integral lengths up
    /// to 4 (`false`).
    pub unit_phases: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            cores: 8,
            phases_per_task: 6,
            mix: TaskMix::Mixed,
            denominator: 100,
            unit_phases: true,
        }
    }
}

fn draw_band(rng: &mut StdRng, denominator: u64, lo: f64, hi: f64) -> Ratio {
    let d = denominator.max(1);
    let lo_ticks = ((lo * d as f64).ceil() as u64).clamp(1, d);
    let hi_ticks = ((hi * d as f64).floor() as u64).clamp(lo_ticks, d);
    Ratio::from_parts(rng.random_range(lo_ticks..=hi_ticks), d)
}

fn draw_phase(cfg: &WorkloadConfig, rng: &mut StdRng, core: usize, phase: usize) -> Job {
    let requirement = match cfg.mix {
        TaskMix::IoBound => draw_band(rng, cfg.denominator, 0.5, 1.0),
        TaskMix::ComputeBound => draw_band(rng, cfg.denominator, 0.0, 0.2),
        TaskMix::Mixed => {
            if core % 2 == 0 {
                draw_band(rng, cfg.denominator, 0.5, 1.0)
            } else {
                draw_band(rng, cfg.denominator, 0.0, 0.2)
            }
        }
        TaskMix::Bursty => {
            if phase % 3 == 2 {
                draw_band(rng, cfg.denominator, 0.9, 1.0)
            } else {
                draw_band(rng, cfg.denominator, 0.0, 0.15)
            }
        }
    };
    let volume = if cfg.unit_phases {
        Ratio::ONE
    } else {
        Ratio::from_integer(rng.random_range(1..=4))
    };
    Job::new(requirement, volume)
}

/// Generates a synthetic workload as a CRSharing instance: core `i`'s task is
/// the job chain of processor `i`.
#[must_use]
pub fn generate_workload(cfg: &WorkloadConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Job>> = (0..cfg.cores)
        .map(|core| {
            (0..cfg.phases_per_task)
                .map(|phase| draw_phase(cfg, &mut rng, core, phase))
                .collect()
        })
        .collect();
    Instance::new(rows).expect("generated workload is valid")
}

/// The aggregate bandwidth demand of the workload relative to the bus
/// capacity per step, `Σ workload / (cores · phases)`.  Values near or above
/// `1/m` indicate a bandwidth-bound workload.
#[must_use]
pub fn average_demand(instance: &Instance) -> f64 {
    if instance.total_jobs() == 0 {
        return 0.0;
    }
    instance.total_workload().to_f64() / instance.total_jobs() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_matches_config() {
        let cfg = WorkloadConfig {
            cores: 4,
            phases_per_task: 5,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 42);
        assert_eq!(inst.processors(), 4);
        assert_eq!(inst.max_chain_length(), 5);
        assert!(inst.is_unit_size());
    }

    #[test]
    fn io_bound_demands_are_high() {
        let cfg = WorkloadConfig {
            mix: TaskMix::IoBound,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 1);
        for (_, job) in inst.iter_jobs() {
            assert!(job.requirement >= Ratio::from_percent(50));
        }
        assert!(average_demand(&inst) >= 0.5);
    }

    #[test]
    fn compute_bound_demands_are_low() {
        let cfg = WorkloadConfig {
            mix: TaskMix::ComputeBound,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 1);
        assert!(inst.max_requirement() <= Ratio::from_percent(20));
    }

    #[test]
    fn mixed_workload_has_both_kinds_of_cores() {
        let cfg = WorkloadConfig {
            mix: TaskMix::Mixed,
            cores: 6,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 9);
        let heavy_core_max = inst.processor_jobs(0).iter().map(|j| j.requirement).max();
        let light_core_max = inst.processor_jobs(1).iter().map(|j| j.requirement).max();
        assert!(heavy_core_max.unwrap() >= Ratio::from_percent(50));
        assert!(light_core_max.unwrap() <= Ratio::from_percent(20));
    }

    #[test]
    fn bursty_workload_contains_full_bus_phases() {
        let cfg = WorkloadConfig {
            mix: TaskMix::Bursty,
            phases_per_task: 9,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 2);
        let bursts = inst
            .iter_jobs()
            .filter(|(_, j)| j.requirement >= Ratio::from_percent(90))
            .count();
        assert!(bursts >= cfg.cores, "each task should contain bursts");
    }

    #[test]
    fn non_unit_phases_have_integral_lengths() {
        let cfg = WorkloadConfig {
            unit_phases: false,
            ..Default::default()
        };
        let inst = generate_workload(&cfg, 3);
        for (_, job) in inst.iter_jobs() {
            assert_eq!(job.volume.denom(), 1);
            assert!(job.volume >= Ratio::ONE);
            assert!(job.volume <= Ratio::from_integer(4));
        }
    }

    #[test]
    fn determinism() {
        let cfg = WorkloadConfig::default();
        assert_eq!(generate_workload(&cfg, 5), generate_workload(&cfg, 5));
        assert_ne!(generate_workload(&cfg, 5), generate_workload(&cfg, 6));
    }
}
