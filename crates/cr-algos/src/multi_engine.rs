//! The multi-resource (`k ≥ 2`) exact configuration search.
//!
//! Generalizes the configuration-domination search of [`crate::opt_m`] to
//! instances carrying extra resource layers (see
//! [`Instance::extra_layers`]): a configuration now records, per processor,
//! the completed-job count plus the resource already spent on the frontier
//! job **on every layer**, and one normalized time step distributes each
//! resource's full capacity independently.
//!
//! # The normalized step class
//!
//! A step choice is a non-empty set `S` of active frontier jobs that
//! complete — every positive layer of every job in `S` receives its full
//! remaining requirement this step — plus, **per resource**, at most one
//! further active job that receives that resource's leftover without
//! completing the layer (its remaining on the layer strictly exceeds the
//! leftover).  The same processor may act as receiver on several resources.
//! Frontier jobs with an all-zero remaining vector complete in every choice
//! (the variants that withhold them are strictly dominated, exactly as in
//! the scalar enumerator), and when every active job fits on every layer
//! simultaneously the unique emitted choice completes them all.
//!
//! For `k = 1` this class is precisely the Lemma 1 class of the scalar
//! search (non-wasting, progressive, one partial receiver).  For `k ≥ 2`
//! Lemma 1's exchange argument does not carry over verbatim — a prior
//! counterexample shows a single *overall* receiver is not WLOG, which is
//! why receivers are per-resource here — so the search is documented as
//! **exact within this normalized class** (and conjectured optimal); the
//! scaled and rational engines run the identical enumeration, making their
//! cross-check a genuine test of the per-layer grids rather than of the
//! class.
//!
//! # Search structure
//!
//! Round-by-round BFS with exact-duplicate removal and the quadratic
//! per-processor domination filter of Lemma 4: configuration `a` dominates
//! `b` when every processor has completed more jobs, or equally many with
//! at least as much spent on **every** layer of the frontier job.  Every
//! emitted choice completes at least one job (singletons always fit:
//! remaining ≤ requirement ≤ capacity on every layer), so the search
//! terminates within `total_jobs + 1` rounds.  The search is value-only —
//! multi-resource schedules are not reconstructed; the solver layer
//! reports makespans and rejects `want_schedule` with a structured error.
//!
//! The enumeration is a plain subset DFS with an all-layer overflow-checked
//! fit test.  The scalar enumerator's sorted-ascending break-prune does
//! *not* generalize: requirement vectors have no total order, so a
//! candidate that fails the fit test cannot end its level — the DFS skips
//! it and keeps descending.

use crate::subset_enum::CHOICE_CHECK_STRIDE;
use cr_core::{CancelGate, CancelReason, CancelToken, Instance, JobId, Ratio, ScaledInstance};
use std::collections::HashSet;
use std::hash::Hash;

/// The arithmetic of one search: `u64` units on per-resource LCM grids or
/// exact [`Ratio`]s with per-resource capacity `1`.
pub(crate) trait SearchUnit: cr_core::StepUnit + Hash {}
impl SearchUnit for u64 {}
impl SearchUnit for Ratio {}

/// The per-resource requirement table of one search: capacities plus every
/// job's requirement vector, in the representation `V`.
#[derive(Debug, Clone)]
pub(crate) struct MultiView<V> {
    /// Per-resource capacities, length `k`.
    caps: Vec<V>,
    /// Row start offsets into `reqs` (in jobs, not values); length `m + 1`.
    offsets: Vec<usize>,
    /// Per-job requirement vectors, `total_jobs × k`, job-major.
    reqs: Vec<V>,
}

impl MultiView<u64> {
    /// The scaled-integer view: layer `r` lives on the grid of
    /// [`ScaledInstance::layer_capacity`]`(r)`.
    pub(crate) fn from_scaled(scaled: &ScaledInstance) -> Self {
        let m = scaled.processors();
        let k = scaled.resources();
        let caps: Vec<u64> = (0..k).map(|r| scaled.layer_capacity(r)).collect();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut reqs = Vec::with_capacity(scaled.total_jobs() * k);
        offsets.push(0);
        // lint: allow(cancel_coverage) — bounded: one setup pass over the instance's jobs
        for i in 0..m {
            // lint: allow(cancel_coverage) — bounded: the processor's jobs
            for j in 0..scaled.jobs_on(i) {
                // lint: allow(cancel_coverage) — bounded: k resource layers
                for r in 0..k {
                    reqs.push(scaled.layer_unit_req(r, i, j));
                }
            }
            offsets.push(offsets[i] + scaled.jobs_on(i));
        }
        MultiView {
            caps,
            offsets,
            reqs,
        }
    }
}

impl MultiView<Ratio> {
    /// The exact rational view: every resource has capacity `1`.
    pub(crate) fn rational(instance: &Instance) -> Self {
        let m = instance.processors();
        let k = instance.resources();
        let caps = vec![Ratio::ONE; k];
        let mut offsets = Vec::with_capacity(m + 1);
        let mut reqs = Vec::with_capacity(instance.total_jobs() * k);
        offsets.push(0);
        // lint: allow(cancel_coverage) — bounded: one setup pass over the instance's jobs
        for i in 0..m {
            // lint: allow(cancel_coverage) — bounded: the processor's jobs
            for j in 0..instance.jobs_on(i) {
                // lint: allow(cancel_coverage) — bounded: k resource layers
                for r in 0..k {
                    reqs.push(instance.requirement_on(r, JobId::new(i, j)));
                }
            }
            offsets.push(offsets[i] + instance.jobs_on(i));
        }
        MultiView {
            caps,
            offsets,
            reqs,
        }
    }
}

impl<V: SearchUnit> MultiView<V> {
    fn processors(&self) -> usize {
        self.offsets.len() - 1
    }

    fn resources(&self) -> usize {
        self.caps.len()
    }

    fn jobs_on(&self, processor: usize) -> usize {
        self.offsets[processor + 1] - self.offsets[processor]
    }

    fn total_jobs(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Requirement of processor `i`'s `index`-th job on resource `r`.
    fn req(&self, processor: usize, index: usize, r: usize) -> V {
        self.reqs[(self.offsets[processor] + index) * self.resources() + r]
    }
}

/// A multi-resource configuration: completed-job counts plus the per-layer
/// resource already spent on each processor's frontier job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MConfig<V> {
    /// Completed job count per processor.
    completed: Vec<u32>,
    /// Spent on the frontier job, `m × k` processor-major.
    spent: Vec<V>,
}

impl<V: SearchUnit> MConfig<V> {
    fn initial(m: usize, k: usize) -> Self {
        MConfig {
            completed: vec![0; m],
            spent: vec![V::ZERO; m * k],
        }
    }

    fn is_final(&self, view: &MultiView<V>) -> bool {
        self.completed
            .iter()
            .enumerate()
            .all(|(i, &c)| c as usize >= view.jobs_on(i))
    }

    /// Completes processor `i`'s frontier job, resetting its spent layers.
    fn complete(&mut self, processor: usize, k: usize) {
        self.completed[processor] += 1;
        self.spent[processor * k..(processor + 1) * k].fill(V::ZERO);
    }

    /// `true` if `self` is at least as far as `other` on every processor:
    /// more jobs completed, or equally many with at least as much spent on
    /// **every** layer of the frontier job (the Lemma 4 order, extended
    /// componentwise over the layers).
    fn dominates(&self, other: &MConfig<V>, k: usize) -> bool {
        self.completed.iter().enumerate().all(|(i, &ca)| {
            let cb = other.completed[i];
            ca > cb
                || (ca == cb
                    && (i * k..(i + 1) * k).all(|slot| self.spent[slot] >= other.spent[slot]))
        })
    }
}

/// Per-candidate check stride of the quadratic domination filter (mirrors
/// the scalar search's stride).
const FILTER_CHECK_STRIDE: u32 = 64;

/// The result of one multi-resource search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MultiSearch {
    /// The optimal makespan within the normalized step class.
    pub makespan: usize,
    /// Configurations expanded over the whole search.
    pub expanded: usize,
}

/// Streams every normalized successor of `config` into `emit`.
///
/// See the module docs for the choice class.  `emit` receives each
/// successor configuration; exact duplicates may be emitted (the BFS
/// deduplicates).
fn successors<V: SearchUnit>(
    view: &MultiView<V>,
    config: &MConfig<V>,
    gate: &mut CancelGate,
    emit: &mut impl FnMut(MConfig<V>),
) -> Result<(), CancelReason> {
    let m = view.processors();
    let k = view.resources();
    let mut active: Vec<usize> = Vec::new();
    let mut rem: Vec<V> = Vec::new();
    // lint: allow(cancel_coverage) — bounded: one pass over the m processors
    for i in 0..m {
        let done = config.completed[i] as usize;
        if done < view.jobs_on(i) {
            active.push(i);
            // lint: allow(cancel_coverage) — bounded: k resource layers
            for r in 0..k {
                rem.push(view.req(i, done, r).sub(config.spent[i * k + r]));
            }
        }
    }
    if active.is_empty() {
        return Ok(());
    }
    let a = active.len();
    let all_zero = |e: usize| (0..k).all(|r| rem[e * k + r] == V::ZERO);
    let zeros: Vec<usize> = (0..a).filter(|&e| all_zero(e)).collect();
    let positives: Vec<usize> = (0..a).filter(|&e| !all_zero(e)).collect();

    // All-fit fast path: when every layer can absorb every active job's
    // remaining at once, completing everything dominates every other
    // choice (strictly more jobs completed on each touched processor).
    let fits_all = (0..k).all(|r| {
        positives
            .iter()
            .try_fold(V::ZERO, |t, &e| t.checked_add(rem[e * k + r]))
            .is_some_and(|t| t <= view.caps[r])
    });
    if fits_all {
        let mut next = config.clone();
        // lint: allow(cancel_coverage) — bounded: completes the <= m active processors
        for &e in &active {
            next.complete(e, k);
        }
        emit(next);
        return Ok(());
    }

    // Plain subset DFS over the positive entries (no sorted break-prune:
    // requirement vectors have no total order, so a failing candidate
    // cannot end its level).  Zeros-only choices are never emitted: with
    // positive capacities they waste a whole layer that a positive
    // singleton (which always fits) could absorb, so they fall outside the
    // normalized class.
    let mut dfs = Dfs {
        view,
        config,
        active: &active,
        rem: &rem,
        zeros: &zeros,
        positives: &positives,
        chosen: Vec::new(),
        in_set: vec![false; a],
        sums: vec![V::ZERO; k],
    };
    // lint: allow(cancel_coverage) — bounded: marks the <= m zero entries before the gated DFS below
    for &z in &zeros {
        dfs.in_set[z] = true;
    }
    dfs.descend(0, gate, emit)
}

/// The DFS state of one successor enumeration.
struct Dfs<'a, V> {
    view: &'a MultiView<V>,
    config: &'a MConfig<V>,
    active: &'a [usize],
    /// Remaining requirement per active entry per layer, `a × k`.
    rem: &'a [V],
    zeros: &'a [usize],
    positives: &'a [usize],
    /// Chosen positive entries (DFS stack).
    chosen: Vec<usize>,
    /// Membership of the current finished set (zeros plus chosen).
    in_set: Vec<bool>,
    /// Per-layer sums of the chosen entries' remainings.
    sums: Vec<V>,
}

impl<V: SearchUnit> Dfs<'_, V> {
    fn descend(
        &mut self,
        start: usize,
        gate: &mut CancelGate,
        emit: &mut impl FnMut(MConfig<V>),
    ) -> Result<(), CancelReason> {
        let k = self.view.resources();
        for pos in start..self.positives.len() {
            gate.tick()?;
            let e = self.positives[pos];
            // All-layer overflow-checked fit test; an overflowing sum is a
            // fortiori larger than the capacity.
            let mut fits = true;
            let mut new_sums = self.sums.clone();
            // lint: allow(cancel_coverage) — bounded: k resource layers per gated DFS extension
            for (r, slot) in new_sums.iter_mut().enumerate() {
                match self.sums[r].checked_add(self.rem[e * k + r]) {
                    Some(s) if s <= self.view.caps[r] => *slot = s,
                    _ => {
                        fits = false;
                        break;
                    }
                }
            }
            if !fits {
                continue;
            }
            let old_sums = std::mem::replace(&mut self.sums, new_sums);
            self.chosen.push(e);
            self.in_set[e] = true;

            self.emit_with_receivers(gate, emit)?;
            self.descend(pos + 1, gate, emit)?;

            self.in_set[e] = false;
            self.chosen.pop();
            self.sums = old_sums;
        }
        Ok(())
    }

    /// Emits the current finished set with every per-resource receiver
    /// combination (including "no receiver" on each resource).
    fn emit_with_receivers(
        &mut self,
        gate: &mut CancelGate,
        emit: &mut impl FnMut(MConfig<V>),
    ) -> Result<(), CancelReason> {
        let k = self.view.resources();
        let a = self.active.len();
        let leftovers: Vec<V> = (0..k)
            .map(|r| self.view.caps[r].sub(self.sums[r]))
            .collect();
        // Per resource: `None` (waste the leftover) plus every active entry
        // outside the finished set whose remaining on the layer strictly
        // exceeds the leftover (so the layer does not complete and the
        // receiver never finishes its job mid-choice).
        let candidates: Vec<Vec<Option<usize>>> = (0..k)
            .map(|r| {
                let mut c: Vec<Option<usize>> = vec![None];
                if leftovers[r] > V::ZERO {
                    // lint: allow(cancel_coverage) — bounded: one pass over the <= m active entries per gated emission
                    for e in 0..a {
                        if !self.in_set[e] && self.rem[e * k + r] > leftovers[r] {
                            c.push(Some(e));
                        }
                    }
                }
                c
            })
            .collect();

        // Odometer over the product of the per-resource candidate lists.
        let mut pick = vec![0usize; k];
        loop {
            gate.tick()?;
            let mut next = self.config.clone();
            // lint: allow(cancel_coverage) — bounded: completes the <= m finished entries per gated emission
            for &e in self.zeros.iter().chain(self.chosen.iter()) {
                next.complete(self.active[e], k);
            }
            // lint: allow(cancel_coverage) — bounded: k resource layers per gated emission
            for r in 0..k {
                if let Some(e) = candidates[r][pick[r]] {
                    let i = self.active[e];
                    let done = self.config.completed[i] as usize;
                    // New spent = requirement − (remaining − leftover);
                    // remaining > leftover keeps both subtractions in
                    // contract.
                    next.spent[i * k + r] = self
                        .view
                        .req(i, done, r)
                        .sub(self.rem[e * k + r].sub(leftovers[r]));
                }
            }
            emit(next);

            // Advance the odometer.
            let mut carry = 0usize;
            // lint: allow(cancel_coverage) — bounded: k odometer digits per gated emission
            while carry < k {
                pick[carry] += 1;
                if pick[carry] < candidates[carry].len() {
                    break;
                }
                pick[carry] = 0;
                carry += 1;
            }
            if carry == k {
                return Ok(());
            }
        }
    }
}

/// Runs the multi-resource configuration search to the first round holding
/// a final configuration.
///
/// `Ok(None)` when `round_cap` cut the search off before any final
/// configuration appeared; `Err` when the token fired mid-search.
pub(crate) fn search_cancellable<V: SearchUnit>(
    view: &MultiView<V>,
    round_cap: Option<usize>,
    token: &CancelToken,
) -> Result<Option<MultiSearch>, CancelReason> {
    let m = view.processors();
    let k = view.resources();
    let initial = MConfig::initial(m, k);
    if initial.is_final(view) {
        return Ok(Some(MultiSearch {
            makespan: 0,
            expanded: 0,
        }));
    }
    let mut gate = token.gate(CHOICE_CHECK_STRIDE);
    let mut filter_gate = token.gate(FILTER_CHECK_STRIDE);
    let max_rounds = view.total_jobs() + 1;
    let round_limit = round_cap.map_or(max_rounds, |cap| cap.min(max_rounds));
    let mut frontier = vec![initial];
    let mut expanded = 0usize;
    for round in 1..=round_limit {
        token.check()?;
        let mut seen: HashSet<MConfig<V>> = HashSet::new();
        let mut next: Vec<MConfig<V>> = Vec::new();
        for node in &frontier {
            expanded += 1;
            successors(view, node, &mut gate, &mut |cfg| {
                if seen.insert(cfg.clone()) {
                    next.push(cfg);
                }
            })?;
        }

        // The Lemma 4 domination filter, extended componentwise over the
        // layers (see `MConfig::dominates`).
        let mut keep = vec![true; next.len()];
        for b in 0..next.len() {
            filter_gate.tick()?;
            if !keep[b] {
                continue;
            }
            // lint: allow(cancel_coverage) — bounded: pairwise domination scan over one round; the outer loop polls the filter gate
            for c in 0..next.len() {
                if b == c || !keep[c] {
                    continue;
                }
                if next[b].dominates(&next[c], k) {
                    keep[c] = false;
                }
            }
        }
        let filtered: Vec<MConfig<V>> = next
            .into_iter()
            .zip(keep)
            .filter_map(|(cfg, kept)| kept.then_some(cfg))
            .collect();

        if filtered.iter().any(|cfg| cfg.is_final(view)) {
            return Ok(Some(MultiSearch {
                makespan: round,
                expanded,
            }));
        }
        frontier = filtered;
    }
    debug_assert!(
        round_cap.is_some(),
        "every choice completes a job, so the uncapped search must terminate"
    );
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::{ratio, InstanceBuilder};

    fn never() -> CancelToken {
        CancelToken::never()
    }

    fn scaled_makespan(inst: &Instance) -> usize {
        let scaled = ScaledInstance::try_new(inst).expect("grid fits");
        let view = MultiView::from_scaled(&scaled);
        search_cancellable(&view, None, &never())
            .expect("never token")
            .expect("uncapped")
            .makespan
    }

    fn rational_makespan(inst: &Instance) -> usize {
        let view = MultiView::rational(inst);
        search_cancellable(&view, None, &never())
            .expect("never token")
            .expect("uncapped")
            .makespan
    }

    #[test]
    fn zero_extra_layer_matches_the_scalar_search() {
        let base = Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]);
        let with_layer = InstanceBuilder::new()
            .processor([ratio(6, 10), ratio(4, 10), ratio(8, 10)])
            .processor([ratio(3, 10), ratio(9, 10), ratio(1, 10)])
            .extra_layer([vec![Ratio::ZERO; 3], vec![Ratio::ZERO; 3]])
            .build();
        assert_eq!(with_layer.resources(), 2);
        let scalar = crate::opt_m_makespan(&base);
        assert_eq!(scaled_makespan(&with_layer), scalar);
        assert_eq!(rational_makespan(&with_layer), scalar);
    }

    #[test]
    fn binding_second_resource_raises_the_makespan() {
        // Cheap on the base resource, oversubscribed on the extra one:
        // workload bound on layer 1 is 1.5 → at least 2 steps.
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 10)])
            .processor([ratio(1, 10)])
            .extra_layer([vec![ratio(3, 4)], vec![ratio(3, 4)]])
            .build();
        assert_eq!(scaled_makespan(&inst), 2);
        assert_eq!(rational_makespan(&inst), 2);
    }

    #[test]
    fn per_resource_receivers_split_across_processors() {
        // Job 0 saturates resource 0, job 1 saturates resource 1; the
        // third processor's job needs both.  Finishing jobs 0 and 1 first
        // leaves the pair of leftovers to processor 2 on different layers.
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([ratio(1, 100)])
            .processor([ratio(3, 5)])
            .extra_layer([vec![ratio(1, 100)], vec![Ratio::ONE], vec![ratio(3, 5)]])
            .build();
        let value = scaled_makespan(&inst);
        assert_eq!(value, rational_makespan(&inst));
        // Workload: layer 0 and 1 both sum to 1.61 → lower bound 2.
        assert_eq!(value, 2);
    }

    #[test]
    fn round_cap_cuts_the_search_off() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .extra_layer([vec![Ratio::ONE], vec![Ratio::ONE]])
            .build();
        let view = MultiView::rational(&inst);
        assert_eq!(search_cancellable(&view, Some(1), &never()).unwrap(), None);
        let full = search_cancellable(&view, Some(2), &never())
            .unwrap()
            .expect("two rounds suffice");
        assert_eq!(full.makespan, 2);
    }

    #[test]
    fn cancelled_search_stops_early() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2)])
            .processor([ratio(1, 2), ratio(1, 2)])
            .extra_layer([vec![ratio(1, 3); 2], vec![ratio(2, 3); 2]])
            .build();
        let token = CancelToken::new();
        token.cancel();
        let view = MultiView::rational(&inst);
        assert_eq!(
            search_cancellable(&view, None, &token),
            Err(CancelReason::Cancelled)
        );
    }

    #[test]
    fn empty_instance_finishes_in_zero_rounds() {
        let inst = InstanceBuilder::new()
            .empty_processor()
            .empty_processor()
            .build();
        let view = MultiView::rational(&inst);
        let out = search_cancellable(&view, None, &never()).unwrap().unwrap();
        assert_eq!(out.makespan, 0);
        assert_eq!(out.expanded, 0);
    }
}
