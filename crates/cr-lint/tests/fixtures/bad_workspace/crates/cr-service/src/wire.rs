//! Fixture wire vocabulary (in sync on its own — the drift lives in the
//! solver array and the document).

/// Kinds the fixture transport emits on its own authority.
pub const WIRE_ERROR_KINDS: [&str; 1] = ["bad_request"];
