//! Minimal, workspace-local stand-in for the `rayon` crate.
//!
//! Implements the data-parallel subset the experiment pipeline uses —
//! `par_iter()` / `into_par_iter()` followed by `map(...).collect()` — on
//! top of `std::thread::scope`.  Items are split into one contiguous chunk
//! per worker thread; output order always matches input order, so parallel
//! runs are byte-identical to serial ones.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

thread_local! {
    /// Whether the current thread is itself a worker of an enclosing
    /// parallel operation.  Real rayon serves nested parallelism from one
    /// shared pool; this shim spawns fresh scoped threads instead, so
    /// nested `par_iter`s on an N-core machine would oversubscribe up to
    /// N² CPU-bound threads (e.g. the experiment pipeline fanning out
    /// cells whose exact solver fans out its own search rounds).  Workers
    /// therefore report a parallelism of 1, which collapses any nested
    /// operation onto the already-parallel outer level.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// The machine's available parallelism, probed once.  `available_parallelism`
/// inspects cgroup quotas on Linux (file reads), which is far too expensive
/// for callers that consult the worker count per work item — e.g. the
/// per-round fan-out of the exact-solver search.
fn default_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of worker threads used for parallel operations.
///
/// `RAYON_NUM_THREADS` is re-read on every call (the thread-scaling
/// benchmark pins it per measurement); only the hardware probe is cached.
/// Inside a worker of an enclosing parallel operation this reports 1, so
/// nested parallelism runs serially instead of oversubscribing the machine
/// (see `IN_WORKER`).
#[must_use]
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default_parallelism)
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion of `&self` into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The item type (a reference).
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Creates a parallel iterator over references to `self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

/// A parallel iterator: fan work out across threads, keep input order.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Drains the iterator into an ordered `Vec` (terminal operation; the
    /// one place where threads are actually spawned).
    fn drain_ordered(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> ParMap<Self, F> {
        ParMap { inner: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drain_ordered().into_iter().collect()
    }

    /// Number of elements (terminal operation).
    fn count(self) -> usize {
        self.drain_ordered().len()
    }
}

/// Owning parallel iterator over a `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drain_ordered(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct SliceParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn drain_ordered(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

/// Parallel `map` adapter: the stage where threads fan out.
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<I, U, F> ParallelIterator for ParMap<I, F>
where
    I: ParallelIterator,
    U: Send,
    F: Fn(I::Item) -> U + Sync,
{
    type Item = U;

    fn drain_ordered(self) -> Vec<U> {
        let items = self.inner.drain_ordered();
        let f = &self.f;
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_len = n.div_ceil(workers);
        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // Give each worker one contiguous chunk of inputs and the matching
        // chunk of output slots; order is preserved by construction.
        let mut input_chunks: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk_len));
            input_chunks.push(items);
            items = rest;
        }
        thread::scope(|scope| {
            let mut out_slots: &mut [Option<U>] = &mut out;
            for chunk in input_chunks {
                let (slots, rest) = out_slots.split_at_mut(chunk.len());
                out_slots = rest;
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    for (slot, item) in slots.iter_mut().zip(chunk) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("worker filled every slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = input.iter().map(|&x| x * x).collect();
        let parallel: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn into_par_iter_consumes_and_preserves_order() {
        let input: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let expected = input.clone();
        let output: Vec<String> = input.into_par_iter().map(|s| s).collect();
        assert_eq!(output, expected);
    }

    #[test]
    fn nested_parallelism_is_serialized() {
        // Pin two workers so the outer map actually spawns threads even on
        // a single-core machine; the workers must report parallelism 1 so
        // nested par_iters run serially instead of oversubscribing.
        std::env::set_var("RAYON_NUM_THREADS", "2");
        let inner: Vec<usize> = vec![(), (), (), ()]
            .par_iter()
            .map(|()| crate::current_num_threads())
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(inner.iter().all(|&n| n == 1), "{inner:?}");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
