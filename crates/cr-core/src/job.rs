//! Jobs and job identifiers.
//!
//! In the CRSharing model every processor `i` carries a fixed *sequence* of
//! jobs `(i, 1), (i, 2), …, (i, nᵢ)` that must be processed in order.  A job
//! is described by its resource requirement `r_ij ∈ [0, 1]` and its
//! processing volume (size) `p_ij > 0`.  The paper's analysis focuses on
//! *unit-size* jobs (`p_ij = 1`); the general representation is kept so that
//! the §9 extensions can be expressed as well.

use crate::rational::Ratio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies job `(i, j)`: the `j`-th job on processor `i`.
///
/// Both indices are **zero-based** in code (the paper uses one-based
/// indices); `Display` renders the zero-based form used everywhere in this
/// repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId {
    /// Processor index `i` (zero-based).
    pub processor: usize,
    /// Position `j` within the processor's sequence (zero-based).
    pub index: usize,
}

impl JobId {
    /// Creates a new job identifier.
    #[must_use]
    pub fn new(processor: usize, index: usize) -> Self {
        JobId { processor, index }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.processor, self.index)
    }
}

/// A single job: resource requirement `r` and processing volume `p`.
///
/// The *workload* of a job in the paper's alternative ("variable speed")
/// interpretation is `p̃ = r · p`: the total amount of resource that must be
/// spent on the job before it completes (Equation (2) of the paper).  For
/// unit-size jobs this equals the requirement itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Resource requirement `r_ij ∈ [0, 1]`: the share of the resource needed
    /// to process one unit of volume per time step at full speed.
    pub requirement: Ratio,
    /// Processing volume `p_ij > 0` (in time steps at full speed).
    pub volume: Ratio,
}

impl Job {
    /// Creates a job with an explicit volume.
    #[must_use]
    pub fn new(requirement: Ratio, volume: Ratio) -> Self {
        Job {
            requirement,
            volume,
        }
    }

    /// Creates a unit-size job (`p = 1`), the case analyzed throughout the
    /// paper.
    #[must_use]
    pub fn unit(requirement: Ratio) -> Self {
        Job {
            requirement,
            volume: Ratio::ONE,
        }
    }

    /// Creates a unit-size job from an integer percentage, matching the node
    /// labels of the paper's figures.
    #[must_use]
    pub fn unit_percent(p: i64) -> Self {
        Job::unit(Ratio::from_percent(p))
    }

    /// The job's total workload `p̃ = r · p` in the alternative model
    /// interpretation: the amount of resource that must be spent on it.
    #[must_use]
    pub fn workload(&self) -> Ratio {
        self.requirement * self.volume
    }

    /// Whether the job has unit size.
    #[must_use]
    pub fn is_unit(&self) -> bool {
        self.volume == Ratio::ONE
    }

    /// Maximum useful resource share in a single time step: a job cannot be
    /// sped up beyond its requirement, so any share above `min(r, remaining
    /// workload)` is wasted.
    #[must_use]
    pub fn per_step_cap(&self) -> Ratio {
        self.requirement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::ratio;

    #[test]
    fn job_id_display_and_order() {
        let a = JobId::new(0, 1);
        let b = JobId::new(1, 0);
        assert_eq!(a.to_string(), "(0, 1)");
        assert!(a < b);
    }

    #[test]
    fn unit_job_workload_equals_requirement() {
        let j = Job::unit(ratio(3, 10));
        assert!(j.is_unit());
        assert_eq!(j.workload(), ratio(3, 10));
        assert_eq!(j.per_step_cap(), ratio(3, 10));
    }

    #[test]
    fn general_job_workload() {
        let j = Job::new(ratio(1, 2), ratio(3, 1));
        assert!(!j.is_unit());
        assert_eq!(j.workload(), ratio(3, 2));
    }

    #[test]
    fn percent_constructor() {
        assert_eq!(Job::unit_percent(55).requirement, ratio(11, 20));
        assert_eq!(Job::unit_percent(55).volume, Ratio::ONE);
    }

    #[test]
    fn serde_roundtrip() {
        let j = Job::new(ratio(1, 3), ratio(2, 1));
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(back, j);
    }
}
