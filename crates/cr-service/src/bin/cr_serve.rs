//! `cr-serve` — the JSONL stdin/stdout face of the batch solver service.
//!
//! Reads request objects line by line from stdin (see `cr_service::wire` for
//! the schema).  A **blank line** flushes the accumulated batch through the
//! warm [`SolverService`] — responses come back one line each, in input
//! order, followed by a stdout flush — so a driver process can stream
//! multiple batches through one process and keep the per-instance
//! conversion cache warm across them.  EOF flushes the final batch and
//! exits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cr-service --bin cr-serve < requests.jsonl
//! ```

use cr_service::{wire, SolverService};
use std::io::{self, BufRead, Write};

fn flush_batch(
    service: &SolverService,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    out: &mut impl Write,
) {
    if batch.is_empty() {
        return;
    }
    let responses = wire::process_batch(service, batch, *next_id);
    *next_id += batch.len() as u64;
    batch.clear();
    for line in responses {
        writeln!(out, "{line}").expect("write response line");
    }
    out.flush().expect("flush responses");
}

fn main() {
    let service = SolverService::with_standard_registry();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut batch: Vec<String> = Vec::new();
    let mut next_id: u64 = 0;
    for line in stdin.lock().lines() {
        let line = line.expect("read request line");
        if line.trim().is_empty() {
            flush_batch(&service, &mut batch, &mut next_id, &mut out);
        } else {
            batch.push(line);
        }
    }
    flush_batch(&service, &mut batch, &mut next_id, &mut out);
}
