//! The rayon-parallel experiment pipeline.
//!
//! Every table-producing experiment in this repository is phrased as a
//! *grid*: an (algorithm × instance-family × size) cross product whose cells
//! are mutually independent.  The [`Runner`] fans a grid out with
//! `par_iter`, measures each cell, and returns the rows **in grid order**,
//! so parallel runs are byte-identical to serial ones.
//!
//! Determinism contract: a cell's RNG seed is derived from the runner's base
//! seed and the cell's *instance labels* (experiment, instance) — never from
//! its position or algorithm — so inserting or reordering cells does not
//! change any other cell's instance, and every algorithm measured under one
//! instance label sees the same materialized instance.  Two runs with the
//! same base seed produce the same JSON byte-for-byte.

use crate::harness::{markdown_table, ExperimentRow};
use cr_algos::solver::SolveRequest;
use cr_core::Instance;
use cr_instances::{
    figure1_instance, figure2_instance, greedy_balance_worst_case, partition_to_crsharing,
    random_sized_instance, random_unit_instance, round_robin_worst_case, RandomConfig,
    RequirementProfile,
};
use cr_service::SolverService;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide warm solver service every measurement goes through:
/// the experiment tables and the serving path (`cr-serve`) exercise the
/// same code, and repeated measurements of one instance share its warm
/// conversions.
pub fn shared_service() -> &'static SolverService {
    static SERVICE: OnceLock<SolverService> = OnceLock::new();
    SERVICE.get_or_init(SolverService::with_standard_registry)
}

/// Dispatches a makespan-only request for `method` through the shared
/// service, panicking on structured errors (the pipeline only pairs methods
/// with instance families they accept).
fn service_makespan(method: &str, instance: &Instance) -> usize {
    let outcome = shared_service()
        .solve(&SolveRequest::new(method, instance.clone()))
        .unwrap_or_else(|e| panic!("pipeline solve failed for {method}: {e}"));
    outcome
        .makespan
        .unwrap_or_else(|| panic!("method {method} reports no makespan"))
}

/// Memoization key for reference evaluation inside [`Runner::run`].
type RefKey<'a> = (&'a str, &'a str, Reference);

/// Whether a cell's measured algorithm computes the same optimal makespan
/// its reference already produced (the exact solvers are deterministic, so
/// the value can be reused instead of re-running the search).
fn algorithm_matches_reference(algorithm: Algorithm, reference: Reference) -> bool {
    matches!(
        (algorithm, reference),
        (Algorithm::BruteForce, Reference::BruteForce)
            | (Algorithm::OptTwo, Reference::OptTwo)
            | (Algorithm::OptM, Reference::OptM)
    )
}

/// The algorithms a grid cell can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's balance-aware greedy (Theorem 7).
    GreedyBalance,
    /// The paper's RoundRobin (Theorem 3).
    RoundRobin,
    /// Baseline: equal shares for all active processors.
    EqualShare,
    /// Baseline: demand-proportional shares.
    ProportionalShare,
    /// Baseline: prioritize the largest remaining requirement.
    LargestRequirementFirst,
    /// Baseline: prioritize the smallest remaining requirement.
    SmallestRequirementFirst,
    /// The exact O(n²) dynamic program for two processors (Theorem 5).
    OptTwo,
    /// The exact configuration search for fixed m (Theorem 6).
    OptM,
    /// Exhaustive search (reference only; exponential).
    BruteForce,
}

impl Algorithm {
    /// Stable display name used in tables and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::GreedyBalance => "GreedyBalance",
            Algorithm::RoundRobin => "RoundRobin",
            Algorithm::EqualShare => "EqualShare",
            Algorithm::ProportionalShare => "ProportionalShare",
            Algorithm::LargestRequirementFirst => "LargestRequirementFirst",
            Algorithm::SmallestRequirementFirst => "SmallestRequirementFirst",
            Algorithm::OptTwo => "OptTwo",
            Algorithm::OptM => "OptM",
            Algorithm::BruteForce => "BruteForce",
        }
    }

    /// The registry key this algorithm dispatches to (one registration in
    /// `cr_algos::solver::registry` is all it takes to add a line-up entry).
    #[must_use]
    pub fn method_key(self) -> &'static str {
        match self {
            Algorithm::GreedyBalance => "GreedyBalance",
            Algorithm::RoundRobin => "RoundRobin",
            Algorithm::EqualShare => "EqualShare",
            Algorithm::ProportionalShare => "ProportionalShare",
            Algorithm::LargestRequirementFirst => "LargestRequirementFirst",
            Algorithm::SmallestRequirementFirst => "SmallestRequirementFirst",
            Algorithm::OptTwo => "OptTwo",
            Algorithm::OptM => "OptM",
            Algorithm::BruteForce => "BruteForce",
        }
    }

    /// Measures the algorithm's makespan on `instance` through the shared
    /// solver service.
    #[must_use]
    pub fn makespan(self, instance: &Instance) -> usize {
        service_makespan(self.method_key(), instance)
    }

    /// The polynomial-time line-up swept by the random grids.
    #[must_use]
    pub fn poly_line_up() -> &'static [Algorithm] {
        &[
            Algorithm::GreedyBalance,
            Algorithm::RoundRobin,
            Algorithm::EqualShare,
            Algorithm::ProportionalShare,
            Algorithm::LargestRequirementFirst,
            Algorithm::SmallestRequirementFirst,
        ]
    }
}

/// The instance families a grid cell can draw from.
///
/// Deterministic families ignore the cell seed; random families consume it.
#[derive(Debug, Clone, PartialEq)]
pub enum Family {
    /// The paper's Figure 1 running example.
    Figure1,
    /// The paper's Figure 2 four-50%-jobs example.
    Figure2,
    /// The Figure 3 / Theorem 3 adversarial family for RoundRobin.
    RoundRobinWorstCase {
        /// Chain length parameter `n`.
        n: usize,
    },
    /// The Figure 5 / Theorem 8 block construction for GreedyBalance.
    GreedyWorstCase {
        /// Number of processors.
        m: usize,
        /// Grid denominator standing in for `1/ε`.
        denominator: u64,
        /// Number of blocks.
        blocks: usize,
    },
    /// The Theorem 4 Partition reduction applied to explicit values.
    Partition {
        /// The Partition multiset.
        values: Vec<u64>,
    },
    /// Random unit-size instances from `cr_instances::random_unit_instance`.
    RandomUnit {
        /// Number of processors.
        m: usize,
        /// Jobs per processor.
        n: usize,
        /// Requirement distribution.
        profile: RequirementProfile,
    },
    /// Random arbitrary-size instances (Section 9 outlook).
    RandomSized {
        /// Number of processors.
        m: usize,
        /// Jobs per processor.
        n: usize,
        /// Maximum integral volume.
        vmax: u64,
    },
}

impl Family {
    /// Materializes the family into a concrete instance.
    #[must_use]
    pub fn instantiate(&self, seed: u64) -> Instance {
        match self {
            Family::Figure1 => figure1_instance(),
            Family::Figure2 => figure2_instance(),
            Family::RoundRobinWorstCase { n } => round_robin_worst_case(*n),
            Family::GreedyWorstCase {
                m,
                denominator,
                blocks,
            } => greedy_balance_worst_case(*m, *denominator, *blocks),
            Family::Partition { values } => partition_to_crsharing(values).instance,
            Family::RandomUnit { m, n, profile } => {
                let cfg = RandomConfig {
                    profile: *profile,
                    ..RandomConfig::uniform(*m, *n)
                };
                random_unit_instance(&cfg, seed)
            }
            Family::RandomSized { m, n, vmax } => {
                random_sized_instance(&RandomConfig::uniform(*m, *n), *vmax, seed)
            }
        }
    }
}

/// The reference value a measurement is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reference {
    /// Exact optimum via exhaustive search (small instances only).
    BruteForce,
    /// Exact optimum via the two-processor DP (Theorem 5).
    OptTwo,
    /// Exact optimum via the configuration search (Theorem 6).
    OptM,
    /// An analytically known optimum.
    KnownOptimum(usize),
    /// The Observation 1 workload bound `⌈Σ workload⌉` (a lower bound).
    WorkloadBound,
    /// The trivial lower bound `max(workload, chain, volume-chain)` — the
    /// strongest instance-only bound, important for arbitrary-size jobs
    /// where long volumes dominate the workload sum.
    TrivialLowerBound,
    /// The best available lower bound (Observation 1, chain, Lemmas 5/6),
    /// computed from a GreedyBalance schedule's hypergraph.
    BestLowerBound,
}

impl Reference {
    /// Evaluates the reference on `instance` through the shared solver
    /// service, returning the value and whether it is a proven optimum.
    ///
    /// Exact references dispatch to the same registry methods the measured
    /// cells use.  The instance-only bounds read the service's warm
    /// per-instance state directly (no solver runs); only `BestLowerBound`
    /// dispatches the `"Bounds"` evaluator, which schedules GreedyBalance
    /// and analyzes its scheduling hypergraph.
    #[must_use]
    pub fn evaluate(self, instance: &Instance) -> (usize, bool) {
        match self {
            Reference::BruteForce => (service_makespan("BruteForce", instance), true),
            Reference::OptTwo => (service_makespan("OptTwo", instance), true),
            Reference::OptM => (service_makespan("OptM", instance), true),
            Reference::KnownOptimum(value) => (value, true),
            Reference::WorkloadBound => (shared_service().lower_bounds(instance).workload, false),
            Reference::TrivialLowerBound => {
                (shared_service().lower_bounds(instance).trivial, false)
            }
            Reference::BestLowerBound => {
                let outcome = shared_service()
                    .solve(&SolveRequest::new("Bounds", instance.clone()))
                    .expect("bounds evaluation is total for pipeline instances");
                let best = outcome
                    .lower_bounds
                    .best
                    .expect("Bounds fills the best bound");
                (best, false)
            }
        }
    }
}

/// One independent measurement: an instance family, an algorithm and a
/// reference, plus the labels the row is reported under.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Experiment identifier (`"fig3"`, `"E8"`, …).
    pub experiment: String,
    /// Instance label within the experiment (`"fig3 n=100"`).
    pub instance: String,
    /// Algorithm under measurement.
    pub algorithm: Algorithm,
    /// Instance family to draw from.
    pub family: Family,
    /// Reference value for the ratio column.
    pub reference: Reference,
}

impl Cell {
    /// Creates a cell.
    #[must_use]
    pub fn new(
        experiment: impl Into<String>,
        instance: impl Into<String>,
        algorithm: Algorithm,
        family: Family,
        reference: Reference,
    ) -> Self {
        Cell {
            experiment: experiment.into(),
            instance: instance.into(),
            algorithm,
            family,
            reference,
        }
    }
}

/// FNV-1a over a byte string (seed-derivation helper).
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One measured cell, in the exact shape persisted to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Experiment identifier.
    pub experiment: String,
    /// Instance label.
    pub instance: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Derived per-cell seed (recorded for reproduction).
    pub seed: u64,
    /// Number of processors of the materialized instance.
    pub processors: usize,
    /// Maximum chain length of the materialized instance.
    pub max_chain: usize,
    /// Measured makespan.
    pub makespan: usize,
    /// Reference value.
    pub reference: usize,
    /// Whether the reference is a proven optimum.
    pub reference_is_optimal: bool,
}

impl CellResult {
    /// Converts the result into the harness row shape used by markdown
    /// rendering.
    #[must_use]
    pub fn to_row(&self) -> ExperimentRow {
        ExperimentRow {
            instance: self.instance.clone(),
            algorithm: self.algorithm.clone(),
            processors: self.processors,
            max_chain: self.max_chain,
            makespan: self.makespan,
            reference: self.reference,
            reference_is_optimal: self.reference_is_optimal,
        }
    }
}

/// The parallel grid runner.
#[derive(Debug, Clone)]
pub struct Runner {
    base_seed: u64,
}

impl Runner {
    /// Creates a runner with the given base seed.  All random instances of a
    /// run derive from this one value.
    #[must_use]
    pub fn new(base_seed: u64) -> Self {
        Runner { base_seed }
    }

    /// The seed a given cell will use, derived from the runner's base seed
    /// and the cell's *instance* labels — never its grid position, and never
    /// the algorithm, so every algorithm measured under one instance label
    /// sees the same materialized instance.
    #[must_use]
    pub fn cell_seed(&self, cell: &Cell) -> u64 {
        let mut h = fnv1a(cell.experiment.as_bytes(), 0xcbf2_9ce4_8422_2325);
        h = fnv1a(cell.instance.as_bytes(), h);
        h ^ self.base_seed
    }

    /// Measures one cell (the serial path; [`Runner::run`] is equivalent
    /// cell-by-cell).
    #[must_use]
    pub fn run_cell(&self, cell: &Cell) -> CellResult {
        let seed = self.cell_seed(cell);
        let instance = cell.family.instantiate(seed);
        let (reference, reference_is_optimal) = cell.reference.evaluate(&instance);
        let makespan = if algorithm_matches_reference(cell.algorithm, cell.reference) {
            reference
        } else {
            cell.algorithm.makespan(&instance)
        };
        CellResult {
            experiment: cell.experiment.clone(),
            instance: cell.instance.clone(),
            algorithm: cell.algorithm.name().to_string(),
            seed,
            processors: instance.processors(),
            max_chain: instance.max_chain_length(),
            makespan,
            reference,
            reference_is_optimal,
        }
    }

    /// Fans the grid out across all cores and returns the results in grid
    /// order.
    ///
    /// References are memoized per `(experiment, instance, reference)` key:
    /// when several algorithms measure the same instance label, the (often
    /// expensive, sometimes exponential) reference value is computed once,
    /// not once per algorithm cell.  Results are identical to calling
    /// [`Runner::run_cell`] on every cell — reference evaluation is a
    /// deterministic function of the materialized instance.
    #[must_use]
    pub fn run(&self, cells: &[Cell]) -> Vec<CellResult> {
        self.run_with_timings(cells).0
    }

    /// Like [`Runner::run`], but additionally reports the wall time of the
    /// slowest single unit of work in the grid — one memoized reference
    /// evaluation or one measured cell, whichever is worse.  The per-cell
    /// timings never influence the (deterministic) results; they exist so
    /// `BENCH_pipeline.json` can attribute a table's wall time to its
    /// critical cell.
    #[must_use]
    pub fn run_with_timings(&self, cells: &[Cell]) -> (Vec<CellResult>, f64) {
        // Phase 1: evaluate each distinct reference once, in parallel.
        let mut ref_tasks: Vec<&Cell> = Vec::new();
        let mut ref_index: HashMap<RefKey<'_>, usize> = HashMap::new();
        for cell in cells {
            let key = (
                cell.experiment.as_str(),
                cell.instance.as_str(),
                cell.reference,
            );
            if let Entry::Vacant(slot) = ref_index.entry(key) {
                slot.insert(ref_tasks.len());
                ref_tasks.push(cell);
            }
        }
        let ref_values: Vec<((usize, bool), f64)> = ref_tasks
            .par_iter()
            .map(|cell| {
                let start = Instant::now();
                let instance = cell.family.instantiate(self.cell_seed(cell));
                let value = cell.reference.evaluate(&instance);
                (value, start.elapsed().as_secs_f64() * 1e3)
            })
            .collect();

        // Phase 2: measure every algorithm cell against the cached values.
        let timed: Vec<(CellResult, f64)> = cells
            .par_iter()
            .map(|cell| {
                let start = Instant::now();
                let seed = self.cell_seed(cell);
                let instance = cell.family.instantiate(seed);
                let key = (
                    cell.experiment.as_str(),
                    cell.instance.as_str(),
                    cell.reference,
                );
                let ((reference, reference_is_optimal), _) = ref_values[ref_index[&key]];
                // When the measured algorithm is the exact solver the
                // reference already ran, reuse its optimum instead of
                // repeating the (possibly exponential) search.
                let makespan = if algorithm_matches_reference(cell.algorithm, cell.reference) {
                    reference
                } else {
                    cell.algorithm.makespan(&instance)
                };
                let result = CellResult {
                    experiment: cell.experiment.clone(),
                    instance: cell.instance.clone(),
                    algorithm: cell.algorithm.name().to_string(),
                    seed,
                    processors: instance.processors(),
                    max_chain: instance.max_chain_length(),
                    makespan,
                    reference,
                    reference_is_optimal,
                };
                (result, start.elapsed().as_secs_f64() * 1e3)
            })
            .collect();

        let max_cell_ms = ref_values
            .iter()
            .map(|&(_, ms)| ms)
            .chain(timed.iter().map(|&(_, ms)| ms))
            .fold(0.0f64, f64::max);
        (
            timed.into_iter().map(|(result, _)| result).collect(),
            max_cell_ms,
        )
    }

    /// Runs a grid and renders it as one named experiment table.
    #[must_use]
    pub fn run_table(&self, title: impl Into<String>, cells: &[Cell]) -> ExperimentTable {
        self.run_table_timed(title, cells).0
    }

    /// Like [`Runner::run_table`], but also reports the slowest single unit
    /// of work (see [`Runner::run_with_timings`]).
    #[must_use]
    pub fn run_table_timed(
        &self,
        title: impl Into<String>,
        cells: &[Cell],
    ) -> (ExperimentTable, f64) {
        let (results, max_cell_ms) = self.run_with_timings(cells);
        (
            ExperimentTable {
                title: title.into(),
                results,
            },
            max_cell_ms,
        )
    }
}

impl Default for Runner {
    /// The seed used by the committed experiment tables.
    fn default() -> Self {
        Runner::new(0xC0FF_EE00)
    }
}

/// A titled group of measured cells (one markdown table / JSON array).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Table title.
    pub title: String,
    /// Measured cells, in grid order.
    pub results: Vec<CellResult>,
}

impl ExperimentTable {
    /// Renders the table as GitHub-flavoured markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let rows: Vec<ExperimentRow> = self.results.iter().map(CellResult::to_row).collect();
        markdown_table(&self.title, &rows)
    }
}

/// A full experiment report: every table of one `experiments` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Base seed the tables were generated from.
    pub base_seed: u64,
    /// All tables, in publication order.
    pub tables: Vec<ExperimentTable>,
}

impl ExperimentReport {
    /// Deterministic pretty JSON (byte-identical across runs with the same
    /// seed).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Markdown document with every table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# CRSharing experiment tables\n\n");
        out.push_str(&format!(
            "Generated by `cargo run --release -p cr-bench --bin experiments` \
             (base seed {:#x}).\n\n",
            self.base_seed
        ));
        for table in &self.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        out
    }
}

/// Checks a parallel batch of independent assertions, returning every
/// failure message (used by the verification binaries to fan their sweeps
/// out without duplicating driver code).
pub fn par_check<T, F>(items: &[T], check: F) -> Vec<String>
where
    T: Sync,
    F: Fn(&T) -> Result<(), String> + Sync,
{
    items
        .par_iter()
        .map(|item| check(item).err())
        .collect::<Vec<Option<String>>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_instances::round_robin_worst_case_opt;

    fn fig3_cells() -> Vec<Cell> {
        [5usize, 10, 25]
            .iter()
            .flat_map(|&n| {
                [Algorithm::RoundRobin, Algorithm::GreedyBalance]
                    .into_iter()
                    .map(move |algorithm| {
                        Cell::new(
                            "fig3",
                            format!("fig3 n={n}"),
                            algorithm,
                            Family::RoundRobinWorstCase { n },
                            Reference::KnownOptimum(round_robin_worst_case_opt(n)),
                        )
                    })
            })
            .collect()
    }

    #[test]
    fn parallel_run_preserves_grid_order_and_values() {
        let runner = Runner::new(7);
        let cells = fig3_cells();
        let parallel = runner.run(&cells);
        let serial: Vec<CellResult> = cells.iter().map(|c| runner.run_cell(c)).collect();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), cells.len());
        // Theorem 3 numbers: RoundRobin needs 2n, the optimum is n + 1.
        assert_eq!(parallel[0].makespan, 10);
        assert_eq!(parallel[0].reference, 6);
    }

    #[test]
    fn cell_seeds_depend_on_labels_not_position() {
        let runner = Runner::new(99);
        let mut cells = fig3_cells();
        let seed_of_last = runner.cell_seed(cells.last().unwrap());
        cells.rotate_right(1);
        assert_eq!(runner.cell_seed(&cells[0]), seed_of_last);
        // Distinct instance labels get distinct seeds; the two algorithms
        // under one instance label share the instance.
        assert_eq!(runner.cell_seed(&cells[1]), runner.cell_seed(&cells[2]));
        assert_ne!(runner.cell_seed(&cells[1]), runner.cell_seed(&cells[3]));
    }

    #[test]
    fn same_seed_means_byte_identical_json() {
        let cells = fig3_cells();
        let report = |seed: u64| {
            let runner = Runner::new(seed);
            ExperimentReport {
                base_seed: seed,
                tables: vec![runner.run_table("fig3", &cells)],
            }
            .to_json()
        };
        assert_eq!(report(42), report(42));
    }

    #[test]
    fn random_families_differ_across_base_seeds() {
        let cell = Cell::new(
            "E8",
            "uniform m=3 n=4 rep=0",
            Algorithm::GreedyBalance,
            Family::RandomUnit {
                m: 3,
                n: 4,
                profile: RequirementProfile::Uniform,
            },
            Reference::OptM,
        );
        let a = Runner::new(1).run_cell(&cell);
        let b = Runner::new(2).run_cell(&cell);
        assert_ne!(a.seed, b.seed);
        // Optimality of the reference: the measured makespan can never beat it.
        assert!(a.makespan >= a.reference);
        assert!(b.makespan >= b.reference);
    }

    #[test]
    fn par_check_collects_failures() {
        let items: Vec<u32> = (0..100).collect();
        let failures = par_check(&items, |&x| {
            if x % 2 == 0 {
                Ok(())
            } else if x == 1 {
                Err("one is odd".to_string())
            } else {
                Err(format!("{x} is odd"))
            }
        });
        assert_eq!(failures.len(), 50);
        assert_eq!(failures[0], "one is odd");
    }

    #[test]
    fn markdown_contains_every_row() {
        let runner = Runner::default();
        let table = runner.run_table("Adversarial family (Theorem 3)", &fig3_cells());
        let markdown = table.to_markdown();
        assert!(markdown.starts_with("### Adversarial family (Theorem 3)"));
        assert_eq!(markdown.matches("RoundRobin").count(), 3);
        assert_eq!(markdown.matches("GreedyBalance").count(), 3);
    }
}
