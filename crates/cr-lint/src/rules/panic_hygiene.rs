//! **panic_hygiene** — production paths of `cr-service`, `cr-algos` and
//! `cr-core` must not panic: a panic on a serving path costs a connection
//! worker (PR 7 contains it, but containment is the backstop, not the
//! contract).
//!
//! Flags, outside test code:
//!
//! * `.unwrap()` / `.expect(…)` calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations;
//! * direct slice indexing `x[i]` — **in `cr-service` only**, where an
//!   out-of-bounds index is a remote-triggerable worker panic (the numeric
//!   kernels in `cr-algos`/`cr-core` index densely by construction and are
//!   covered by the other three patterns).
//!
//! Escape hatches, in order of preference: convert to a structured error;
//! document the invariant in the function's rustdoc under a `# Panics`
//! section (the repository convention for contract-level panics — the rule
//! accepts the whole function body); or justify the single site with
//! `// lint: allow(panic_hygiene) — <proof it cannot fire>`.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::scope::Ctx;
use crate::suppress::Suppressions;

/// Rule name.
pub const RULE: &str = "panic_hygiene";

/// Identifiers that, with a following `[`, do not form an index expression.
const NON_INDEX_PRECEDERS: [&str; 8] =
    ["mut", "ref", "in", "impl", "where", "dyn", "else", "return"];

/// Runs the rule over one file. `check_indexing` is set for `cr-service`.
pub fn check(
    path: &str,
    tokens: &[Token],
    ctx: &[Ctx],
    suppressions: &Suppressions,
    check_indexing: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let significant_before = |i: usize| tokens[..i].iter().rposition(|t| !t.is_comment());
    let significant_after = |i: usize| (i + 1..tokens.len()).find(|&j| !tokens[j].is_comment());

    let mut emit = |line: u32, construct: &str, advice: &str| {
        if !suppressions.covers(RULE, line) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line,
                rule: RULE,
                message: format!(
                    "{construct} on a production path: {advice}, document the invariant \
                     under a `# Panics` doc section, or justify with \
                     `// lint: allow({RULE}) — <proof>`"
                ),
            });
        }
    };

    for (i, tok) in tokens.iter().enumerate() {
        if ctx[i].in_test || ctx[i].in_panics_doc_fn {
            continue;
        }
        match tok.kind {
            TokenKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                let dotted = significant_before(i).is_some_and(|j| tokens[j].is_punct('.'));
                let called = significant_after(i).is_some_and(|j| tokens[j].is_punct('('));
                if dotted && called {
                    emit(
                        tok.line,
                        &format!("`.{}()`", tok.text),
                        "convert to a structured `SolveError`/`Result`",
                    );
                }
            }
            TokenKind::Ident
                if matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let banged = significant_after(i).is_some_and(|j| tokens[j].is_punct('!'));
                // `panic` as a path segment (`std::panic::catch_unwind`)
                // must not count: require the macro bang.
                if banged {
                    emit(
                        tok.line,
                        &format!("`{}!`", tok.text),
                        "return a structured error instead",
                    );
                }
            }
            TokenKind::Punct('[') if check_indexing => {
                let Some(j) = significant_before(i) else {
                    continue;
                };
                let prev = &tokens[j];
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text.as_str()),
                    TokenKind::Punct(']' | ')') => true,
                    _ => false,
                };
                // `name![…]` is a macro invocation, `#[…]` an attribute.
                let macro_bang = prev.is_punct('!')
                    || (prev.kind == TokenKind::Ident
                        && significant_before(j).is_some_and(|k| tokens[k].is_punct('!')));
                if indexes && !macro_bang {
                    emit(
                        tok.line,
                        "slice index `…[…]`",
                        "use `.get(…)` and handle the miss",
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;

    fn run(src: &str, indexing: bool) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let ctx = analyze(&tokens);
        let mut diags = Vec::new();
        let sup = crate::suppress::parse("f.rs", &tokens, &mut diags);
        check("f.rs", &tokens, &ctx, &sup, indexing, &mut diags);
        diags
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let diags = run("fn f() { a.unwrap(); b.expect(\"msg\"); }", false);
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn unwrap_or_variants_pass() {
        assert!(run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); }", false).is_empty());
    }

    #[test]
    fn panic_macros_flagged_but_path_segment_is_not() {
        let diags = run("fn f() { panic!(\"boom\"); }", false);
        assert_eq!(diags.len(), 1);
        assert!(run("fn f() { let _ = std::panic::catch_unwind(g); }", false).is_empty());
    }

    #[test]
    fn panics_doc_section_exempts_the_fn() {
        let src = "/// # Panics\n/// On overflow.\nfn f() { x.unwrap(); }";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)] mod t { fn u() { a.unwrap(); } }", false).is_empty());
    }

    #[test]
    fn indexing_only_when_enabled() {
        let src = "fn f(v: &[u64]) -> u64 { v[0] }";
        assert!(run(src, false).is_empty());
        assert_eq!(run(src, true).len(), 1);
    }

    #[test]
    fn indexing_skips_types_macros_attributes() {
        let src = "#[derive(Debug)]\nfn f(v: &mut [u64]) { let a: [u8; 2] = [0, 1]; let w = vec![3]; g(&v[..]); }";
        // `&v[..]` is a real index expression; the type/macro brackets are not.
        assert_eq!(run(src, true).len(), 1);
    }

    #[test]
    fn suppression_silences_one_site() {
        let src = "fn f() { a.unwrap(); // lint: allow(panic_hygiene) — checked two lines up\n}";
        assert!(run(src, false).is_empty());
    }
}
