//! Fixture observability crate: declares the name vocabulary only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
