//! Minimal, workspace-local stand-in for the `criterion` crate.
//!
//! Implements the measurement API the workspace benches use —
//! benchmark groups, [`BenchmarkId`], `bench_function` / `bench_with_input`
//! and the [`criterion_group!`] / [`criterion_main!`] macros — on top of a
//! simple median-of-samples timer.  It produces one summary line per
//! benchmark; statistical analysis, plots and baselines of the real crate
//! are out of scope.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark: a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Entry point value handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run(&label, &mut routine);
        self
    }

    /// Runs a benchmark over one prepared input.
    // `BenchmarkId` moves by value for signature parity with the real crate.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        self.run(&label, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    fn run(&self, label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        routine(&mut bencher);
        println!(
            "bench {label:<52} median {:>12.1} ns/iter",
            bencher.median_ns
        );
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`, reporting the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is consumed, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --quick` and friends pass flags; accept and
            // ignore them so the CLI surface stays compatible.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}
