//! Resource-assignment schedules, their simulation and validation.
//!
//! A [`Schedule`] is nothing more than the matrix `Rᵢ(t)` of resource shares
//! handed to each processor at each discrete time step — exactly the object
//! the CRSharing scheduler controls.  Everything else (which job is active,
//! how much progress it makes, when it completes) follows deterministically
//! from the instance, and is computed by [`Schedule::trace`].
//!
//! Algorithms construct schedules through [`ScheduleBuilder`], a forward
//! simulator that keeps track of the per-processor frontier job and its
//! remaining work so that the algorithm can base its next decision on the
//! current state.

use crate::error::ScheduleError;
use crate::instance::Instance;
use crate::job::JobId;
use crate::rational::Ratio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A feasible-or-not resource assignment: `steps[t][i]` is the share `Rᵢ(t)`
/// of the resource granted to processor `i` in time step `t` (zero-based).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    steps: Vec<Vec<Ratio>>,
}

impl Schedule {
    /// Wraps a raw share matrix.
    #[must_use]
    pub fn new(steps: Vec<Vec<Ratio>>) -> Self {
        Schedule { steps }
    }

    /// An empty schedule (zero time steps).
    #[must_use]
    pub fn empty() -> Self {
        Schedule { steps: Vec::new() }
    }

    /// Number of time steps in the assignment.
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The share `Rᵢ(t)`.
    #[must_use]
    pub fn share(&self, step: usize, processor: usize) -> Ratio {
        self.steps[step][processor]
    }

    /// All shares of one step.
    #[must_use]
    pub fn step(&self, step: usize) -> &[Ratio] {
        &self.steps[step]
    }

    /// Raw access to the share matrix.
    #[must_use]
    pub fn steps(&self) -> &[Vec<Ratio>] {
        &self.steps
    }

    /// Mutable access to the share matrix (used by the Lemma 1 transforms).
    pub fn steps_mut(&mut self) -> &mut Vec<Vec<Ratio>> {
        &mut self.steps
    }

    /// Total share assigned in one step (may exceed the useful consumption if
    /// the schedule over-provisions a job).
    #[must_use]
    pub fn assigned_total(&self, step: usize) -> Ratio {
        Ratio::sum_slice(&self.steps[step])
    }

    /// Simulates the schedule against `instance`, checking feasibility
    /// (shares in `[0, 1]`, no resource overuse, all jobs complete) and
    /// returning the full execution trace.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] describing the first violated constraint.
    pub fn trace(&self, instance: &Instance) -> Result<ScheduleTrace, ScheduleError> {
        ScheduleTrace::compute(instance, self)
    }

    /// Convenience: validates the schedule and returns its makespan (number
    /// of time steps needed until every job is complete).
    pub fn makespan(&self, instance: &Instance) -> Result<usize, ScheduleError> {
        Ok(self.trace(instance)?.makespan())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Schedule with {} step(s):", self.num_steps())?;
        for (t, row) in self.steps.iter().enumerate() {
            write!(f, "  t{t}:")?;
            for share in row {
                write!(f, " {share}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The complete execution trace of a schedule on an instance.
///
/// Time steps are zero-based.  `unfinished[t][i]` is the paper's `nᵢ(t+1)`
/// evaluated *at the start of* step `t`; the extra final entry
/// `unfinished[T][i]` describes the state after the last step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    num_steps: usize,
    makespan: usize,
    processors: usize,
    /// `active[t][i]`: the job processor `i` works on in step `t` (its first
    /// unfinished job), or `None` if the processor is idle (out of jobs).
    active: Vec<Vec<Option<JobId>>>,
    /// Volume progress of the active job in step `t` on processor `i`.
    progress: Vec<Vec<Ratio>>,
    /// Useful resource consumption (`progress · r`) per step and processor.
    consumed: Vec<Vec<Ratio>>,
    /// The raw assigned shares (copied from the schedule).
    assigned: Vec<Vec<Ratio>>,
    /// Remaining volume of the active job at the *start* of step `t`.
    remaining_before: Vec<Vec<Ratio>>,
    /// Number of unfinished jobs per processor at the start of each step,
    /// plus one trailing entry for the state after the final step.
    unfinished: Vec<Vec<usize>>,
    /// `starts[i][j]`: first step in which job `(i, j)` makes progress.
    starts: Vec<Vec<Option<usize>>>,
    /// `completions[i][j]`: step in which job `(i, j)` completes.
    completions: Vec<Vec<Option<usize>>>,
}

impl ScheduleTrace {
    fn compute(instance: &Instance, schedule: &Schedule) -> Result<Self, ScheduleError> {
        let m = instance.processors();
        let num_steps = schedule.num_steps();

        let mut next_job = vec![0usize; m];
        let mut remaining_volume: Vec<Ratio> = (0..m)
            .map(|i| {
                if instance.jobs_on(i) > 0 {
                    instance.job(JobId::new(i, 0)).volume
                } else {
                    Ratio::ZERO
                }
            })
            .collect();

        let mut active = Vec::with_capacity(num_steps);
        let mut progress = Vec::with_capacity(num_steps);
        let mut consumed = Vec::with_capacity(num_steps);
        let mut assigned = Vec::with_capacity(num_steps);
        let mut remaining_before = Vec::with_capacity(num_steps);
        let mut unfinished = Vec::with_capacity(num_steps + 1);
        let mut starts = vec![vec![None; 0]; m];
        let mut completions = vec![vec![None; 0]; m];
        for i in 0..m {
            starts[i] = vec![None; instance.jobs_on(i)];
            completions[i] = vec![None; instance.jobs_on(i)];
        }

        let mut makespan = 0usize;

        for t in 0..num_steps {
            let row = &schedule.steps()[t];
            if row.len() != m {
                return Err(ScheduleError::WrongProcessorCount {
                    step: t,
                    expected: m,
                    found: row.len(),
                });
            }
            let mut total = Ratio::ZERO;
            for (i, &share) in row.iter().enumerate() {
                if !share.in_unit_interval() {
                    return Err(ScheduleError::ShareOutOfRange {
                        step: t,
                        processor: i,
                        share,
                    });
                }
                total += share;
            }
            if total > Ratio::ONE {
                return Err(ScheduleError::ResourceOveruse { step: t, total });
            }

            unfinished.push(
                (0..m)
                    .map(|i| instance.jobs_on(i) - next_job[i])
                    .collect::<Vec<_>>(),
            );

            let mut active_row = vec![None; m];
            let mut progress_row = vec![Ratio::ZERO; m];
            let mut consumed_row = vec![Ratio::ZERO; m];
            let mut remaining_row = vec![Ratio::ZERO; m];

            for i in 0..m {
                if next_job[i] >= instance.jobs_on(i) {
                    continue;
                }
                let id = JobId::new(i, next_job[i]);
                let job = instance.job(id);
                active_row[i] = Some(id);
                remaining_row[i] = remaining_volume[i];

                let share = row[i];
                // Volume progress: min(share / r, 1, remaining volume); a job
                // with zero requirement runs at full speed for free.
                let speed = if job.requirement.is_zero() {
                    Ratio::ONE
                } else {
                    (share / job.requirement).min(Ratio::ONE)
                };
                let step_progress = speed.min(remaining_volume[i]);
                if step_progress.is_positive() && starts[i][id.index].is_none() {
                    starts[i][id.index] = Some(t);
                }
                progress_row[i] = step_progress;
                consumed_row[i] = step_progress * job.requirement;
                remaining_volume[i] -= step_progress;

                if remaining_volume[i].is_zero() {
                    completions[i][id.index] = Some(t);
                    if starts[i][id.index].is_none() {
                        // Zero-workload job: it "runs" in its completion step.
                        starts[i][id.index] = Some(t);
                    }
                    makespan = makespan.max(t + 1);
                    next_job[i] += 1;
                    if next_job[i] < instance.jobs_on(i) {
                        remaining_volume[i] = instance.job(JobId::new(i, next_job[i])).volume;
                    }
                }
            }

            active.push(active_row);
            progress.push(progress_row);
            consumed.push(consumed_row);
            assigned.push(row.clone());
            remaining_before.push(remaining_row);
        }

        unfinished.push(
            (0..m)
                .map(|i| instance.jobs_on(i) - next_job[i])
                .collect::<Vec<_>>(),
        );

        let leftovers: Vec<JobId> = (0..m)
            .flat_map(|i| (next_job[i]..instance.jobs_on(i)).map(move |j| JobId::new(i, j)))
            .collect();
        if !leftovers.is_empty() {
            return Err(ScheduleError::UnfinishedJobs {
                unfinished: leftovers,
            });
        }

        Ok(ScheduleTrace {
            num_steps,
            makespan,
            processors: m,
            active,
            progress,
            consumed,
            assigned,
            remaining_before,
            unfinished,
            starts,
            completions,
        })
    }

    /// Number of steps in the underlying schedule (may exceed the makespan if
    /// the schedule has trailing idle steps).
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// The makespan: the number of time steps until the last job completes.
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.makespan
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The job processor `i` works on in step `t`, if any.
    #[must_use]
    pub fn active_job(&self, step: usize, processor: usize) -> Option<JobId> {
        self.active[step][processor]
    }

    /// Whether processor `i` is *active* in step `t` in the paper's sense
    /// (it still has unfinished jobs at the start of the step).
    #[must_use]
    pub fn is_active(&self, step: usize, processor: usize) -> bool {
        self.unfinished[step][processor] > 0
    }

    /// Whether the active job of processor `i` actually runs (makes strictly
    /// positive progress) in step `t`.
    #[must_use]
    pub fn is_running(&self, step: usize, processor: usize) -> bool {
        self.progress[step][processor].is_positive()
    }

    /// Volume progress of processor `i`'s active job in step `t`.
    #[must_use]
    pub fn progress(&self, step: usize, processor: usize) -> Ratio {
        self.progress[step][processor]
    }

    /// Useful resource consumption of processor `i` in step `t`.
    #[must_use]
    pub fn consumed(&self, step: usize, processor: usize) -> Ratio {
        self.consumed[step][processor]
    }

    /// Total useful resource consumption in step `t`.
    #[must_use]
    pub fn consumed_total(&self, step: usize) -> Ratio {
        Ratio::sum_slice(&self.consumed[step])
    }

    /// The raw assigned share (which may exceed the useful consumption).
    #[must_use]
    pub fn assigned(&self, step: usize, processor: usize) -> Ratio {
        self.assigned[step][processor]
    }

    /// Total assigned share in step `t`.
    #[must_use]
    pub fn assigned_total(&self, step: usize) -> Ratio {
        Ratio::sum_slice(&self.assigned[step])
    }

    /// Remaining volume of processor `i`'s active job at the start of step `t`.
    #[must_use]
    pub fn remaining_before(&self, step: usize, processor: usize) -> Ratio {
        self.remaining_before[step][processor]
    }

    /// `nᵢ(t)`: the number of unfinished jobs on processor `i` at the start
    /// of step `t`; `t` may equal `num_steps()` for the final state.
    #[must_use]
    pub fn unfinished_jobs(&self, step: usize, processor: usize) -> usize {
        self.unfinished[step][processor]
    }

    /// First step in which job `(i, j)` makes progress (the paper's `S(i,j)`).
    #[must_use]
    pub fn start_step(&self, id: JobId) -> Option<usize> {
        self.starts[id.processor][id.index]
    }

    /// Step in which job `(i, j)` completes (the paper's `C(i,j)`).
    #[must_use]
    pub fn completion_step(&self, id: JobId) -> Option<usize> {
        self.completions[id.processor][id.index]
    }

    /// Whether job `(i, j)` completes in step `t`.
    #[must_use]
    pub fn completes_in(&self, id: JobId, step: usize) -> bool {
        self.completion_step(id) == Some(step)
    }

    /// Edge `e_t` of the scheduling hypergraph: the set of jobs active in
    /// step `t` (only meaningful for steps `t < makespan()`).
    #[must_use]
    pub fn edge(&self, step: usize) -> Vec<JobId> {
        (0..self.processors)
            .filter_map(|i| {
                if self.is_active(step, i) {
                    self.active[step][i]
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Forward-simulating schedule builder used by every algorithm in
/// `cr-algos`.
///
/// The builder exposes the *alternative model interpretation* of the paper:
/// for the active job of each processor it reports the remaining workload
/// `p̃ = r · p` still to be paid for, and the maximal amount of resource the
/// job can usefully absorb in the next step.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder<'a> {
    instance: &'a Instance,
    steps: Vec<Vec<Ratio>>,
    next_job: Vec<usize>,
    remaining_volume: Vec<Ratio>,
}

impl<'a> ScheduleBuilder<'a> {
    /// Starts building a schedule for `instance`.
    #[must_use]
    pub fn new(instance: &'a Instance) -> Self {
        let m = instance.processors();
        let remaining_volume = (0..m)
            .map(|i| {
                if instance.jobs_on(i) > 0 {
                    instance.job(JobId::new(i, 0)).volume
                } else {
                    Ratio::ZERO
                }
            })
            .collect();
        ScheduleBuilder {
            instance,
            steps: Vec::new(),
            next_job: vec![0; m],
            remaining_volume,
        }
    }

    /// The instance being scheduled.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.instance.processors()
    }

    /// Number of steps emitted so far.
    #[must_use]
    pub fn current_step(&self) -> usize {
        self.steps.len()
    }

    /// The active (first unfinished) job of processor `i`.
    #[must_use]
    pub fn active_job(&self, processor: usize) -> Option<JobId> {
        if self.next_job[processor] < self.instance.jobs_on(processor) {
            Some(JobId::new(processor, self.next_job[processor]))
        } else {
            None
        }
    }

    /// Whether processor `i` still has unfinished jobs.
    #[must_use]
    pub fn is_active(&self, processor: usize) -> bool {
        self.active_job(processor).is_some()
    }

    /// Number of unfinished jobs on processor `i` (the paper's `nᵢ(t)`).
    #[must_use]
    pub fn unfinished_jobs(&self, processor: usize) -> usize {
        self.instance.jobs_on(processor) - self.next_job[processor]
    }

    /// Remaining volume of the active job of processor `i` (zero if idle).
    #[must_use]
    pub fn remaining_volume(&self, processor: usize) -> Ratio {
        if self.is_active(processor) {
            self.remaining_volume[processor]
        } else {
            Ratio::ZERO
        }
    }

    /// Remaining workload `r · (remaining volume)` of the active job — the
    /// total resource still needed to finish it.
    #[must_use]
    pub fn remaining_workload(&self, processor: usize) -> Ratio {
        match self.active_job(processor) {
            Some(id) => self.instance.job(id).requirement * self.remaining_volume[processor],
            None => Ratio::ZERO,
        }
    }

    /// Maximum resource the active job of processor `i` can usefully absorb
    /// in a single step: `r · min(remaining volume, 1)`.
    ///
    /// For unit-size jobs this equals [`Self::remaining_workload`].
    #[must_use]
    pub fn step_demand(&self, processor: usize) -> Ratio {
        match self.active_job(processor) {
            Some(id) => {
                let r = self.instance.job(id).requirement;
                r * self.remaining_volume[processor].min(Ratio::ONE)
            }
            None => Ratio::ZERO,
        }
    }

    /// Total remaining workload over all processors (drives Observation 1
    /// style progress accounting inside algorithms).
    #[must_use]
    pub fn total_remaining_workload(&self) -> Ratio {
        let mut total = Ratio::ZERO;
        for i in 0..self.processors() {
            if !self.is_active(i) {
                continue;
            }
            // Workload of the partially processed frontier job …
            total += self.remaining_workload(i);
            // … plus the untouched jobs behind it.
            for j in (self.next_job[i] + 1)..self.instance.jobs_on(i) {
                total += self.instance.job(JobId::new(i, j)).workload();
            }
        }
        total
    }

    /// Whether every job of the instance has been completed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.processors()).all(|i| !self.is_active(i))
    }

    /// Applies one time step with the given resource shares and advances the
    /// simulated state.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release builds alike) if the shares are
    /// infeasible — algorithms must never emit an infeasible step.
    pub fn push_step(&mut self, shares: Vec<Ratio>) {
        assert_eq!(
            shares.len(),
            self.processors(),
            "step must assign a share to every processor"
        );
        let total = Ratio::sum_slice(&shares);
        assert!(
            total <= Ratio::ONE,
            "step overuses the resource: total assigned share is {total}"
        );
        for (i, share) in shares.iter().enumerate() {
            assert!(
                share.in_unit_interval(),
                "share {share} for processor {i} outside [0, 1]"
            );
        }

        for (i, &share) in shares.iter().enumerate() {
            let Some(id) = self.active_job(i) else {
                continue;
            };
            let job = self.instance.job(id);
            let speed = if job.requirement.is_zero() {
                Ratio::ONE
            } else {
                (share / job.requirement).min(Ratio::ONE)
            };
            let step_progress = speed.min(self.remaining_volume[i]);
            self.remaining_volume[i] -= step_progress;
            if self.remaining_volume[i].is_zero() {
                self.next_job[i] += 1;
                if self.next_job[i] < self.instance.jobs_on(i) {
                    self.remaining_volume[i] =
                        self.instance.job(JobId::new(i, self.next_job[i])).volume;
                }
            }
        }
        self.steps.push(shares);
    }

    /// Finalizes the schedule.
    ///
    /// # Panics
    ///
    /// Panics if jobs remain unfinished — that would be an algorithm bug.
    #[must_use]
    pub fn finish(self) -> Schedule {
        assert!(
            self.all_done(),
            "ScheduleBuilder::finish called with unfinished jobs"
        );
        Schedule::new(self.steps)
    }

    /// Returns the schedule built so far without checking completion.  Used
    /// by tests that intentionally build partial schedules.
    #[must_use]
    pub fn into_partial_schedule(self) -> Schedule {
        Schedule::new(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::job::Job;
    use crate::rational::ratio;

    fn two_proc_instance() -> Instance {
        // p0: 0.5, 0.5   p1: 0.75, 0.25
        InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2)])
            .processor([ratio(3, 4), ratio(1, 4)])
            .build()
    }

    #[test]
    fn trace_simple_schedule() {
        let inst = two_proc_instance();
        // Step 0: finish (0,0) [0.5] and half of (1,0) [0.375 of 0.75].
        // Step 1: finish (1,0) [remaining 0.375] and finish (0,1) [0.5].
        // Step 2: finish (1,1) [0.25].
        let schedule = Schedule::new(vec![
            vec![ratio(1, 2), ratio(3, 8)],
            vec![ratio(1, 2), ratio(3, 8)],
            vec![Ratio::ZERO, ratio(1, 4)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 3);
        assert_eq!(trace.completion_step(JobId::new(0, 0)), Some(0));
        assert_eq!(trace.completion_step(JobId::new(0, 1)), Some(1));
        assert_eq!(trace.completion_step(JobId::new(1, 0)), Some(1));
        assert_eq!(trace.completion_step(JobId::new(1, 1)), Some(2));
        assert_eq!(trace.start_step(JobId::new(1, 0)), Some(0));
        assert_eq!(trace.unfinished_jobs(0, 0), 2);
        assert_eq!(trace.unfinished_jobs(1, 0), 1);
        assert_eq!(trace.unfinished_jobs(1, 1), 2);
        assert_eq!(trace.unfinished_jobs(2, 0), 0);
        assert_eq!(trace.unfinished_jobs(2, 1), 1);
        assert_eq!(trace.unfinished_jobs(3, 1), 0);
        assert!(trace.is_active(1, 0));
        assert!(!trace.is_active(2, 0));
        assert_eq!(trace.edge(0), vec![JobId::new(0, 0), JobId::new(1, 0)]);
        assert_eq!(trace.edge(2), vec![JobId::new(1, 1)]);
    }

    #[test]
    fn overuse_is_rejected() {
        let inst = two_proc_instance();
        let schedule = Schedule::new(vec![vec![ratio(3, 4), ratio(1, 2)]]);
        assert!(matches!(
            schedule.trace(&inst),
            Err(ScheduleError::ResourceOveruse { step: 0, .. })
        ));
    }

    #[test]
    fn share_out_of_range_rejected() {
        let inst = two_proc_instance();
        let schedule = Schedule::new(vec![vec![ratio(-1, 4), ratio(1, 2)]]);
        assert!(matches!(
            schedule.trace(&inst),
            Err(ScheduleError::ShareOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_processor_count_rejected() {
        let inst = two_proc_instance();
        let schedule = Schedule::new(vec![vec![ratio(1, 4)]]);
        assert!(matches!(
            schedule.trace(&inst),
            Err(ScheduleError::WrongProcessorCount { .. })
        ));
    }

    #[test]
    fn unfinished_jobs_rejected() {
        let inst = two_proc_instance();
        let schedule = Schedule::new(vec![vec![ratio(1, 2), ratio(1, 2)]]);
        let err = schedule.trace(&inst).unwrap_err();
        match err {
            ScheduleError::UnfinishedJobs { unfinished } => {
                assert!(unfinished.contains(&JobId::new(0, 1)));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn overprovisioning_is_wasted_not_faster() {
        // A job cannot be sped up beyond its requirement: granting the full
        // resource to a job with requirement 1/4 and volume 2 still only
        // processes one volume unit per step.
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 4), ratio(2, 1))])
            .build();
        let schedule = Schedule::new(vec![vec![Ratio::ONE], vec![Ratio::ONE]]);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 2);
        assert_eq!(trace.progress(0, 0), Ratio::ONE);
        assert_eq!(trace.consumed(0, 0), ratio(1, 4));
        assert_eq!(trace.assigned(0, 0), Ratio::ONE);
    }

    #[test]
    fn zero_requirement_job_runs_for_free() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ZERO, ratio(2, 1))])
            .processor([Ratio::ONE])
            .build();
        let schedule = Schedule::new(vec![
            vec![Ratio::ZERO, Ratio::ONE],
            vec![Ratio::ZERO, Ratio::ZERO],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 2);
        assert_eq!(trace.completion_step(JobId::new(0, 0)), Some(1));
        assert_eq!(trace.completion_step(JobId::new(1, 0)), Some(0));
    }

    #[test]
    fn trailing_idle_steps_do_not_count_towards_makespan() {
        let inst = InstanceBuilder::new().processor([ratio(1, 2)]).build();
        let schedule = Schedule::new(vec![vec![ratio(1, 2)], vec![Ratio::ZERO]]);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.num_steps(), 2);
        assert_eq!(trace.makespan(), 1);
    }

    #[test]
    fn builder_tracks_state() {
        let inst = two_proc_instance();
        let mut b = ScheduleBuilder::new(&inst);
        assert_eq!(b.unfinished_jobs(0), 2);
        assert_eq!(b.step_demand(0), ratio(1, 2));
        assert_eq!(b.step_demand(1), ratio(3, 4));
        assert_eq!(b.total_remaining_workload(), ratio(2, 1));

        b.push_step(vec![ratio(1, 2), ratio(1, 2)]);
        assert_eq!(b.unfinished_jobs(0), 1);
        assert_eq!(b.active_job(0), Some(JobId::new(0, 1)));
        // (1,0) had requirement 3/4 and received 1/2 → remaining workload 1/4.
        assert_eq!(b.remaining_workload(1), ratio(1, 4));
        assert_eq!(b.active_job(1), Some(JobId::new(1, 0)));

        b.push_step(vec![ratio(1, 2), ratio(1, 4)]);
        assert_eq!(b.unfinished_jobs(0), 0);
        assert_eq!(b.active_job(1), Some(JobId::new(1, 1)));

        b.push_step(vec![Ratio::ZERO, ratio(1, 4)]);
        assert!(b.all_done());
        let schedule = b.finish();
        assert_eq!(schedule.makespan(&inst).unwrap(), 3);
    }

    #[test]
    #[should_panic(expected = "overuses the resource")]
    fn builder_rejects_overuse() {
        let inst = two_proc_instance();
        let mut b = ScheduleBuilder::new(&inst);
        b.push_step(vec![ratio(3, 4), ratio(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "unfinished jobs")]
    fn builder_finish_requires_completion() {
        let inst = two_proc_instance();
        let b = ScheduleBuilder::new(&inst);
        let _ = b.finish();
    }

    #[test]
    fn builder_and_trace_agree() {
        let inst = two_proc_instance();
        let mut b = ScheduleBuilder::new(&inst);
        while !b.all_done() {
            // Naive: give everything to the lowest-indexed active processor.
            let mut shares = vec![Ratio::ZERO; inst.processors()];
            let mut left = Ratio::ONE;
            for (i, share) in shares.iter_mut().enumerate() {
                if b.is_active(i) {
                    let give = b.step_demand(i).min(left);
                    *share = give;
                    left -= give;
                }
            }
            b.push_step(shares);
        }
        let schedule = b.finish();
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), schedule.num_steps());
    }

    #[test]
    fn schedule_display() {
        let s = Schedule::new(vec![vec![ratio(1, 2), ratio(1, 2)]]);
        let text = s.to_string();
        assert!(text.contains("1 step"));
        assert!(text.contains("1/2"));
    }
}
