//! Property tests pinning the scaled scheduling layer (ISSUE-3) to the
//! retained rational reference paths, in the style of `proptest_scaled`.
//!
//! Instances are generated on a random grid `1/den` including the 0% and
//! 100% extremes (plus fractional volumes for the arbitrary-size variants);
//! on every instance the scaled production path and the `schedule_rational`
//! reference of GreedyBalance, RoundRobin and all four heuristics must
//! produce **bit-identical schedules** (which implies equal makespans), every
//! schedule must be feasible, and GreedyBalance must stay non-wasting
//! (Definition 5) and balanced.

use cr_algos::{
    EqualShare, GreedyBalance, LargestRequirementFirst, ProportionalShare, RoundRobin, Scheduler,
    SmallestRequirementFirst,
};
use cr_core::properties::{is_balanced, is_non_wasting, is_progressive};
use cr_core::{Instance, Job, Ratio};
use proptest::prelude::*;

/// Builds a unit-size instance from per-processor tick counts on the grid
/// `1/den`.  Ticks are drawn in percent (0..=100) and snapped onto the grid,
/// so 0% and 100% shares stay representable for every `den`.
fn instance_from(den: u64, rows: &[Vec<u64>]) -> Instance {
    let reqs = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|&pct| Ratio::from_parts(pct * den / 100, den))
                .collect()
        })
        .collect();
    Instance::unit_from_requirements(reqs)
}

/// Builds an arbitrary-size instance: requirements as in [`instance_from`],
/// volumes drawn in half-steps `v/2` with `v ∈ 1..=6` (so workload
/// denominators exercise the extended unit grid, and zero-requirement jobs
/// get fractional free-running lengths).
fn sized_instance_from(den: u64, rows: &[Vec<(u64, u64)>]) -> Instance {
    let jobs = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|&(pct, vol)| {
                    Job::new(
                        Ratio::from_parts(pct * den / 100, den),
                        Ratio::from_parts(vol, 2),
                    )
                })
                .collect()
        })
        .collect();
    Instance::new(jobs).expect("generated instance is valid")
}

/// Asserts one scheduler's scaled production path against its rational
/// reference and the model's feasibility constraints.
fn assert_paths_agree(
    name: &str,
    instance: &Instance,
    scaled: &cr_core::Schedule,
    rational: &cr_core::Schedule,
) -> Result<(), TestCaseError> {
    prop_assert!(scaled == rational, "{} paths diverged", name);
    let trace = scaled.trace(instance).expect("feasible schedule");
    prop_assert!(
        trace.makespan() == rational.makespan(instance).unwrap(),
        "{} makespans diverged",
        name
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unit_size_schedulers_scaled_matches_rational(
        den in 1u64..=48,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=6), 1..=4),
    ) {
        let inst = instance_from(den, &rows);
        assert_paths_agree(
            "GreedyBalance",
            &inst,
            &GreedyBalance::new().schedule(&inst),
            &GreedyBalance::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "RoundRobin",
            &inst,
            &RoundRobin::new().schedule(&inst),
            &RoundRobin::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "EqualShare",
            &inst,
            &EqualShare::new().schedule(&inst),
            &EqualShare::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "ProportionalShare",
            &inst,
            &ProportionalShare::new().schedule(&inst),
            &ProportionalShare::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "LargestRequirementFirst",
            &inst,
            &LargestRequirementFirst::new().schedule(&inst),
            &LargestRequirementFirst::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "SmallestRequirementFirst",
            &inst,
            &SmallestRequirementFirst::new().schedule(&inst),
            &SmallestRequirementFirst::new().schedule_rational(&inst),
        )?;
    }

    #[test]
    fn sized_schedulers_scaled_matches_rational(
        den in 1u64..=24,
        rows in prop::collection::vec(
            prop::collection::vec((0u64..=100, 1u64..=6), 1..=4),
            1..=4,
        ),
    ) {
        let inst = sized_instance_from(den, &rows);
        assert_paths_agree(
            "GreedyBalance",
            &inst,
            &GreedyBalance::new().schedule(&inst),
            &GreedyBalance::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "RoundRobin",
            &inst,
            &RoundRobin::new().schedule(&inst),
            &RoundRobin::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "EqualShare",
            &inst,
            &EqualShare::new().schedule(&inst),
            &EqualShare::new().schedule_rational(&inst),
        )?;
        assert_paths_agree(
            "ProportionalShare",
            &inst,
            &ProportionalShare::new().schedule(&inst),
            &ProportionalShare::new().schedule_rational(&inst),
        )?;
    }

    /// GreedyBalance's structural guarantees survive the move to the scaled
    /// engine: non-wasting and progressive on the full range including the
    /// 0% and 100% extremes.
    #[test]
    fn greedy_balance_stays_non_wasting(
        den in 1u64..=48,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=6), 1..=4),
    ) {
        let inst = instance_from(den, &rows);
        let trace = GreedyBalance::new()
            .schedule(&inst)
            .trace(&inst)
            .expect("feasible schedule");
        prop_assert!(is_non_wasting(&trace), "non-wastingness violated");
        prop_assert!(is_progressive(&trace));
    }

    /// On strictly positive requirements GreedyBalance additionally stays
    /// balanced (Definition 5, the premise of Theorems 7/8).  Requirements
    /// of exactly zero are excluded here: a zero-requirement job completes
    /// "for free" on a lagging processor even when a processor with more
    /// remaining jobs receives no resource, which violates the letter of the
    /// definition for any serving order (this matches the rational path and
    /// predates the scaled engine).
    #[test]
    fn greedy_balance_stays_balanced_on_positive_requirements(
        den in 1u64..=48,
        rows in prop::collection::vec(prop::collection::vec(1u64..=100, 1..=6), 1..=4),
    ) {
        // Snap every requirement up to at least one grid tick so it stays
        // strictly positive after the percent-to-grid conversion.
        let reqs: Vec<Vec<Ratio>> = rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&pct| Ratio::from_parts((pct * den / 100).max(1), den))
                    .collect()
            })
            .collect();
        let inst = Instance::unit_from_requirements(reqs);
        let trace = GreedyBalance::new()
            .schedule(&inst)
            .trace(&inst)
            .expect("feasible schedule");
        prop_assert!(is_balanced(&trace), "Definition 5 balancedness violated");
    }

    /// The splitting heuristics never waste resource a job could still use:
    /// while the active demands oversubscribe the pool, the whole pool is
    /// assigned (the property the old SHARE_GRID floor violated).
    #[test]
    fn splitters_assign_the_whole_pool_when_oversubscribed(
        den in 1u64..=48,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=5), 1..=4),
    ) {
        let inst = instance_from(den, &rows);
        for schedule in [
            EqualShare::new().schedule(&inst),
            ProportionalShare::new().schedule(&inst),
        ] {
            let trace = schedule.trace(&inst).expect("feasible schedule");
            for t in 0..trace.makespan() {
                let demand: Ratio = (0..inst.processors())
                    .filter(|&i| trace.is_active(t, i))
                    .map(|i| {
                        let id = trace.active_job(t, i).unwrap();
                        inst.job(id).requirement * trace.remaining_before(t, i).min(Ratio::ONE)
                    })
                    .sum();
                if demand >= Ratio::ONE {
                    prop_assert!(
                        trace.assigned_total(t) == Ratio::ONE,
                        "pool under-assigned in step {t} despite oversubscription"
                    );
                }
            }
        }
    }
}
