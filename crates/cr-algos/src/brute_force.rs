//! Exhaustive optimal solver used as ground truth in tests and experiments.
//!
//! The solver explores the same normalized step space as
//! [`crate::opt_m`] (at least one frontier job completes per step, the
//! leftover goes to at most one job — justified by Lemma 1, enumerated by
//! the shared width-independent pruned DFS of `crate::subset_enum`), but
//! performs a memoized depth-first search **without** the domination
//! pruning of Algorithm 2.  Its running time is exponential, which is fine for the small
//! instances where it serves as an independent reference for
//! `OptResAssignment`, `OptResAssignment2` and the approximation-ratio
//! experiments.

//! The hot path runs the memoized search on a [`ScaledInstance`] through
//! the internal `scaled_engine` module; the original `Ratio`-based search is retained as
//! [`brute_force_makespan_rational`] for cross-checking and as the overflow
//! fallback.

use crate::opt_m::{successors_cancellable, Config};
use crate::scaled_engine;
use crate::subset_enum::CHOICE_CHECK_STRIDE;
use cr_core::{bounds, CancelGate, CancelReason, CancelToken, Instance, ScaledInstance};
use std::collections::HashMap;

/// Search statistics of a brute-force run (useful for reporting how much
/// work the domination pruning of Algorithm 2 saves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of distinct configurations memoized.
    pub states: usize,
    /// Number of successor expansions performed.
    pub expansions: usize,
}

/// Computes the optimal makespan by exhaustive search.
///
/// # Panics
///
/// Panics if the instance contains non-unit size jobs.
#[must_use]
pub fn brute_force_makespan(instance: &Instance) -> usize {
    brute_force_with_stats(instance).0
}

/// Like [`brute_force_makespan`] but also reports search statistics.
///
/// Runs on the scaled-integer engine whenever the instance's requirement
/// denominators admit a `u64` LCM, falling back to the rational search
/// otherwise.
#[must_use]
pub fn brute_force_with_stats(instance: &Instance) -> (usize, SearchStats) {
    brute_force_with_stats_cancellable(instance, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("a never token cannot fire")
}

/// [`brute_force_with_stats`] with cooperative cancellation on both the
/// scaled and the rational path.
///
/// # Panics
///
/// Panics if the instance contains non-unit size jobs.
pub(crate) fn brute_force_with_stats_cancellable(
    instance: &Instance,
    token: &CancelToken,
) -> Result<(usize, SearchStats), CancelReason> {
    assert!(
        instance.is_unit_size(),
        "brute force solver requires unit-size jobs"
    );
    match ScaledInstance::try_new(instance) {
        Some(scaled) => {
            let (result, states, expansions) =
                scaled_engine::brute_force_cancellable(&scaled, token)?;
            Ok((result, SearchStats { states, expansions }))
        }
        None => brute_force_with_stats_rational_cancellable(instance, token),
    }
}

/// The original `Ratio`-arithmetic exhaustive search (reference path).
///
/// # Panics
///
/// Panics if the instance contains non-unit size jobs.
#[must_use]
pub fn brute_force_makespan_rational(instance: &Instance) -> usize {
    brute_force_with_stats_rational(instance).0
}

/// Like [`brute_force_makespan_rational`] but also reports statistics.
#[must_use]
pub fn brute_force_with_stats_rational(instance: &Instance) -> (usize, SearchStats) {
    brute_force_with_stats_rational_cancellable(instance, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("a never token cannot fire")
}

/// [`brute_force_with_stats_rational`] with cooperative cancellation: the
/// token is checked per expansion and (through the shared gate) per DFS
/// extension inside the successor enumeration.
///
/// # Panics
///
/// Panics if the instance contains non-unit size jobs.
pub(crate) fn brute_force_with_stats_rational_cancellable(
    instance: &Instance,
    token: &CancelToken,
) -> Result<(usize, SearchStats), CancelReason> {
    assert!(
        instance.is_unit_size(),
        "brute force solver requires unit-size jobs"
    );
    token.check()?;
    let m = instance.processors();
    let mut memo: HashMap<Config, usize> = HashMap::new();
    let mut stats = SearchStats::default();
    let mut gate = token.gate(CHOICE_CHECK_STRIDE);
    let initial = Config::initial(m);
    let result = search(instance, &initial, &mut memo, &mut gate, &mut stats)?;
    stats.states = memo.len();
    Ok((result, stats))
}

fn search(
    instance: &Instance,
    config: &Config,
    memo: &mut HashMap<Config, usize>,
    gate: &mut CancelGate,
    stats: &mut SearchStats,
) -> Result<usize, CancelReason> {
    if config.is_final(instance) {
        return Ok(0);
    }
    if let Some(&v) = memo.get(config) {
        return Ok(v);
    }
    gate.tick()?;
    stats.expansions += 1;
    let mut best = usize::MAX;
    for (next, _choice) in successors_cancellable(instance, config, gate)? {
        let sub = search(instance, &next, memo, gate, stats)?;
        if sub != usize::MAX {
            best = best.min(sub + 1);
        }
    }
    memo.insert(config.clone(), best);
    Ok(best)
}

/// Convenience wrapper asserting that a claimed makespan is optimal; returns
/// the brute-force optimum so callers can report both.
#[must_use]
pub fn verify_optimal(instance: &Instance, claimed: usize) -> usize {
    let opt = brute_force_makespan(instance);
    assert_eq!(
        opt, claimed,
        "claimed optimal makespan {claimed} differs from brute-force optimum {opt}"
    );
    opt
}

/// Returns `true` when the instance is small enough for the brute-force
/// solver to be practical (a heuristic guard used by experiment drivers).
#[must_use]
pub fn is_tractable(instance: &Instance) -> bool {
    instance.total_jobs() <= 14 && instance.processors() <= 5
}

/// The trivial lower bound re-exported here so experiment code can report
/// `(lower bound, brute force, algorithm)` triples from one import.
#[must_use]
pub fn instance_lower_bound(instance: &Instance) -> usize {
    bounds::trivial_lower_bound(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_balance::GreedyBalance;
    use crate::opt_m::opt_m_makespan;
    use crate::opt_two::opt_two_makespan;
    use crate::round_robin::RoundRobin;
    use crate::traits::Scheduler;

    #[test]
    fn matches_opt_two_on_two_processor_instances() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]),
            Instance::unit_from_percentages(&[&[100, 1, 100], &[1, 100, 1]]),
            Instance::unit_from_percentages(&[&[55, 45, 35], &[65, 75, 85]]),
            Instance::unit_from_percentages(&[&[30, 30, 30], &[70, 70, 70]]),
        ];
        for inst in instances {
            assert_eq!(
                brute_force_makespan(&inst),
                opt_two_makespan(&inst),
                "{inst}"
            );
        }
    }

    #[test]
    fn matches_opt_m_on_three_processor_instances() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]),
            Instance::unit_from_percentages(&[&[100], &[100], &[100]]),
            Instance::unit_from_percentages(&[&[50, 50, 50, 50], &[100], &[100]]),
            Instance::unit_from_percentages(&[&[90, 5], &[80, 15], &[70, 25]]),
        ];
        for inst in instances {
            assert_eq!(brute_force_makespan(&inst), opt_m_makespan(&inst), "{inst}");
        }
    }

    #[test]
    fn optimum_is_between_lower_bound_and_heuristics() {
        let inst = Instance::unit_from_percentages(&[&[80, 20], &[70, 30], &[10, 90]]);
        let opt = brute_force_makespan(&inst);
        assert!(opt >= instance_lower_bound(&inst));
        assert!(opt <= GreedyBalance::new().makespan(&inst));
        assert!(opt <= RoundRobin::new().makespan(&inst));
    }

    #[test]
    fn verify_optimal_accepts_correct_claims() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50]]);
        assert_eq!(verify_optimal(&inst, 1), 1);
    }

    #[test]
    #[should_panic(expected = "differs from brute-force optimum")]
    fn verify_optimal_rejects_wrong_claims() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50]]);
        let _ = verify_optimal(&inst, 2);
    }

    #[test]
    fn tractability_guard() {
        assert!(is_tractable(&Instance::unit_from_percentages(&[
            &[50, 50],
            &[50, 50]
        ])));
        let big =
            Instance::unit_from_requirements(vec![vec![cr_core::Ratio::from_percent(10); 20]; 6]);
        assert!(!is_tractable(&big));
    }

    #[test]
    fn stats_are_populated() {
        let inst = Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]);
        let (opt, stats) = brute_force_with_stats(&inst);
        assert_eq!(opt, 2);
        assert!(stats.states > 0);
        assert!(stats.expansions > 0);
    }

    #[test]
    fn cancelled_rational_brute_force_stops_early() {
        let inst = Instance::unit_from_percentages(&[&[80, 20], &[70, 30], &[10, 90]]);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            brute_force_with_stats_rational_cancellable(&inst, &token),
            Err(CancelReason::Cancelled)
        );
        assert_eq!(
            brute_force_with_stats_cancellable(&inst, &token),
            Err(CancelReason::Cancelled)
        );
        let live = CancelToken::new();
        assert_eq!(
            brute_force_with_stats_cancellable(&inst, &live).unwrap(),
            brute_force_with_stats(&inst)
        );
    }

    #[test]
    fn scaled_and_rational_paths_agree() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]),
            Instance::unit_from_percentages(&[&[80, 20], &[70, 30], &[10, 90]]),
            Instance::unit_from_percentages(&[&[0, 100], &[100, 0], &[50, 50]]),
            Instance::unit_from_percentages(&[&[50, 50, 50, 50], &[100], &[100]]),
        ];
        for inst in instances {
            assert_eq!(
                brute_force_makespan(&inst),
                brute_force_makespan_rational(&inst),
                "{inst}"
            );
        }
    }
}
