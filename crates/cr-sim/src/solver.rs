//! Online simulator policies behind the unified [`Solver`] interface.
//!
//! This makes the online methods selectable from the same string-keyed
//! registry as the offline algorithms: `cr_algos::solver::registry()` plus
//! [`register_online`] yields one line-up spanning both worlds, which is
//! what the batch solver service in `cr-service` serves.
//!
//! Online methods are registered under `sim:`-prefixed keys
//! ([`ONLINE_METHODS`]).  A [`SolveRequest`] routed to them may carry
//! **arrival traces** (`SolveRequest::arrivals`): core `i` is invisible to
//! the policy — and receives no bandwidth — before step `arrivals[i]`, as
//! if its task arrived at that point of the trace.  The reported makespan
//! includes the waiting.
//!
//! Engine contract: the simulator is integer-native (it *is* the scaled
//! engine — a credit-based arbiter on the workload's unit grid), so
//! [`EnginePreference::Rational`] is rejected with
//! [`SolveError::EngineUnavailable`] and both `Auto` and `Scaled` run the
//! integer engine.  A workload whose grid overflows `u64` fails with
//! [`SolveError::GridOverflow`].  [`Budget::max_steps`](cr_algos::solver::Budget::max_steps) is enforced as a
//! hard simulation step limit — the run genuinely stops at the limit.
//!
//! Multi-resource requests (`k ≥ 2` resource layers) run through
//! [`Simulator::run_multi_cancellable`] and report the makespan only: the
//! CRSharing schedule format is single-resource, so `want_schedule` on such
//! a request fails with [`SolveError::ResourceMismatch`].  Arrival traces
//! compose with multi-resource workloads — the gate masks every layer of an
//! unarrived core.

use crate::engine::{SimError, Simulator};
use crate::policies::{
    CoreView, EqualSharePolicy, GreedyBalancePolicy, MultiCoreView, OnlinePolicy,
    ProportionalSharePolicy, RoundRobinPolicy,
};
use cr_algos::solver::{
    BudgetKind, Engine, EnginePreference, Prepared, Registry, SolveError, SolveOutcome,
    SolveRequest, Solver,
};
use cr_core::CancelToken;

/// Registry keys of the online simulator methods, in line-up order.
pub const ONLINE_METHODS: [&str; 4] = [
    "sim:GreedyBalance",
    "sim:RoundRobin",
    "sim:EqualShare",
    "sim:ProportionalShare",
];

/// Which built-in policy an [`OnlinePolicySolver`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PolicyKind {
    GreedyBalance,
    RoundRobin,
    EqualShare,
    ProportionalShare,
}

impl PolicyKind {
    fn method(self) -> &'static str {
        match self {
            PolicyKind::GreedyBalance => "sim:GreedyBalance",
            PolicyKind::RoundRobin => "sim:RoundRobin",
            PolicyKind::EqualShare => "sim:EqualShare",
            PolicyKind::ProportionalShare => "sim:ProportionalShare",
        }
    }

    /// A fresh policy instance (policies are stateful across steps, so every
    /// solve gets its own).
    fn make(self) -> Box<dyn OnlinePolicy> {
        match self {
            PolicyKind::GreedyBalance => Box::new(GreedyBalancePolicy),
            PolicyKind::RoundRobin => Box::new(RoundRobinPolicy),
            PolicyKind::EqualShare => Box::new(EqualSharePolicy),
            PolicyKind::ProportionalShare => Box::new(ProportionalSharePolicy),
        }
    }
}

/// Masks cores whose task has not arrived yet: before step `arrivals[i]`
/// the inner policy sees core `i` as inactive and any share it would assign
/// there is withheld.
struct ArrivalGate {
    arrivals: Vec<usize>,
    step: usize,
    inner: Box<dyn OnlinePolicy>,
}

impl OnlinePolicy for ArrivalGate {
    fn name(&self) -> &'static str {
        "ArrivalGated"
    }

    // The default multi lift calls `allocate` once per resource layer, but
    // the gate's step counter must advance once per *step* — so the gate
    // overrides the lift: mask every layer of an unarrived core, delegate
    // to the inner policy's own lift, withhold the masked rows, and only
    // then advance the step.
    fn allocate_multi(&mut self, capacities: &[u64], cores: &[MultiCoreView]) -> Vec<Vec<u64>> {
        let masked: Vec<MultiCoreView> = cores
            .iter()
            .enumerate()
            .map(|(i, view)| {
                if self.arrivals[i] > self.step {
                    MultiCoreView::idle(capacities.len())
                } else {
                    view.clone()
                }
            })
            .collect();
        let mut shares = self.inner.allocate_multi(capacities, &masked);
        for (i, row) in shares.iter_mut().enumerate() {
            if self.arrivals[i] > self.step {
                row.iter_mut().for_each(|share| *share = 0);
            }
        }
        self.step += 1;
        shares
    }

    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64> {
        let masked: Vec<CoreView> = cores
            .iter()
            .enumerate()
            .map(|(i, view)| {
                if self.arrivals[i] > self.step {
                    CoreView {
                        active_requirement: None,
                        step_demand: 0,
                        remaining_workload: 0,
                        remaining_phases: 0,
                    }
                } else {
                    *view
                }
            })
            .collect();
        let mut shares = self.inner.allocate(capacity, &masked);
        for (i, share) in shares.iter_mut().enumerate() {
            if self.arrivals[i] > self.step {
                *share = 0;
            }
        }
        self.step += 1;
        shares
    }
}

/// One online policy as a [`Solver`] (see the module docs for the
/// engine/arrival/budget contract).
#[derive(Debug, Clone, Copy)]
pub struct OnlinePolicySolver {
    kind: PolicyKind,
}

impl Solver for OnlinePolicySolver {
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        self.solve_cancellable(request, prepared, &CancelToken::never())
    }

    fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        let method = self.kind.method();
        let token = cancel.child_with_deadline_ms(request.budget.max_wall_ms);
        if request.engine == EnginePreference::Rational {
            return Err(SolveError::EngineUnavailable {
                method: method.to_string(),
                engine: request.engine,
            });
        }
        // Multi-resource workloads simulate fine (the engine arbitrates
        // every layer), but the CRSharing schedule format is
        // single-resource — a schedule request on a k ≥ 2 instance is a
        // structured client error, not a silent omission.
        let multi = request.instance.resources() > 1;
        if multi && request.want_schedule {
            return Err(SolveError::ResourceMismatch {
                method: method.to_string(),
                resources: request.instance.resources(),
            });
        }
        let mut sim = Simulator::from_instance(&request.instance);
        let default_limit = request.budget.max_steps.is_none();
        match request.budget.max_steps {
            Some(limit) => sim = sim.with_step_limit(limit),
            None => {
                // The default watchdog is sized for tasks present at t = 0;
                // a late arrival legitimately stretches the makespan by its
                // waiting time, so widen the watchdog by the latest arrival
                // instead of reporting a spurious budget error.
                if let Some(arrivals) = &request.arrivals {
                    let latest = arrivals.iter().copied().max().unwrap_or(0);
                    let limit = sim.step_limit().saturating_add(latest);
                    sim = sim.with_step_limit(limit);
                }
            }
        }

        let mut policy: Box<dyn OnlinePolicy> = match &request.arrivals {
            Some(arrivals) => {
                if arrivals.len() != request.instance.processors() {
                    return Err(SolveError::InvalidArrivals {
                        expected: request.instance.processors(),
                        found: arrivals.len(),
                    });
                }
                Box::new(ArrivalGate {
                    arrivals: arrivals.clone(),
                    step: 0,
                    inner: self.kind.make(),
                })
            }
            None => self.kind.make(),
        };

        let map_sim_error = |err: SimError| match err {
            SimError::GridOverflow => SolveError::GridOverflow {
                method: method.to_string(),
            },
            SimError::StepLimit { limit, .. } => {
                // With an explicit budget this is the requested cutoff; the
                // default limit is the engine's starvation watchdog — both
                // are step budgets from the caller's point of view.
                debug_assert!(default_limit || Some(limit) == request.budget.max_steps);
                SolveError::BudgetExhausted {
                    method: method.to_string(),
                    kind: BudgetKind::Steps,
                    limit,
                }
            }
            SimError::Cancelled { reason } => SolveError::DeadlineExceeded { reason },
        };

        if multi {
            let report = sim
                .run_multi_cancellable(policy.as_mut(), &token)
                .map_err(map_sim_error)?;
            return Ok(SolveOutcome {
                method: method.to_string(),
                engine: Engine::Scaled,
                fallbacks: Vec::new(),
                makespan: Some(report.makespan),
                steps: report.makespan,
                rounds: 0,
                schedule: None,
                lower_bounds: prepared.lower_bounds,
            });
        }

        let outcome = sim
            .run_cancellable(policy.as_mut(), &token)
            .map_err(map_sim_error)?;
        Ok(SolveOutcome {
            method: method.to_string(),
            engine: Engine::Scaled,
            fallbacks: Vec::new(),
            makespan: Some(outcome.report.makespan),
            steps: outcome.schedule.num_steps(),
            rounds: 0,
            schedule: request.want_schedule.then_some(outcome.schedule),
            lower_bounds: prepared.lower_bounds,
        })
    }
}

/// Registers the four online simulator methods on top of an (offline)
/// registry, so online and offline methods are selectable from one line-up.
pub fn register_online(registry: &mut Registry) {
    for kind in [
        PolicyKind::GreedyBalance,
        PolicyKind::RoundRobin,
        PolicyKind::EqualShare,
        PolicyKind::ProportionalShare,
    ] {
        registry.register(kind.method(), Box::new(OnlinePolicySolver { kind }));
    }
}

/// The full combined registry: every offline method of
/// [`cr_algos::solver::registry`] plus the online simulator methods.
#[must_use]
pub fn full_registry() -> Registry {
    let mut registry = cr_algos::solver::registry();
    register_online(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::{ratio, Instance, Ratio};

    fn workload() -> Instance {
        Instance::unit_from_requirements(vec![
            vec![ratio(9, 10), ratio(8, 10)],
            vec![ratio(1, 10), ratio(1, 10)],
            vec![ratio(6, 10), ratio(5, 10)],
        ])
    }

    #[test]
    fn online_methods_are_in_the_combined_registry() {
        let registry = full_registry();
        for method in ONLINE_METHODS {
            assert!(registry.get(method).is_some(), "{method} missing");
        }
        // Offline methods remain selectable.
        assert!(registry.get("OptM").is_some());
    }

    #[test]
    fn online_solve_matches_the_simulator() {
        let inst = workload();
        let outcome = full_registry()
            .solve(&SolveRequest::new("sim:GreedyBalance", inst.clone()).with_schedule())
            .unwrap();
        let direct = Simulator::from_instance(&inst)
            .run(&mut GreedyBalancePolicy)
            .unwrap();
        assert_eq!(outcome.makespan, Some(direct.report.makespan));
        assert_eq!(outcome.schedule.unwrap(), direct.schedule);
        assert_eq!(outcome.engine, Engine::Scaled);
    }

    #[test]
    fn rational_engine_is_unavailable_online() {
        let err = full_registry()
            .solve(
                &SolveRequest::new("sim:EqualShare", workload())
                    .with_engine(EnginePreference::Rational),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "engine_unavailable");
    }

    #[test]
    fn arrivals_delay_cores_and_lengthen_the_makespan() {
        let inst = workload();
        let registry = full_registry();
        let immediate = registry
            .solve(&SolveRequest::new("sim:GreedyBalance", inst.clone()))
            .unwrap()
            .makespan
            .unwrap();
        let delayed = registry
            .solve(
                &SolveRequest::new("sim:GreedyBalance", inst.clone())
                    .with_arrivals(vec![0, 0, 6])
                    .with_schedule(),
            )
            .unwrap();
        assert!(
            delayed.makespan.unwrap() > immediate,
            "a late arrival must delay completion ({} vs {immediate})",
            delayed.makespan.unwrap()
        );
        // Before its arrival step the gated core receives nothing.
        let schedule = delayed.schedule.unwrap();
        let trace = schedule.trace(&inst).unwrap();
        for step in 0..6 {
            assert_eq!(trace.assigned(step, 2), Ratio::ZERO, "step {step}");
        }
        assert_eq!(
            full_registry()
                .solve(&SolveRequest::new("sim:GreedyBalance", inst).with_arrivals(vec![0, 0]))
                .unwrap_err()
                .kind(),
            "invalid_arrivals"
        );
    }

    fn multi_workload() -> Instance {
        cr_core::InstanceBuilder::new()
            .processor([ratio(1, 10), ratio(1, 10)])
            .processor([ratio(1, 10)])
            .extra_layer([vec![ratio(3, 4), ratio(3, 4)], vec![ratio(3, 4)]])
            .build()
    }

    #[test]
    fn multi_resource_requests_simulate_makespan_only() {
        let inst = multi_workload();
        let registry = full_registry();
        for method in ONLINE_METHODS {
            let outcome = registry
                .solve(&SolveRequest::new(method, inst.clone()))
                .unwrap();
            let direct = Simulator::from_instance(&inst);
            // The solver reports exactly what the engine's multi run does.
            let mut policy: Box<dyn OnlinePolicy> = match method {
                "sim:GreedyBalance" => Box::new(GreedyBalancePolicy),
                "sim:RoundRobin" => Box::new(RoundRobinPolicy),
                "sim:EqualShare" => Box::new(EqualSharePolicy),
                _ => Box::new(ProportionalSharePolicy),
            };
            let report = direct.run_multi(policy.as_mut()).unwrap();
            assert_eq!(outcome.makespan, Some(report.makespan), "{method}");
            assert_eq!(outcome.engine, Engine::Scaled);
            assert!(outcome.schedule.is_none());
            // The binding second layer needs at least ⌈9/4 / (3/4)⌉ = 3 steps.
            assert!(report.makespan >= 3, "{method}");
        }
    }

    #[test]
    fn multi_resource_schedule_requests_are_a_structured_error() {
        let err = full_registry()
            .solve(&SolveRequest::new("sim:GreedyBalance", multi_workload()).with_schedule())
            .unwrap_err();
        assert_eq!(err.kind(), "resource_mismatch");
        // The rational engine stays unavailable for multi requests too.
        let err = full_registry()
            .solve(
                &SolveRequest::new("sim:GreedyBalance", multi_workload())
                    .with_engine(EnginePreference::Rational),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "engine_unavailable");
    }

    #[test]
    fn arrivals_gate_multi_resource_cores_once_per_step() {
        let inst = multi_workload();
        let registry = full_registry();
        let immediate = registry
            .solve(&SolveRequest::new("sim:GreedyBalance", inst.clone()))
            .unwrap()
            .makespan
            .unwrap();
        let delayed = registry
            .solve(&SolveRequest::new("sim:GreedyBalance", inst.clone()).with_arrivals(vec![0, 9]))
            .unwrap()
            .makespan
            .unwrap();
        // Core 1 arrives after core 0 could already have finished, so its
        // own work (≥ 1 step on the binding layer) lands strictly later —
        // and the step counter advancing once per step (not once per layer)
        // means the arrival fires at step 9, not step ⌈9/k⌉.
        assert!(
            delayed >= 10,
            "arrival at 9 must push completion past step 9, got {delayed}"
        );
        assert!(delayed > immediate);
    }

    #[test]
    fn cancelled_simulation_solve_reports_deadline_exceeded() {
        let inst = workload();
        let registry = full_registry();
        let prepared = Prepared::new(&inst);
        let token = CancelToken::new();
        token.cancel();
        let err = registry
            .solve_cancellable(
                &SolveRequest::new("sim:GreedyBalance", inst.clone()),
                &prepared,
                &token,
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        // An expired wall budget fires even with a live parent token.
        let err = registry
            .solve_cancellable(
                &SolveRequest::new("sim:GreedyBalance", inst).with_budget(
                    cr_algos::solver::Budget {
                        max_wall_ms: Some(0),
                        ..cr_algos::solver::Budget::UNLIMITED
                    },
                ),
                &prepared,
                &CancelToken::never(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
    }

    #[test]
    fn step_budget_is_a_hard_simulation_limit() {
        let err = full_registry()
            .solve(
                &SolveRequest::new("sim:RoundRobin", workload()).with_budget(
                    cr_algos::solver::Budget {
                        max_steps: Some(1),
                        ..cr_algos::solver::Budget::UNLIMITED
                    },
                ),
            )
            .unwrap_err();
        match err {
            SolveError::BudgetExhausted { kind, limit, .. } => {
                assert_eq!(limit, 1);
                assert_eq!(kind, BudgetKind::Steps);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }
}
