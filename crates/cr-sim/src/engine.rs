//! The discrete-time simulation engine.
//!
//! The engine owns a workload (one task per core), repeatedly asks an
//! [`OnlinePolicy`] for a bus-share vector, validates it, advances the cores
//! and collects metrics.  Internally it runs on the exact scaled-integer
//! simulation semantics of [`cr_core::ScaledScheduleBuilder`]: the bus is a
//! pool of `capacity` integer units per step (the workload's unit grid), a
//! policy answers in units, and one simulated step is pure integer
//! arithmetic — no rational arithmetic, no floating point, and every metric
//! (consumption, waste, utilization) is exact.  A finished run is
//! bit-for-bit a CRSharing [`Schedule`] and can be validated, rendered and
//! analyzed with the rest of the tool chain.

use crate::metrics::{CoreReport, MultiSimReport, SimReport};
use crate::policies::{CoreView, MultiCoreView, OnlinePolicy};
use crate::task::{tasks_to_instance, Task};
use cr_core::{
    bounds, CancelReason, CancelToken, Instance, MultiStepper, ScaledScheduleBuilder, Schedule,
};
use std::fmt;

/// How many simulated steps pass between cancel-token checks in the engine
/// loop: one step costs `O(m)` integer work plus a policy call, so even
/// wide workloads check far more often than
/// [`cr_core::cancel::CHECK_INTERVAL_MS`] demands.
const STEP_CHECK_STRIDE: u32 = 64;

/// A simulation of one workload under one policy.
pub struct Simulator {
    tasks: Vec<Task>,
    instance: Instance,
    /// Hard cap on simulated steps, to surface starvation bugs in policies
    /// instead of spinning forever.
    step_limit: usize,
}

/// Outcome of a simulation: the aggregate report plus the full schedule for
/// further inspection.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate and per-core metrics.
    pub report: SimReport,
    /// The exact schedule the policy produced.
    pub schedule: Schedule,
}

/// A structured simulation failure.
///
/// These are *environment or policy* conditions a caller may want to handle
/// (report, retry with another policy, …) rather than programming errors:
/// the engine still panics when a policy returns a malformed share vector
/// (wrong length, overusing the pool), because that is a bug in the policy
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The workload's unit grid (requirement/workload denominator LCM)
    /// overflows the scaled engine's `u64` headroom.
    GridOverflow,
    /// The policy failed to finish the workload within the step limit — it
    /// is starving a core or making no progress.
    StepLimit {
        /// Name of the policy that exceeded the limit.
        policy: String,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The simulation's cancel token fired (wall-clock deadline passed, or
    /// the requesting connection died) before the workload finished.
    Cancelled {
        /// Whether the deadline fired or the run was cancelled externally.
        reason: CancelReason,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::GridOverflow => write!(
                f,
                "workload unit grid overflows u64 — simulate via the rational offline schedulers"
            ),
            SimError::StepLimit { policy, limit } => write!(
                f,
                "policy {policy} exceeded the step limit of {limit} — it is starving a core"
            ),
            SimError::Cancelled { reason } => write!(f, "simulation stopped: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl Simulator {
    /// Creates a simulator for a set of tasks (one per core).
    #[must_use]
    pub fn new(tasks: Vec<Task>) -> Self {
        let instance = tasks_to_instance(&tasks);
        let step_limit = Self::default_step_limit(&tasks);
        Simulator {
            tasks,
            instance,
            step_limit,
        }
    }

    /// Creates a simulator directly from a CRSharing instance (cores are
    /// named `core0`, `core1`, …).  Extra resource layers of the instance
    /// are preserved: [`Simulator::run`] simulates the base resource only,
    /// while [`Simulator::run_multi`] arbitrates all `k` layers.
    #[must_use]
    pub fn from_instance(instance: &Instance) -> Self {
        let tasks = crate::task::instance_to_tasks(instance);
        let step_limit = Self::default_step_limit(&tasks);
        Simulator {
            tasks,
            instance: instance.clone(),
            step_limit,
        }
    }

    /// Generous default starvation watchdog: even a policy that serves one
    /// core at a time finishes within the total ideal time of all tasks
    /// (with every resource layer at the core's disposal, a job still takes
    /// exactly its ideal `⌈p⌉` steps, so the bound holds for any `k`).
    fn default_step_limit(tasks: &[Task]) -> usize {
        tasks
            .iter()
            .map(Task::ideal_completion_time)
            .sum::<usize>()
            .max(1)
            * 4
            + 16
    }

    /// Overrides the step limit (mostly useful in tests).
    #[must_use]
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// The current step limit (the default starvation watchdog unless
    /// overridden).
    #[must_use]
    pub fn step_limit(&self) -> usize {
        self.step_limit
    }

    /// The workload as a CRSharing instance.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Runs the workload to completion under `policy`, simulating the
    /// **base resource** only (extra layers of a multi-resource instance
    /// are not arbitrated here — use [`Simulator::run_multi`] for those).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GridOverflow`] when the workload's unit grid does
    /// not fit the scaled engine, and [`SimError::StepLimit`] when the
    /// policy fails to finish the workload within the step limit.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns a malformed share vector (wrong length,
    /// share above the capacity, or total above the pool) — that is a bug in
    /// the policy, not a runtime condition.
    pub fn run(&self, policy: &mut dyn OnlinePolicy) -> Result<SimOutcome, SimError> {
        self.run_cancellable(policy, &CancelToken::never())
    }

    /// [`Simulator::run`] with cooperative cancellation: the step loop
    /// consults `token` on a strided gate (every 64 steps), failing with
    /// [`SimError::Cancelled`] once it fires.
    ///
    /// # Errors
    ///
    /// Everything [`Simulator::run`] reports, plus [`SimError::Cancelled`].
    ///
    /// # Panics
    ///
    /// Panics if the policy returns a malformed share vector (wrong length,
    /// share above the capacity, or total above the pool) — that is a bug in
    /// the policy, not a runtime condition.
    pub fn run_cancellable(
        &self,
        policy: &mut dyn OnlinePolicy,
        token: &CancelToken,
    ) -> Result<SimOutcome, SimError> {
        let _run_span = cr_obs::Span::enter(cr_obs::names::SPAN_SIM_RUN);
        let cancelled = |reason: CancelReason| SimError::Cancelled { reason };
        token.check().map_err(cancelled)?;
        let mut gate = token.gate(STEP_CHECK_STRIDE);
        let mut builder =
            ScaledScheduleBuilder::try_new(&self.instance).ok_or(SimError::GridOverflow)?;
        let capacity = builder.capacity();
        let m = self.instance.processors();

        // Completion is recorded *before* the first step too, so a core
        // whose task is already empty reports completion time 0 instead of
        // being credited with the first simulated step.
        let mut completion: Vec<Option<usize>> = (0..m)
            .map(|i| (builder.unfinished_jobs(i) == 0).then_some(0))
            .collect();
        let mut starved = vec![0usize; m];
        let mut consumed_units: u64 = 0;
        let mut wasted_units_per_step: Vec<u64> = Vec::new();

        let mut steps = 0usize;
        while !builder.all_done() {
            gate.tick().map_err(cancelled)?;
            if steps >= self.step_limit {
                return Err(SimError::StepLimit {
                    policy: policy.name().to_string(),
                    limit: self.step_limit,
                });
            }
            let views: Vec<CoreView> = (0..m)
                .map(|i| CoreView {
                    active_requirement: builder.active_requirement_units(i),
                    step_demand: builder.step_demand_units(i),
                    remaining_workload: builder.remaining_workload_units(i),
                    remaining_phases: builder.unfinished_jobs(i),
                })
                .collect();
            let shares = policy.allocate(capacity, &views);
            assert_eq!(
                shares.len(),
                m,
                "policy {} returned {} shares for {} cores",
                policy.name(),
                shares.len(),
                m
            );

            let mut useful: u64 = 0;
            // lint: allow(cancel_coverage) — bounded: one pass over m processors per simulated step; the step loop polls the gate
            for i in 0..m {
                if views[i].is_active() {
                    useful += shares[i].min(views[i].step_demand);
                    if shares[i] == 0 && views[i].step_demand > 0 {
                        starved[i] += 1;
                    }
                }
            }
            consumed_units = consumed_units.saturating_add(useful);
            wasted_units_per_step.push(capacity - useful);
            builder.push_step(shares);
            steps += 1;
            // lint: allow(cancel_coverage) — bounded: completion scan over m processors per step; the step loop polls the gate
            for (i, done_at) in completion.iter_mut().enumerate() {
                if done_at.is_none() && builder.unfinished_jobs(i) == 0 {
                    *done_at = Some(steps);
                }
            }
        }

        let schedule = builder.finish();
        let makespan = steps;
        let per_core: Vec<CoreReport> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| CoreReport {
                name: task.name.clone(),
                completion_time: completion[i].expect("all cores completed"),
                ideal_completion_time: task.ideal_completion_time(),
                starved_steps: starved[i],
            })
            .collect();

        let pool_total = (makespan as u64).saturating_mul(capacity);
        let report = SimReport {
            policy: policy.name().to_string(),
            cores: m,
            makespan,
            capacity,
            consumed_units,
            wasted_units_per_step,
            bus_utilization: if pool_total == 0 {
                0.0
            } else {
                consumed_units as f64 / pool_total as f64
            },
            lower_bound: bounds::trivial_lower_bound(&self.instance),
            per_core,
        };
        crate::obs::record_report(&report);
        Ok(SimOutcome { report, schedule })
    }

    /// Runs the workload to completion under `policy` with **every**
    /// resource layer arbitrated, driving the policy through
    /// [`OnlinePolicy::allocate_multi`].  Works for any `k ≥ 1`; for
    /// single-resource workloads the default `allocate_multi` lift makes it
    /// behave exactly like [`Simulator::run`] (modulo the missing schedule).
    ///
    /// Unlike the scalar runs this reports no [`Schedule`] — the CRSharing
    /// schedule format is single-resource — so the result is the metrics
    /// report alone.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::GridOverflow`] when any resource layer's unit
    /// grid does not fit the scaled engine, and [`SimError::StepLimit`]
    /// when the policy fails to finish the workload within the step limit.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns a malformed share matrix (wrong shape,
    /// a share above its resource's capacity, or a resource oversubscribed)
    /// — that is a bug in the policy, not a runtime condition.
    pub fn run_multi(&self, policy: &mut dyn OnlinePolicy) -> Result<MultiSimReport, SimError> {
        self.run_multi_cancellable(policy, &CancelToken::never())
    }

    /// [`Simulator::run_multi`] with cooperative cancellation on the same
    /// strided gate as the scalar run.
    ///
    /// # Errors
    ///
    /// Everything [`Simulator::run_multi`] reports, plus
    /// [`SimError::Cancelled`].
    ///
    /// # Panics
    ///
    /// As for [`Simulator::run_multi`]: a malformed share matrix is a
    /// policy bug and panics.
    pub fn run_multi_cancellable(
        &self,
        policy: &mut dyn OnlinePolicy,
        token: &CancelToken,
    ) -> Result<MultiSimReport, SimError> {
        let _run_span = cr_obs::Span::enter(cr_obs::names::SPAN_SIM_RUN);
        let cancelled = |reason: CancelReason| SimError::Cancelled { reason };
        token.check().map_err(cancelled)?;
        let mut gate = token.gate(STEP_CHECK_STRIDE);
        let mut stepper =
            MultiStepper::try_new_scaled(&self.instance).ok_or(SimError::GridOverflow)?;
        let k = stepper.resources();
        let m = self.instance.processors();
        let capacities: Vec<u64> = stepper.capacities().to_vec();

        let mut completion: Vec<Option<usize>> = (0..m)
            .map(|i| (stepper.unfinished_jobs(i) == 0).then_some(0))
            .collect();
        let mut starved = vec![0usize; m];
        let mut consumed_units = vec![0u64; k];
        let mut wasted_units_per_step: Vec<Vec<u64>> = vec![Vec::new(); k];

        let mut steps = 0usize;
        while !stepper.all_done() {
            gate.tick().map_err(cancelled)?;
            if steps >= self.step_limit {
                return Err(SimError::StepLimit {
                    policy: policy.name().to_string(),
                    limit: self.step_limit,
                });
            }
            let views: Vec<MultiCoreView> = (0..m)
                .map(|i| MultiCoreView {
                    active_requirement: stepper.is_active(i).then(|| {
                        (0..k)
                            .map(|r| stepper.active_requirement(i, r).unwrap_or(0))
                            .collect()
                    }),
                    step_demand: (0..k).map(|r| stepper.step_demand(i, r)).collect(),
                    remaining_workload: (0..k).map(|r| stepper.remaining(i, r)).collect(),
                    remaining_phases: stepper.unfinished_jobs(i),
                })
                .collect();
            let shares = policy.allocate_multi(&capacities, &views);
            assert_eq!(
                shares.len(),
                m,
                "policy {} returned {} share rows for {} cores",
                policy.name(),
                shares.len(),
                m
            );

            // lint: allow(cancel_coverage) — bounded: one pass over m cores per simulated step; the step loop polls the gate
            for (i, (view, row)) in views.iter().zip(&shares).enumerate() {
                // A core is starved when it could absorb units on some
                // layer but received a useful grant on none.  (Units of
                // different layers live on different grids, so this is a
                // per-layer predicate, never a cross-layer sum.)
                let any_useful = row
                    .iter()
                    .zip(&view.step_demand)
                    .any(|(&s, &d)| s.min(d) > 0);
                let any_demand = view.step_demand.iter().any(|&d| d > 0);
                if view.is_active() && !any_useful && any_demand {
                    starved[i] += 1;
                }
            }
            // The stepper validates shapes, per-share caps and column sums,
            // panicking on a malformed matrix exactly like the scalar run.
            let consumed = stepper.push_step(&shares);
            // lint: allow(cancel_coverage) — bounded: k resource layers per step; the step loop polls the gate
            for (r, &used) in consumed.iter().enumerate() {
                consumed_units[r] = consumed_units[r].saturating_add(used);
                wasted_units_per_step[r].push(capacities[r] - used);
            }
            steps += 1;
            // lint: allow(cancel_coverage) — bounded: completion scan over m processors per step; the step loop polls the gate
            for (i, done_at) in completion.iter_mut().enumerate() {
                if done_at.is_none() && stepper.unfinished_jobs(i) == 0 {
                    *done_at = Some(steps);
                }
            }
        }

        let makespan = steps;
        let per_core: Vec<CoreReport> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| CoreReport {
                name: task.name.clone(),
                completion_time: completion[i].expect("all cores completed"),
                ideal_completion_time: task.ideal_completion_time(),
                starved_steps: starved[i],
            })
            .collect();
        let utilization: Vec<f64> = capacities
            .iter()
            .zip(&consumed_units)
            .map(|(&cap, &used)| {
                let pool = (makespan as u64).saturating_mul(cap);
                if pool == 0 {
                    0.0
                } else {
                    used as f64 / pool as f64
                }
            })
            .collect();
        let report = MultiSimReport {
            policy: policy.name().to_string(),
            cores: m,
            resources: k,
            makespan,
            capacities,
            consumed_units,
            wasted_units_per_step,
            utilization,
            per_core,
        };
        crate::obs::record_multi_report(&report);
        Ok(report)
    }

    /// Runs the workload under every provided policy and returns the reports
    /// in the same order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] any policy produces.
    pub fn compare(
        &self,
        policies: &mut [Box<dyn OnlinePolicy>],
    ) -> Result<Vec<SimReport>, SimError> {
        policies
            .iter_mut()
            .map(|p| Ok(self.run(p.as_mut())?.report))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{
        standard_policies, EqualSharePolicy, GreedyBalancePolicy, ProportionalSharePolicy,
        RoundRobinPolicy,
    };
    use crate::task::Phase;
    use cr_core::ratio;
    use cr_instances::{generate_workload, TaskMix, WorkloadConfig};

    fn small_workload() -> Vec<Task> {
        vec![
            Task::new(
                "io0",
                vec![
                    Phase::unit(ratio(9, 10)),
                    Phase::unit(ratio(8, 10)),
                    Phase::unit(ratio(7, 10)),
                ],
            ),
            Task::new(
                "cpu0",
                vec![Phase::unit(ratio(1, 10)), Phase::unit(ratio(1, 10))],
            ),
            Task::new(
                "io1",
                vec![Phase::unit(ratio(6, 10)), Phase::unit(ratio(5, 10))],
            ),
        ]
    }

    #[test]
    fn simulation_completes_and_matches_schedule_semantics() {
        let sim = Simulator::new(small_workload());
        let outcome = sim.run(&mut GreedyBalancePolicy).unwrap();
        // The schedule the engine reports is feasible and has the same
        // makespan as the engine's own step count.
        let trace = outcome.schedule.trace(sim.instance()).unwrap();
        assert_eq!(trace.makespan(), outcome.report.makespan);
        assert!(outcome.report.makespan >= outcome.report.lower_bound);
        assert!(outcome.report.bus_utilization > 0.0);
        assert!(outcome
            .report
            .per_core
            .iter()
            .all(|c| c.completion_time > 0));
    }

    #[test]
    fn consumed_units_match_the_exact_trace() {
        let sim = Simulator::new(small_workload());
        for mut policy in standard_policies() {
            let outcome = sim.run(policy.as_mut()).unwrap();
            let trace = outcome.schedule.trace(sim.instance()).unwrap();
            let capacity = outcome.report.capacity;
            // The engine's unit accounting equals the exact rational trace:
            // Σ_t consumed(t) == consumed_units / capacity …
            let traced: cr_core::Ratio = (0..trace.num_steps())
                .map(|t| trace.consumed_total(t))
                .sum();
            assert_eq!(
                traced,
                cr_core::Ratio::new(
                    i128::from(outcome.report.consumed_units),
                    i128::from(capacity)
                ),
                "{}",
                outcome.report.policy
            );
            // … and the per-step waste series complements it exactly.
            assert_eq!(
                outcome.report.wasted_units_per_step.len(),
                outcome.report.makespan
            );
            let wasted: u64 = outcome.report.wasted_units_per_step.iter().sum();
            assert_eq!(
                wasted + outcome.report.consumed_units,
                capacity * outcome.report.makespan as u64
            );
        }
    }

    #[test]
    fn empty_tasks_complete_before_the_first_step() {
        let tasks = vec![
            Task::new("idle", vec![]),
            Task::new("busy", vec![Phase::unit(ratio(1, 2))]),
        ];
        let sim = Simulator::new(tasks);
        let outcome = sim.run(&mut GreedyBalancePolicy).unwrap();
        assert_eq!(outcome.report.makespan, 1);
        assert_eq!(outcome.report.per_core[0].completion_time, 0);
        assert_eq!(outcome.report.per_core[1].completion_time, 1);
        assert!((outcome.report.per_core[0].slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_balance_is_no_worse_than_equal_share_here() {
        let sim = Simulator::new(small_workload());
        let greedy = sim.run(&mut GreedyBalancePolicy).unwrap().report;
        let equal = sim.run(&mut EqualSharePolicy).unwrap().report;
        assert!(greedy.makespan <= equal.makespan);
    }

    #[test]
    fn round_robin_respects_phase_barriers() {
        let sim = Simulator::new(small_workload());
        let rr = sim.run(&mut RoundRobinPolicy).unwrap().report;
        // Round robin is a 2-approximation; with the lower bound as proxy for
        // the optimum the ratio must stay below 2 (plus 1 step of slack for
        // the ceiling effects on this tiny workload).
        assert!(rr.makespan <= 2 * rr.lower_bound + 1);
    }

    #[test]
    fn policy_comparison_covers_all_policies() {
        let cfg = WorkloadConfig {
            cores: 6,
            phases_per_task: 4,
            mix: TaskMix::Mixed,
            ..Default::default()
        };
        let sim = Simulator::from_instance(&generate_workload(&cfg, 7));
        let mut policies = standard_policies();
        let reports = sim.compare(&mut policies).unwrap();
        assert_eq!(reports.len(), policies.len());
        for r in &reports {
            assert!(r.makespan >= r.lower_bound);
            assert!(r.bus_utilization <= 1.0 + 1e-9);
        }
        // GreedyBalance is within its proven factor of the lower bound.
        let greedy = &reports[0];
        assert!(greedy.normalized_makespan() <= 2.0 - 1.0 / cfg.cores as f64 + 1e-9);
    }

    #[test]
    fn proportional_share_does_not_starve_tiny_demands() {
        // Regression test for the SHARE_GRID starvation bug class: one core
        // with full-bus phases next to cores with microscopic demands.  The
        // old fixed-grid floor gave the tiny cores zero shares until the
        // huge core finished; the exact largest-remainder split serves them
        // immediately, so nobody records a starved step.
        let tiny = ratio(1, 1_000_000);
        let mut tasks = vec![Task::new("huge", vec![Phase::unit(cr_core::Ratio::ONE); 3])];
        for i in 0..4 {
            tasks.push(Task::new(format!("tiny{i}"), vec![Phase::unit(tiny)]));
        }
        let sim = Simulator::new(tasks);
        let report = sim.run(&mut ProportionalSharePolicy).unwrap().report;
        assert_eq!(report.makespan, 4);
        for core in &report.per_core {
            assert_eq!(core.starved_steps, 0, "{} was starved", core.name);
            if core.name.starts_with("tiny") {
                assert_eq!(core.completion_time, 1);
            }
        }
    }

    #[test]
    fn starving_policies_are_detected() {
        struct DoNothing;
        impl OnlinePolicy for DoNothing {
            fn name(&self) -> &'static str {
                "DoNothing"
            }
            fn allocate(&mut self, _capacity: u64, cores: &[CoreView]) -> Vec<u64> {
                vec![0; cores.len()]
            }
        }
        let sim = Simulator::new(small_workload()).with_step_limit(16);
        let err = sim.run(&mut DoNothing).unwrap_err();
        assert_eq!(
            err,
            SimError::StepLimit {
                policy: "DoNothing".to_string(),
                limit: 16
            }
        );
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn cancelled_simulation_stops_early() {
        let sim = Simulator::new(small_workload());
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            sim.run_cancellable(&mut GreedyBalancePolicy, &token)
                .unwrap_err(),
            SimError::Cancelled {
                reason: CancelReason::Cancelled
            }
        );
        // A live token reproduces the plain run exactly.
        let live = CancelToken::new();
        let cancellable = sim
            .run_cancellable(&mut GreedyBalancePolicy, &live)
            .unwrap();
        let plain = sim.run(&mut GreedyBalancePolicy).unwrap();
        assert_eq!(cancellable.report.makespan, plain.report.makespan);
        assert_eq!(cancellable.schedule, plain.schedule);
    }

    fn two_resource_instance() -> cr_core::Instance {
        // Cheap on the bus, but the second layer is the bottleneck: both
        // cores want 3/4 of resource 1 per step.
        cr_core::InstanceBuilder::new()
            .processor([ratio(1, 10), ratio(1, 10)])
            .processor([ratio(1, 10)])
            .extra_layer([vec![ratio(3, 4), ratio(3, 4)], vec![ratio(3, 4)]])
            .build()
    }

    #[test]
    fn multi_run_accounts_every_layer_exactly() {
        let sim = Simulator::from_instance(&two_resource_instance());
        for mut policy in standard_policies() {
            let report = sim.run_multi(policy.as_mut()).unwrap();
            assert_eq!(report.resources, 2);
            assert_eq!(report.cores, 2);
            assert!(report.makespan >= 3, "{}", report.policy);
            for r in 0..2 {
                assert_eq!(
                    report.wasted_units_per_step[r].len(),
                    report.makespan,
                    "{} resource {r}",
                    report.policy
                );
                assert_eq!(
                    report.consumed_units[r] + report.wasted_units_total(r),
                    report.capacities[r] * report.makespan as u64,
                    "{} resource {r}",
                    report.policy
                );
                assert!(report.utilization[r] <= 1.0 + 1e-9);
            }
            // The second layer carries 9/4 of unit workload vs 3/10 on the
            // base layer: it is the binding resource for every policy.
            assert_eq!(report.bottleneck_resource(), 1, "{}", report.policy);
            assert!(report.per_core.iter().all(|c| c.completion_time > 0));
        }
    }

    #[test]
    fn binding_extra_layer_slows_the_run_down() {
        let multi = two_resource_instance();
        let base_only = cr_core::Instance::unit_from_requirements(vec![
            vec![ratio(1, 10), ratio(1, 10)],
            vec![ratio(1, 10)],
        ]);
        let with_layer = Simulator::from_instance(&multi)
            .run_multi(&mut GreedyBalancePolicy)
            .unwrap();
        let without = Simulator::from_instance(&base_only)
            .run_multi(&mut GreedyBalancePolicy)
            .unwrap();
        assert!(
            with_layer.makespan > without.makespan,
            "{} vs {}",
            with_layer.makespan,
            without.makespan
        );
    }

    #[test]
    fn single_resource_multi_run_matches_the_scalar_run() {
        let sim = Simulator::new(small_workload());
        for mut policy in standard_policies() {
            let scalar = sim.run(policy.as_mut()).unwrap().report;
            let multi = sim.run_multi(policy.as_mut()).unwrap();
            assert_eq!(multi.resources, 1, "{}", scalar.policy);
            assert_eq!(multi.makespan, scalar.makespan, "{}", scalar.policy);
            assert_eq!(multi.capacities, vec![scalar.capacity]);
            assert_eq!(multi.consumed_units, vec![scalar.consumed_units]);
            assert_eq!(
                multi.wasted_units_per_step,
                vec![scalar.wasted_units_per_step.clone()]
            );
            assert_eq!(multi.per_core, scalar.per_core);
        }
    }

    #[test]
    fn multi_run_detects_starving_policies_and_cancellation() {
        struct DoNothing;
        impl OnlinePolicy for DoNothing {
            fn name(&self) -> &'static str {
                "DoNothing"
            }
            fn allocate(&mut self, _capacity: u64, cores: &[CoreView]) -> Vec<u64> {
                vec![0; cores.len()]
            }
        }
        let inst = two_resource_instance();
        let sim = Simulator::from_instance(&inst).with_step_limit(8);
        assert_eq!(
            sim.run_multi(&mut DoNothing).unwrap_err(),
            SimError::StepLimit {
                policy: "DoNothing".to_string(),
                limit: 8
            }
        );
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            Simulator::from_instance(&inst)
                .run_multi_cancellable(&mut GreedyBalancePolicy, &token)
                .unwrap_err(),
            SimError::Cancelled {
                reason: CancelReason::Cancelled
            }
        );
    }

    #[test]
    fn grid_overflow_is_reported_not_panicked() {
        // Pairwise-coprime huge prime denominators overflow the u64 grid.
        let primes: [i128; 4] = [4_294_967_291, 4_294_967_279, 4_294_967_231, 4_294_967_197];
        let tasks = vec![Task::new(
            "huge-grid",
            primes.map(|p| Phase::unit(ratio(1, p))).to_vec(),
        )];
        let sim = Simulator::new(tasks);
        assert_eq!(
            sim.run(&mut GreedyBalancePolicy).unwrap_err(),
            SimError::GridOverflow
        );
    }
}
