//! Keeps `docs/WIRE.md` honest: the protocol spec must document every
//! stable error `kind` string the serving surface can emit.

use cr_algos::solver::SolveError;
use cr_service::wire::WIRE_ERROR_KINDS;

fn wire_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/WIRE.md");
    std::fs::read_to_string(path).expect("docs/WIRE.md exists at the workspace root")
}

#[test]
fn wire_md_documents_every_solver_error_kind() {
    let doc = wire_md();
    for kind in SolveError::ALL_KINDS {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "docs/WIRE.md does not document the solver error kind `{kind}`"
        );
    }
}

#[test]
fn wire_md_documents_every_transport_error_kind() {
    let doc = wire_md();
    for kind in WIRE_ERROR_KINDS {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "docs/WIRE.md does not document the transport error kind `{kind}`"
        );
    }
}

#[test]
fn wire_md_documents_every_stats_frame_field() {
    // The stats frame is rendered by zipping STATS_FIELDS with the
    // snapshot values, so this pin keeps the spec's field list glued to
    // the one the server actually emits.
    let doc = wire_md();
    for field in cr_service::net::STATS_FIELDS {
        assert!(
            doc.contains(&format!("\"{field}\":N")),
            "docs/WIRE.md does not document the stats frame field `{field}`"
        );
    }
}

#[test]
fn wire_md_documents_the_metrics_control_frame() {
    let doc = wire_md();
    assert!(
        doc.contains(r#"`{"control": "metrics"}`"#),
        "docs/WIRE.md does not document the metrics control frame"
    );
    for shape in [
        r#"{"control":"metrics","metrics":N,"spans":M}"#,
        r#""total_ns""#,
    ] {
        assert!(
            doc.contains(shape),
            "docs/WIRE.md does not document the metrics dump shape `{shape}`"
        );
    }
}

#[test]
fn solver_and_transport_vocabularies_do_not_overlap() {
    for kind in WIRE_ERROR_KINDS {
        assert!(
            !SolveError::ALL_KINDS.contains(&kind),
            "transport kind `{kind}` shadows a solver kind"
        );
    }
}
