//! Fixture solver vocabulary with an undocumented kind.

/// Stand-in for the real error enum.
pub struct SolveError;

impl SolveError {
    /// `deadline_exceeded` never made it into the WIRE.md tables.
    pub const ALL_KINDS: [&'static str; 2] = ["infeasible", "deadline_exceeded"];
}
