//! E1 — regenerates Figure 1: the scheduling hypergraph of the greedy
//! "finish as many jobs as possible" schedule on the running example, its
//! edges, connected components and component classes.

#![forbid(unsafe_code)]

use cr_algos::{Scheduler, SmallestRequirementFirst};
use cr_core::{bounds, SchedulingGraph};
use cr_instances::figure1_instance;
use cr_viz::{render_components, render_instance, render_schedule};

fn main() {
    let instance = figure1_instance();
    println!("E1 / Figure 1 — scheduling hypergraph of the running example\n");
    println!("{}", render_instance(&instance));

    // Figure 1 uses the schedule that prioritizes jobs in order of increasing
    // remaining resource requirement.
    let scheduler = SmallestRequirementFirst::new();
    let schedule = scheduler.schedule(&instance);
    let trace = schedule.trace(&instance).expect("feasible schedule");
    println!("{}", render_schedule(&instance, &trace));

    let graph = SchedulingGraph::build(&instance, &trace);
    println!("{}", render_components(&graph));

    for (t, edge) in graph.edges().iter().enumerate() {
        let labels: Vec<String> = edge
            .iter()
            .map(|id| format!("({},{})", id.processor, id.index))
            .collect();
        println!("  e{} = {{ {} }}", t + 1, labels.join(", "));
    }

    println!(
        "\npaper: 6 edges in 3 components — measured: {} edges in {} components",
        graph.num_edges(),
        graph.num_components()
    );
    println!(
        "Lemma 2 (|C_k| ≥ #_k + q_k − 1 for all but the last component): {}",
        graph.satisfies_lemma2()
    );
    println!(
        "Lemma 5 bound: {}   Lemma 6 bound: {}   trivial bound: {}",
        bounds::component_bound(&graph),
        bounds::class_bound_steps(&graph, instance.processors()),
        bounds::trivial_lower_bound(&instance)
    );
}
