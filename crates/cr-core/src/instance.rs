//! Problem instances of the CRSharing problem.
//!
//! An [`Instance`] is a set of `m` processors, each with a fixed, ordered
//! sequence of [`Job`]s.  The scheduler may *only* decide how the shared
//! continuous resource is split among the processors at each discrete time
//! step; job-to-processor assignment and per-processor job order are part of
//! the input (this is the defining restriction of the paper's model compared
//! to general discrete-continuous scheduling).

use crate::error::InstanceError;
use crate::job::{Job, JobId};
use crate::rational::Ratio;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A CRSharing problem instance.
///
/// ## Multi-resource instances
///
/// The paper's base model shares **one** continuous resource; this
/// representation optionally carries `k − 1` *extra* resource layers so the
/// whole pipeline can speak the `k`-resource generalization (memory
/// bandwidth, bus, cache slices, …).  Job `(i, j)` then has the requirement
/// vector `(r⁰_ij, r¹_ij, …)`: layer `0` is [`Job::requirement`] and layer
/// `r ≥ 1` is `extra[r − 1][i][j]`, all sharing the job's single volume.
/// `k = 1` instances keep `extra` empty and are represented (and
/// serialized) exactly as before the generalization — the scalar model is
/// the fast path, not a special case bolted on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// `jobs[i]` is the ordered job sequence of processor `i`.
    jobs: Vec<Vec<Job>>,
    /// `extra[r − 1][i][j]` is the requirement of job `(i, j)` on resource
    /// `r`; empty for single-resource instances.
    extra: Vec<Vec<Vec<Ratio>>>,
}

// The vendored serde derive has no `#[serde(default)]` support, and the
// multi-resource extension must keep old single-resource JSON parsing (and
// old byte-identical serialization for `k = 1`), so both directions are
// spelled out by hand: `extra` is omitted when empty and optional on input.
impl Serialize for Instance {
    fn serialize(&self) -> Value {
        let mut fields = vec![("jobs".to_string(), self.jobs.serialize())];
        if !self.extra.is_empty() {
            fields.push(("extra".to_string(), self.extra.serialize()));
        }
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for Instance {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let jobs: Vec<Vec<Job>> = serde::de_field(value, "jobs")?;
        let extra: Vec<Vec<Vec<Ratio>>> = match value.get("extra") {
            Some(v) => Deserialize::deserialize(v)?,
            None => Vec::new(),
        };
        // Like the derived impl this performs no model validation; consumers
        // that accept untrusted input re-validate via `Instance::new` /
        // `Instance::with_resources` (see `cr-service`'s sanitizer).
        Ok(Instance { jobs, extra })
    }
}

impl Instance {
    /// Creates an instance from explicit per-processor job sequences and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no processors, a requirement lies
    /// outside `[0, 1]`, or a volume is not strictly positive.  Processors
    /// with empty job sequences are allowed (they are simply never active).
    pub fn new(jobs: Vec<Vec<Job>>) -> Result<Self, InstanceError> {
        if jobs.is_empty() {
            return Err(InstanceError::NoProcessors);
        }
        for (i, row) in jobs.iter().enumerate() {
            for (j, job) in row.iter().enumerate() {
                if !job.requirement.in_unit_interval() {
                    return Err(InstanceError::RequirementOutOfRange {
                        job: JobId::new(i, j),
                        requirement: job.requirement,
                    });
                }
                if !job.volume.is_positive() {
                    return Err(InstanceError::NonPositiveVolume {
                        job: JobId::new(i, j),
                        volume: job.volume,
                    });
                }
            }
        }
        Ok(Instance {
            jobs,
            extra: Vec::new(),
        })
    }

    /// Creates a **multi-resource** instance: the base job matrix plus
    /// `k − 1` extra resource layers, where `extra[r − 1][i][j]` is the
    /// requirement of job `(i, j)` on resource `r` (layer `0` being the
    /// jobs' own requirements).  An empty `extra` yields a plain
    /// single-resource instance.
    ///
    /// # Errors
    ///
    /// Returns an error if the base matrix is invalid (see
    /// [`Instance::new`]), a layer does not mirror the job matrix shape, or
    /// an extra requirement lies outside `[0, 1]`.
    pub fn with_resources(
        jobs: Vec<Vec<Job>>,
        extra: Vec<Vec<Vec<Ratio>>>,
    ) -> Result<Self, InstanceError> {
        let mut instance = Instance::new(jobs)?;
        for (e, layer) in extra.iter().enumerate() {
            let resource = e + 1;
            if layer.len() != instance.processors() {
                return Err(InstanceError::ResourceLayerProcessorMismatch {
                    resource,
                    expected: instance.processors(),
                    found: layer.len(),
                });
            }
            for (i, row) in layer.iter().enumerate() {
                if row.len() != instance.jobs_on(i) {
                    return Err(InstanceError::ResourceLayerJobsMismatch {
                        resource,
                        processor: i,
                        expected: instance.jobs_on(i),
                        found: row.len(),
                    });
                }
                for (j, &requirement) in row.iter().enumerate() {
                    if !requirement.in_unit_interval() {
                        return Err(InstanceError::ResourceRequirementOutOfRange {
                            resource,
                            job: JobId::new(i, j),
                            requirement,
                        });
                    }
                }
            }
        }
        instance.extra = extra;
        Ok(instance)
    }

    /// Builds a **unit-size multi-resource** instance from per-resource
    /// requirement grids: `layers[r][i][j]` is the requirement of job
    /// `(i, j)` on resource `r`.  Layer `0` defines the jobs themselves
    /// (unit volume); later layers become extra resources.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::NoProcessors`] when `layers` is empty and
    /// any validation error of [`Instance::with_resources`].
    pub fn multi_unit_from_requirements(
        mut layers: Vec<Vec<Vec<Ratio>>>,
    ) -> Result<Self, InstanceError> {
        if layers.is_empty() {
            return Err(InstanceError::NoProcessors);
        }
        let extra = layers.split_off(1);
        let jobs = layers
            .remove(0)
            .into_iter()
            .map(|row| row.into_iter().map(Job::unit).collect())
            .collect();
        Instance::with_resources(jobs, extra)
    }

    /// Builds a **unit-size** instance from per-processor requirement lists.
    ///
    /// # Panics
    ///
    /// Panics if validation fails; use [`Instance::new`] for fallible
    /// construction.
    #[must_use]
    pub fn unit_from_requirements(reqs: Vec<Vec<Ratio>>) -> Self {
        let jobs = reqs
            .into_iter()
            .map(|row| row.into_iter().map(Job::unit).collect())
            .collect();
        Instance::new(jobs).expect("invalid unit-size instance")
    }

    /// Builds a unit-size instance from integer percentages, matching the
    /// notation of the paper's figures (e.g. Figure 1 uses rows
    /// `[20, 10, 10, 10]`, `[50, 55, 90, 55, 10]`, `[50, 40, 95]`).
    ///
    /// # Panics
    ///
    /// Panics if a percentage lies outside `[0, 100]`.
    #[must_use]
    pub fn unit_from_percentages(rows: &[&[i64]]) -> Self {
        let reqs = rows
            .iter()
            .map(|row| row.iter().map(|&p| Ratio::from_percent(p)).collect())
            .collect();
        Instance::unit_from_requirements(reqs)
    }

    /// Number of processors `m`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.jobs.len()
    }

    /// Number of jobs `nᵢ` on processor `i`.
    #[must_use]
    pub fn jobs_on(&self, processor: usize) -> usize {
        self.jobs[processor].len()
    }

    /// The maximum chain length `n = maxᵢ nᵢ`.
    #[must_use]
    pub fn max_chain_length(&self) -> usize {
        self.jobs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of jobs over all processors.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }

    /// Returns the job `(i, j)`.
    #[must_use]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.processor][id.index]
    }

    /// Returns the job sequence of processor `i`.
    #[must_use]
    pub fn processor_jobs(&self, processor: usize) -> &[Job] {
        &self.jobs[processor]
    }

    /// Iterates over all `(JobId, &Job)` pairs in processor-major order.
    pub fn iter_jobs(&self) -> impl Iterator<Item = (JobId, &Job)> + '_ {
        self.jobs.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(move |(j, job)| (JobId::new(i, j), job))
        })
    }

    /// `M_j`: the set of processors having at least `j + 1` jobs (i.e. having
    /// a job at zero-based position `j`).  Matches the paper's `M_j` for
    /// one-based `j = j_zero_based + 1`.
    #[must_use]
    pub fn machines_with_job(&self, index: usize) -> Vec<usize> {
        (0..self.processors())
            .filter(|&i| self.jobs_on(i) > index)
            .collect()
    }

    /// Whether all jobs have unit size (the case analyzed by the paper).
    #[must_use]
    pub fn is_unit_size(&self) -> bool {
        self.iter_jobs().all(|(_, job)| job.is_unit())
    }

    /// Total workload `Σ_ij r_ij · p_ij` in the alternative model
    /// interpretation — the left-hand side of Observation 1.
    #[must_use]
    pub fn total_workload(&self) -> Ratio {
        self.iter_jobs().map(|(_, job)| job.workload()).sum()
    }

    /// Workload of column `j` restricted to `M_j`, i.e. `Σ_{i ∈ M_j} r_ij·p_ij`.
    /// Used by the RoundRobin analysis (Theorem 3).
    #[must_use]
    pub fn column_workload(&self, index: usize) -> Ratio {
        self.machines_with_job(index)
            .into_iter()
            .map(|i| self.jobs[i][index].workload())
            .sum()
    }

    /// The largest single resource requirement in the instance.
    #[must_use]
    pub fn max_requirement(&self) -> Ratio {
        self.iter_jobs()
            .map(|(_, job)| job.requirement)
            .max()
            .unwrap_or(Ratio::ZERO)
    }

    /// Number of shared resources `k` (`1` plus the number of extra
    /// layers).  Single-resource instances — the paper's model and the fast
    /// path everywhere — report `1`.
    #[must_use]
    pub fn resources(&self) -> usize {
        1 + self.extra.len()
    }

    /// The extra resource layers (`extra[r − 1][i][j]`); empty for
    /// single-resource instances.
    #[must_use]
    pub fn extra_layers(&self) -> &[Vec<Vec<Ratio>>] {
        &self.extra
    }

    /// Requirement of job `id` on resource `resource` (`0` is the base
    /// resource, i.e. [`Job::requirement`]).
    #[must_use]
    pub fn requirement_on(&self, resource: usize, id: JobId) -> Ratio {
        if resource == 0 {
            self.job(id).requirement
        } else {
            self.extra[resource - 1][id.processor][id.index]
        }
    }

    /// Total workload `Σ_ij r^resource_ij · p_ij` on one resource — the
    /// per-resource generalization of [`Instance::total_workload`].
    #[must_use]
    pub fn total_workload_on(&self, resource: usize) -> Ratio {
        self.iter_jobs()
            .map(|(id, job)| self.requirement_on(resource, id) * job.volume)
            .sum()
    }

    /// The largest requirement on one resource.
    #[must_use]
    pub fn max_requirement_on(&self, resource: usize) -> Ratio {
        self.iter_jobs()
            .map(|(id, _)| self.requirement_on(resource, id))
            .max()
            .unwrap_or(Ratio::ZERO)
    }

    /// Consumes the instance and returns the raw job matrix, discarding any
    /// extra resource layers.
    #[must_use]
    pub fn into_jobs(self) -> Vec<Vec<Job>> {
        self.jobs
    }

    /// The single-resource projection onto `resource`: an instance whose
    /// job requirements are the chosen layer (volumes kept).  Used by the
    /// per-resource lower bounds and the layer-wise heuristics.
    #[must_use]
    pub fn project_resource(&self, resource: usize) -> Instance {
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(|(j, job)| {
                        Job::new(self.requirement_on(resource, JobId::new(i, j)), job.volume)
                    })
                    .collect()
            })
            .collect();
        Instance {
            jobs,
            extra: Vec::new(),
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CRSharing instance: m = {}, n = {}, total workload = {}",
            self.processors(),
            self.max_chain_length(),
            self.total_workload()
        )?;
        if self.resources() > 1 {
            writeln!(f, "  shared resources: k = {}", self.resources())?;
        }
        for (i, row) in self.jobs.iter().enumerate() {
            write!(f, "  p{i}:")?;
            for job in row {
                if job.is_unit() {
                    write!(f, " {}", job.requirement)?;
                } else {
                    write!(f, " {}x{}", job.requirement, job.volume)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Incremental builder for instances, convenient in generators and tests.
///
/// # Examples
///
/// ```
/// use cr_core::{InstanceBuilder, Ratio};
///
/// let inst = InstanceBuilder::new()
///     .processor([Ratio::new(1, 2), Ratio::new(1, 4)])
///     .processor([Ratio::ONE])
///     .build();
/// assert_eq!(inst.processors(), 2);
/// assert_eq!(inst.total_jobs(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct InstanceBuilder {
    jobs: Vec<Vec<Job>>,
    extra: Vec<Vec<Vec<Ratio>>>,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processor with the given unit-size job requirements.
    #[must_use]
    pub fn processor<I: IntoIterator<Item = Ratio>>(mut self, requirements: I) -> Self {
        self.jobs
            .push(requirements.into_iter().map(Job::unit).collect());
        self
    }

    /// Adds a processor with explicit jobs (arbitrary volumes).
    #[must_use]
    pub fn processor_jobs<I: IntoIterator<Item = Job>>(mut self, jobs: I) -> Self {
        self.jobs.push(jobs.into_iter().collect());
        self
    }

    /// Adds an empty processor (no jobs).
    #[must_use]
    pub fn empty_processor(mut self) -> Self {
        self.jobs.push(Vec::new());
        self
    }

    /// Adds an extra resource layer: `rows[i][j]` is the requirement of job
    /// `(i, j)` on the new resource.  The shape must mirror the processors
    /// added so far (checked at `build` time).
    #[must_use]
    pub fn extra_layer<I, R>(mut self, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = Ratio>,
    {
        self.extra
            .push(rows.into_iter().map(|r| r.into_iter().collect()).collect());
        self
    }

    /// Finalizes the instance.
    ///
    /// # Panics
    ///
    /// Panics if validation fails.
    #[must_use]
    pub fn build(self) -> Instance {
        Instance::with_resources(self.jobs, self.extra).expect("invalid instance")
    }

    /// Finalizes the instance, returning validation errors.
    pub fn try_build(self) -> Result<Instance, InstanceError> {
        Instance::with_resources(self.jobs, self.extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::ratio;

    fn fig1_instance() -> Instance {
        Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]])
    }

    #[test]
    fn construction_and_stats() {
        let inst = fig1_instance();
        assert_eq!(inst.processors(), 3);
        assert_eq!(inst.jobs_on(0), 4);
        assert_eq!(inst.jobs_on(1), 5);
        assert_eq!(inst.jobs_on(2), 3);
        assert_eq!(inst.max_chain_length(), 5);
        assert_eq!(inst.total_jobs(), 12);
        assert!(inst.is_unit_size());
        // 0.2+0.1+0.1+0.1 + 0.5+0.55+0.9+0.55+0.1 + 0.5+0.4+0.95 = 4.95
        assert_eq!(inst.total_workload(), ratio(495, 100));
    }

    #[test]
    fn machines_with_job_matches_mj() {
        let inst = fig1_instance();
        assert_eq!(inst.machines_with_job(0), vec![0, 1, 2]);
        assert_eq!(inst.machines_with_job(2), vec![0, 1, 2]);
        assert_eq!(inst.machines_with_job(3), vec![0, 1]);
        assert_eq!(inst.machines_with_job(4), vec![1]);
        assert!(inst.machines_with_job(5).is_empty());
    }

    #[test]
    fn column_workload() {
        let inst = fig1_instance();
        assert_eq!(inst.column_workload(0), ratio(120, 100));
        assert_eq!(inst.column_workload(4), ratio(10, 100));
    }

    #[test]
    fn validation_rejects_bad_requirement() {
        let err = Instance::new(vec![vec![Job::unit(ratio(3, 2))]]).unwrap_err();
        assert!(matches!(err, InstanceError::RequirementOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_bad_volume() {
        let err = Instance::new(vec![vec![Job::new(ratio(1, 2), Ratio::ZERO)]]).unwrap_err();
        assert!(matches!(err, InstanceError::NonPositiveVolume { .. }));
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(matches!(
            Instance::new(vec![]).unwrap_err(),
            InstanceError::NoProcessors
        ));
    }

    #[test]
    fn empty_processor_is_allowed() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2)])
            .empty_processor()
            .build();
        assert_eq!(inst.processors(), 2);
        assert_eq!(inst.jobs_on(1), 0);
        assert_eq!(inst.max_chain_length(), 1);
    }

    #[test]
    fn builder_with_volumes() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 2), ratio(3, 1))])
            .processor([ratio(1, 4)])
            .build();
        assert!(!inst.is_unit_size());
        assert_eq!(inst.total_workload(), ratio(3, 2) + ratio(1, 4));
    }

    #[test]
    fn iter_jobs_order() {
        let inst = fig1_instance();
        let ids: Vec<JobId> = inst.iter_jobs().map(|(id, _)| id).collect();
        assert_eq!(ids[0], JobId::new(0, 0));
        assert_eq!(ids[4], JobId::new(1, 0));
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn display_contains_rows() {
        let inst = fig1_instance();
        let text = inst.to_string();
        assert!(text.contains("p0:"));
        assert!(text.contains("p2:"));
        assert!(text.contains("m = 3"));
    }

    #[test]
    fn serde_roundtrip() {
        let inst = fig1_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn max_requirement() {
        assert_eq!(fig1_instance().max_requirement(), ratio(95, 100));
    }

    fn two_resource_instance() -> Instance {
        Instance::multi_unit_from_requirements(vec![
            vec![vec![ratio(1, 2), ratio(1, 4)], vec![ratio(3, 4)]],
            vec![vec![ratio(1, 10), ratio(9, 10)], vec![Ratio::ZERO]],
        ])
        .unwrap()
    }

    #[test]
    fn multi_resource_construction_and_accessors() {
        let inst = two_resource_instance();
        assert_eq!(inst.resources(), 2);
        assert_eq!(inst.extra_layers().len(), 1);
        assert_eq!(inst.requirement_on(0, JobId::new(0, 1)), ratio(1, 4));
        assert_eq!(inst.requirement_on(1, JobId::new(0, 1)), ratio(9, 10));
        assert_eq!(inst.total_workload_on(0), inst.total_workload());
        assert_eq!(inst.total_workload_on(1), ratio(1, 1));
        assert_eq!(inst.max_requirement_on(1), ratio(9, 10));
        assert!(inst.to_string().contains("k = 2"));
    }

    #[test]
    fn single_resource_instances_report_one_resource() {
        let inst = fig1_instance();
        assert_eq!(inst.resources(), 1);
        assert!(inst.extra_layers().is_empty());
        assert_eq!(inst.total_workload_on(0), inst.total_workload());
        assert!(!inst.to_string().contains("k ="));
    }

    #[test]
    fn multi_resource_validation_rejects_bad_shapes() {
        // Layer with the wrong number of processor rows.
        let err = Instance::multi_unit_from_requirements(vec![
            vec![vec![ratio(1, 2)], vec![ratio(1, 4)]],
            vec![vec![ratio(1, 2)]],
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ResourceLayerProcessorMismatch {
                resource: 1,
                expected: 2,
                found: 1
            }
        ));
        // Row with the wrong number of job entries.
        let err = Instance::multi_unit_from_requirements(vec![
            vec![vec![ratio(1, 2), ratio(1, 4)]],
            vec![vec![ratio(1, 2)]],
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ResourceLayerJobsMismatch {
                resource: 1,
                processor: 0,
                expected: 2,
                found: 1
            }
        ));
        // Out-of-range extra requirement.
        let err = Instance::multi_unit_from_requirements(vec![
            vec![vec![ratio(1, 2)]],
            vec![vec![ratio(3, 2)]],
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ResourceRequirementOutOfRange { resource: 1, .. }
        ));
        assert!(Instance::multi_unit_from_requirements(vec![]).is_err());
    }

    #[test]
    fn builder_extra_layer() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 4)])
            .processor([ratio(3, 4)])
            .extra_layer([vec![ratio(1, 10), ratio(9, 10)], vec![Ratio::ZERO]])
            .build();
        assert_eq!(inst, two_resource_instance());
    }

    #[test]
    fn single_resource_serialization_is_unchanged() {
        // `k = 1` must serialize to exactly the pre-multi-resource shape
        // (no `extra` key), and old JSON without the key must parse.
        let inst = fig1_instance();
        let json = serde_json::to_string(&inst).unwrap();
        assert!(!json.contains("extra"));
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn multi_resource_serde_roundtrip() {
        let inst = two_resource_instance();
        let json = serde_json::to_string(&inst).unwrap();
        assert!(json.contains("extra"));
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn project_resource_selects_the_layer() {
        let inst = two_resource_instance();
        let base = inst.project_resource(0);
        assert_eq!(base.resources(), 1);
        assert_eq!(base.job(JobId::new(0, 0)).requirement, ratio(1, 2));
        let second = inst.project_resource(1);
        assert_eq!(second.job(JobId::new(0, 1)).requirement, ratio(9, 10));
        assert_eq!(second.job(JobId::new(1, 0)).requirement, Ratio::ZERO);
        // Volumes are preserved by projection.
        assert!(second.is_unit_size());
    }
}
