//! The [`Scheduler`] abstraction shared by all algorithms in this crate.

use cr_core::{Instance, Schedule};

/// An offline CRSharing scheduler: given a full problem instance it produces
/// a feasible resource-assignment schedule.
///
/// Every algorithm of the paper (RoundRobin, GreedyBalance, the exact
/// algorithms) and every baseline heuristic implements this trait, which lets
/// the experiment harness sweep over algorithms generically.
pub trait Scheduler {
    /// A short, stable, human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Computes a feasible schedule for `instance`.
    ///
    /// Implementations must return a schedule that completes every job and
    /// never overuses the resource; this is enforced by the
    /// `cr_core::ScheduleBuilder` they are built on.
    fn schedule(&self, instance: &Instance) -> Schedule;

    /// Convenience: the makespan of the schedule this algorithm produces.
    fn makespan(&self, instance: &Instance) -> usize {
        let schedule = self.schedule(instance);
        schedule
            .makespan(instance)
            .expect("scheduler produced an infeasible schedule")
    }
}

/// A boxed scheduler, convenient for heterogeneous algorithm line-ups in the
/// benchmark harness.
pub type BoxedScheduler = Box<dyn Scheduler + Send + Sync>;

/// Returns the full line-up of polynomial-time schedulers implemented in this
/// crate (the exact exponential/DP algorithms are excluded because they do
/// not scale to arbitrary instances).
#[must_use]
pub fn standard_line_up() -> Vec<BoxedScheduler> {
    vec![
        Box::new(crate::greedy_balance::GreedyBalance::new()),
        Box::new(crate::round_robin::RoundRobin::new()),
        Box::new(crate::heuristics::EqualShare::new()),
        Box::new(crate::heuristics::ProportionalShare::new()),
        Box::new(crate::heuristics::LargestRequirementFirst::new()),
        Box::new(crate::heuristics::SmallestRequirementFirst::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::Ratio;

    #[test]
    fn line_up_contains_paper_algorithms() {
        let names: Vec<&str> = standard_line_up().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"GreedyBalance"));
        assert!(names.contains(&"RoundRobin"));
        assert!(names.len() >= 4);
    }

    #[test]
    fn all_line_up_schedulers_produce_feasible_schedules() {
        let inst = Instance::unit_from_percentages(&[&[60, 30, 10], &[50, 50], &[90]]);
        for s in standard_line_up() {
            let schedule = s.schedule(&inst);
            let trace = schedule.trace(&inst).unwrap();
            assert!(trace.makespan() >= 2, "{} too fast", s.name());
            assert!(
                Ratio::from_integer(trace.makespan() as i64) >= inst.total_workload(),
                "{} beats Observation 1",
                s.name()
            );
        }
    }
}
