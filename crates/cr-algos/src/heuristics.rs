//! Baseline heuristics.
//!
//! The discrete-continuous scheduling literature surveyed in Section 2 of the
//! paper mostly relies on heuristics without worst-case guarantees.  The
//! heuristics in this module play that role in the experiment harness: they
//! are natural resource-arbitration policies a practitioner might deploy on a
//! shared-bus many-core, and the benchmarks compare them against the paper's
//! algorithms.
//!
//! * [`EqualShare`] — split the resource uniformly among active processors,
//!   ignoring requirements entirely (wastes whatever a job cannot absorb).
//! * [`ProportionalShare`] — split the resource proportionally to the active
//!   jobs' current step demands.
//! * [`LargestRequirementFirst`] — serve active jobs in order of decreasing
//!   remaining requirement (a "clear the big rocks first" greedy).
//! * [`SmallestRequirementFirst`] — serve active jobs in order of increasing
//!   remaining requirement (maximizes the number of jobs finished per step;
//!   this is the schedule depicted in Figure 1 of the paper).
//!
//! # Exact splits on the scaled grid
//!
//! The splitting heuristics run on a
//! [`cr_core::ScaledScheduleBuilder`]: the resource is
//! a pool of `D` integer units (`D` = the instance's requirement/workload
//! denominator LCM), and uniform / demand-proportional splits are computed
//! exactly with deterministic largest-remainder rounding
//! ([`cr_core::scaled::largest_remainder_split`]).  Shares therefore always
//! sum to exactly one pool — no sliver is wasted, and a positive demand is
//! only ever given zero units when the whole pool went to other positive
//! demands.  (The previous implementation floored every share onto a fixed
//! `1/100 000` grid, which could quantize a small positive `demand/total` to
//! a *zero* share and starve a core indefinitely.)  Each heuristic retains a
//! `schedule_rational` reference implementation computing the identical
//! split in exact [`Ratio`] arithmetic, cross-checked by the
//! `proptest_scaled_sched` suite; it doubles as the fallback for instances
//! whose unit grid overflows `u64` (where it splits exactly, without grid
//! quantization, at the cost of growing denominators).

use crate::scaled_sched::serve_units_in_order;
use crate::traits::Scheduler;
use cr_core::scaled::{largest_remainder_split, largest_remainder_split_ratio, schedule_unit_grid};
use cr_core::{Instance, Ratio, ScaledScheduleBuilder, Schedule, ScheduleBuilder};

/// The unit grid of `instance` as an `i128`, if representable (see
/// [`schedule_unit_grid`]).
fn unit_grid(instance: &Instance) -> Option<i128> {
    schedule_unit_grid(instance).map(i128::from)
}

/// Splits the full unit pool proportionally to `weights` in exact rational
/// arithmetic: largest-remainder rounding on the instance grid when one is
/// representable, the exact (unquantized) proportional split otherwise.
/// Callers guarantee at least one positive weight.
fn split_unit_pool(grid: Option<i128>, weights: &[Ratio]) -> Vec<Ratio> {
    match grid {
        Some(grid) => largest_remainder_split_ratio(grid, weights),
        None => {
            let total: Ratio = weights.iter().sum();
            weights.iter().map(|&w| w / total).collect()
        }
    }
}

/// Splits the instance of `builder` uniformly over its currently active
/// processors and advances one step.
fn push_equal_step(builder: &mut ScaledScheduleBuilder<'_>) {
    let weights: Vec<u64> = (0..builder.processors())
        .map(|i| u64::from(builder.is_active(i)))
        .collect();
    let shares = largest_remainder_split(builder.capacity(), &weights);
    builder.push_step(shares);
}

/// Splits the instance of `builder` proportionally to the active jobs' step
/// demands and advances one step.  When the demands fit the pool they are
/// granted exactly.
fn push_proportional_step(builder: &mut ScaledScheduleBuilder<'_>) {
    let demands: Vec<u64> = (0..builder.processors())
        .map(|i| builder.step_demand_units(i))
        .collect();
    let total: u128 = demands.iter().map(|&d| u128::from(d)).sum();
    let shares = if total <= u128::from(builder.capacity()) {
        demands
    } else {
        largest_remainder_split(builder.capacity(), &demands)
    };
    builder.push_step(shares);
}

/// Splits the resource uniformly among all active processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualShare;

impl EqualShare {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        EqualShare
    }

    /// The exact-rational reference implementation of
    /// [`EqualShare::schedule`] (identical output; see the module docs).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        let grid = unit_grid(instance);
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(instance);
        while !builder.all_done() {
            let weights: Vec<Ratio> = (0..m)
                .map(|i| {
                    if builder.is_active(i) {
                        Ratio::ONE
                    } else {
                        Ratio::ZERO
                    }
                })
                .collect();
            // The uniform share is handed out regardless of the jobs'
            // demands; anything a job cannot absorb is wasted.
            builder.push_step(split_unit_pool(grid, &weights));
        }
        builder.finish()
    }
}

impl Scheduler for EqualShare {
    fn name(&self) -> &'static str {
        "EqualShare"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        match ScaledScheduleBuilder::try_new(instance) {
            Some(mut builder) => {
                while !builder.all_done() {
                    push_equal_step(&mut builder);
                }
                builder.finish()
            }
            None => self.schedule_rational(instance),
        }
    }
}

/// Splits the resource proportionally to the active jobs' step demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalShare;

impl ProportionalShare {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        ProportionalShare
    }

    /// The exact-rational reference implementation of
    /// [`ProportionalShare::schedule`] (identical output; see the module
    /// docs).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        let grid = unit_grid(instance);
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(instance);
        while !builder.all_done() {
            let demands: Vec<Ratio> = (0..m).map(|i| builder.step_demand(i)).collect();
            let total: Ratio = demands.iter().sum();
            let shares = if total <= Ratio::ONE {
                // Everything fits: give every job exactly what it needs.
                demands
            } else {
                split_unit_pool(grid, &demands)
            };
            builder.push_step(shares);
        }
        builder.finish()
    }
}

impl Scheduler for ProportionalShare {
    fn name(&self) -> &'static str {
        "ProportionalShare"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        match ScaledScheduleBuilder::try_new(instance) {
            Some(mut builder) => {
                while !builder.all_done() {
                    push_proportional_step(&mut builder);
                }
                builder.finish()
            }
            None => self.schedule_rational(instance),
        }
    }
}

/// Serves active jobs in order of decreasing remaining requirement.
#[derive(Debug, Clone, Copy, Default)]
pub struct LargestRequirementFirst;

impl LargestRequirementFirst {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        LargestRequirementFirst
    }

    /// The exact-rational reference implementation of
    /// [`LargestRequirementFirst::schedule`] (identical output).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        serve_in_order_rational(instance, true)
    }
}

/// Serves active jobs in order of increasing remaining requirement,
/// greedily maximizing the number of jobs finished per step (the schedule of
/// Figure 1 in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallestRequirementFirst;

impl SmallestRequirementFirst {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        SmallestRequirementFirst
    }

    /// The exact-rational reference implementation of
    /// [`SmallestRequirementFirst::schedule`] (identical output).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        serve_in_order_rational(instance, false)
    }
}

fn serve_in_order_rational(instance: &Instance, order_desc: bool) -> Schedule {
    let m = instance.processors();
    let mut builder = ScheduleBuilder::new(instance);
    while !builder.all_done() {
        let mut order: Vec<usize> = (0..m).filter(|&i| builder.is_active(i)).collect();
        order.sort_by(|&a, &b| {
            let cmp = builder
                .remaining_workload(a)
                .cmp(&builder.remaining_workload(b));
            let cmp = if order_desc { cmp.reverse() } else { cmp };
            cmp.then_with(|| a.cmp(&b))
        });
        let mut shares = vec![Ratio::ZERO; m];
        let mut left = Ratio::ONE;
        for i in order {
            if left.is_zero() {
                break;
            }
            let give = builder.step_demand(i).min(left);
            shares[i] = give;
            left -= give;
        }
        builder.push_step(shares);
    }
    builder.finish()
}

fn serve_in_order_scaled(mut builder: ScaledScheduleBuilder<'_>, order_desc: bool) -> Schedule {
    while !builder.all_done() {
        let mut order: Vec<usize> = (0..builder.processors())
            .filter(|&i| builder.is_active(i))
            .collect();
        order.sort_by(|&a, &b| {
            let cmp = builder
                .remaining_workload_units(a)
                .cmp(&builder.remaining_workload_units(b));
            let cmp = if order_desc { cmp.reverse() } else { cmp };
            cmp.then_with(|| a.cmp(&b))
        });
        serve_units_in_order(&mut builder, &order);
    }
    builder.finish()
}

fn serve_in_order(instance: &Instance, order_desc: bool) -> Schedule {
    match ScaledScheduleBuilder::try_new(instance) {
        Some(builder) => serve_in_order_scaled(builder, order_desc),
        None => serve_in_order_rational(instance, order_desc),
    }
}

impl Scheduler for LargestRequirementFirst {
    fn name(&self) -> &'static str {
        "LargestRequirementFirst"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        serve_in_order(instance, true)
    }
}

impl Scheduler for SmallestRequirementFirst {
    fn name(&self) -> &'static str {
        "SmallestRequirementFirst"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        serve_in_order(instance, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::bounds;
    use cr_core::properties::{is_non_wasting, is_progressive};
    use cr_core::{ratio, InstanceBuilder};

    fn sample_instances() -> Vec<Instance> {
        vec![
            Instance::unit_from_percentages(&[
                &[20, 10, 10, 10],
                &[50, 55, 90, 55, 10],
                &[50, 40, 95],
            ]),
            Instance::unit_from_percentages(&[&[100], &[100], &[100]]),
            Instance::unit_from_percentages(&[&[25, 75], &[75, 25], &[50, 50]]),
            Instance::unit_from_percentages(&[&[0, 50], &[100, 0]]),
        ]
    }

    #[test]
    fn all_heuristics_produce_feasible_schedules() {
        let heuristics: Vec<Box<dyn Scheduler>> = vec![
            Box::new(EqualShare::new()),
            Box::new(ProportionalShare::new()),
            Box::new(LargestRequirementFirst::new()),
            Box::new(SmallestRequirementFirst::new()),
        ];
        for inst in sample_instances() {
            for h in &heuristics {
                let schedule = h.schedule(&inst);
                let trace = schedule.trace(&inst).unwrap();
                assert!(
                    trace.makespan() >= bounds::trivial_lower_bound(&inst).min(trace.makespan()),
                    "{} produced impossible makespan",
                    h.name()
                );
            }
        }
    }

    #[test]
    fn scaled_and_rational_paths_agree_on_samples() {
        for inst in sample_instances() {
            assert_eq!(
                EqualShare::new().schedule(&inst),
                EqualShare::new().schedule_rational(&inst)
            );
            assert_eq!(
                ProportionalShare::new().schedule(&inst),
                ProportionalShare::new().schedule_rational(&inst)
            );
            assert_eq!(
                LargestRequirementFirst::new().schedule(&inst),
                LargestRequirementFirst::new().schedule_rational(&inst)
            );
            assert_eq!(
                SmallestRequirementFirst::new().schedule(&inst),
                SmallestRequirementFirst::new().schedule_rational(&inst)
            );
        }
    }

    #[test]
    fn priority_heuristics_are_non_wasting_and_progressive() {
        for inst in sample_instances() {
            for h in [
                Box::new(LargestRequirementFirst::new()) as Box<dyn Scheduler>,
                Box::new(SmallestRequirementFirst::new()),
            ] {
                let trace = h.schedule(&inst).trace(&inst).unwrap();
                assert!(is_non_wasting(&trace), "{}", h.name());
                assert!(is_progressive(&trace), "{}", h.name());
            }
        }
    }

    #[test]
    fn smallest_first_reproduces_figure1_makespan() {
        let inst = Instance::unit_from_percentages(&[
            &[20, 10, 10, 10],
            &[50, 55, 90, 55, 10],
            &[50, 40, 95],
        ]);
        assert_eq!(SmallestRequirementFirst::new().makespan(&inst), 6);
    }

    #[test]
    fn equal_share_can_be_wasteful_but_is_feasible() {
        // Two processors, requirements 100% and 10%: the uniform split gives
        // each 50%, wasting 40% on the small job.
        let inst = Instance::unit_from_percentages(&[&[100], &[10]]);
        let schedule = EqualShare::new().schedule(&inst);
        assert_eq!(schedule.share(0, 0), Ratio::new(1, 2));
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 2);
        // GreedyBalance-style serving would have finished in 2 steps as well,
        // but EqualShare needs 2 steps even though total workload is 1.1.
        assert!(!is_non_wasting(&trace) || trace.makespan() == 2);
    }

    #[test]
    fn equal_share_hands_out_the_whole_pool() {
        // Three actives on an odd grid: 7/20 + 7/20 + 6/20 = 1 — the old
        // SHARE_GRID floor would have left a sliver of the resource unused.
        let inst = Instance::unit_from_percentages(&[&[20], &[55], &[95]]);
        let schedule = EqualShare::new().schedule(&inst);
        assert_eq!(schedule.share(0, 0), ratio(7, 20));
        assert_eq!(schedule.share(0, 1), ratio(7, 20));
        assert_eq!(schedule.share(0, 2), ratio(6, 20));
        assert_eq!(schedule.assigned_total(0), Ratio::ONE);
    }

    #[test]
    fn proportional_share_finishes_exact_fits_in_one_step() {
        let inst = Instance::unit_from_percentages(&[&[40], &[60]]);
        assert_eq!(ProportionalShare::new().makespan(&inst), 1);
    }

    #[test]
    fn proportional_share_scales_down_when_oversubscribed() {
        let inst = Instance::unit_from_percentages(&[&[80], &[80]]);
        let schedule = ProportionalShare::new().schedule(&inst);
        // The exact largest-remainder split of the 5-unit pool between equal
        // demands of 4 units is 3 + 2 (the extra unit goes to the lower
        // index); both jobs need 80% → finish in step 1 (second).
        assert_eq!(schedule.makespan(&inst).unwrap(), 2);
        assert_eq!(schedule.share(0, 0), ratio(3, 5));
        assert_eq!(schedule.share(0, 1), ratio(2, 5));
        assert_eq!(schedule.assigned_total(0), Ratio::ONE);
    }

    #[test]
    fn proportional_share_does_not_starve_tiny_demands() {
        // Regression test for the SHARE_GRID quantization bug: one huge
        // demand next to several tiny ones.  The old fixed `1/100 000` floor
        // quantized `tiny/total` to a *zero* share, starving the tiny cores
        // (and, with no step limit in the offline loop, risking a livelock).
        // The exact largest-remainder split gives every tiny demand its unit
        // as long as the pool allows: here the tiny jobs finish in the very
        // first step.
        let tiny = ratio(1, 1_000_000);
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE, Ratio::ONE, Ratio::ONE])
            .processor([tiny])
            .processor([tiny])
            .processor([tiny])
            .processor([tiny])
            .build();
        let schedule = ProportionalShare::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        for p in 1..=4 {
            assert_eq!(
                trace.completion_step(cr_core::JobId::new(p, 0)),
                Some(0),
                "tiny demand on processor {p} was starved"
            );
        }
        // While oversubscribed the whole pool is handed out, so the huge
        // chain finishes within its workload bound: 3 full jobs plus the
        // sliver lost to the tiny cores in step 0 → 4 steps total.
        assert_eq!(trace.makespan(), 4);
        assert_eq!(schedule.assigned_total(0), Ratio::ONE);
        // And the same run through the rational reference is identical.
        assert_eq!(schedule, ProportionalShare::new().schedule_rational(&inst));
    }
}
