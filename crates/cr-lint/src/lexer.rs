//! A hand-rolled Rust lexer: just enough tokenization for invariant
//! linting, with exact line numbers.
//!
//! The lexer understands everything that could otherwise make a textual
//! scan lie about code structure:
//!
//! * line comments (including doc comments, which the scope tracker reads
//!   for `# Panics` sections) and **nested** block comments;
//! * string literals with escapes, **raw strings** (`r"…"`, `r#"…"#`, any
//!   hash depth) and their byte twins (`b"…"`, `br#"…"#`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * identifiers/keywords, numbers (without eating range dots: `0..n`),
//!   and single-character punctuation.
//!
//! It deliberately does **not** build a syntax tree — the rules work on
//! the token stream plus the lightweight scope analysis in
//! [`crate::scope`], in the spirit of the repository's vendored shims.

use std::fmt;

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `gate`, `unwrap`, …).
    Ident,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, …).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) — distinct from [`TokenKind::Char`].
    Lifetime,
    /// A numeric literal (integer or float, any base).
    Number,
    /// A `//…` comment, doc or plain, text includes the slashes.
    LineComment,
    /// A `/* … */` comment (nested depths collapsed), text included.
    BlockComment,
    /// One punctuation character (`{`, `.`, `!`, …).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw source text (for `Str`, includes the quotes and prefixes).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct(ch)
    }

    /// Whether this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// For a [`TokenKind::Str`] token, the literal's content with the
    /// quote/prefix/hash decoration stripped (escapes are *not* processed —
    /// the vocabulary strings this feeds are plain snake_case).
    #[must_use]
    pub fn str_content(&self) -> &str {
        debug_assert_eq!(self.kind, TokenKind::Str);
        let s = self.text.trim_start_matches(['b', 'r']);
        let s = s.trim_start_matches('#');
        let s = s.trim_start_matches('"');
        let s = s.trim_end_matches('#');
        s.trim_end_matches('"')
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated literals
/// or comments simply extend to the end of the file (the linter still has
/// to make progress over any text the compiler would reject anyway).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Counts the newlines inside a just-consumed span.
    let bump_lines = |line: &mut u32, span: &[char]| {
        *line += span.iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let span: Vec<char> = chars[start..i].to_vec();
                bump_lines(&mut line, &span);
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: span.iter().collect(),
                    line: start_line,
                });
                continue;
            }
        }

        // Identifiers, keywords — and the raw/byte string prefixes.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the ident run stopped at
            // `#` or `"`, so peek for a string start.
            let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br")
                && i < chars.len()
                && (chars[i] == '"' || (word != "b" && chars[i] == '#'));
            if is_str_prefix {
                let raw = word != "b";
                let mut hashes = 0usize;
                while raw && i < chars.len() && chars[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < chars.len() && chars[i] == '"' {
                    i += 1; // opening quote
                    loop {
                        if i >= chars.len() {
                            break;
                        }
                        if chars[i] == '"' {
                            // A raw string ends only at `"` + `hashes` hashes.
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while seen < hashes && j < chars.len() && chars[j] == '#' {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                i = j;
                                break;
                            }
                            i += 1;
                            continue;
                        }
                        if !raw && chars[i] == '\\' {
                            i += 1; // escaped char in `b"…"`
                        }
                        i += 1;
                    }
                    let span: Vec<char> = chars[start..i].to_vec();
                    bump_lines(&mut line, &span);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: span.iter().collect(),
                        line: start_line,
                    });
                    continue;
                }
                // `r#raw_ident` or a stray `#`: fall through, re-lex from
                // the ident we already consumed.
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: word,
                line: start_line,
            });
            continue;
        }

        // Numbers (stop before range dots: `0..n`).
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() {
                let ch = chars[i];
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else if ch == '.'
                    && !seen_dot
                    && i + 1 < chars.len()
                    && chars[i + 1].is_ascii_digit()
                {
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            let start = i;
            i += 1;
            if i < chars.len() && (chars[i].is_alphabetic() || chars[i] == '_') {
                // Could be `'a'` (char) or `'a` (lifetime): consume the
                // ident run, then look for the closing quote.
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '\'' && j == i + 1 {
                    // Exactly one ident char then a quote: a char literal.
                    i = j + 1;
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                    });
                } else {
                    i = j;
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                    });
                }
                continue;
            }
            // Escaped or punctuation char literal: `'\n'`, `'('`, `'\u{1}'`.
            if i < chars.len() && chars[i] == '\\' {
                i += 1;
                if i < chars.len() && chars[i] == 'u' {
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            } else if i < chars.len() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '\'' {
                i += 1;
            }
            let span: Vec<char> = chars[start..i].to_vec();
            bump_lines(&mut line, &span);
            tokens.push(Token {
                kind: TokenKind::Char,
                text: span.iter().collect(),
                line: start_line,
            });
            continue;
        }

        // String literal.
        if c == '"' {
            let start = i;
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(chars.len());
            let span: Vec<char> = chars[start..i].to_vec();
            bump_lines(&mut line, &span);
            tokens.push(Token {
                kind: TokenKind::Str,
                text: span.iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Everything else: one punctuation character.
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    tokens
}

/// Index of the `}` matching the `{` at `open` (which must be an opening
/// brace), or `tokens.len() - 1` when the file ends first.
#[must_use]
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0i64;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let toks = kinds("let x = 42;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct('='), "=".into()));
        assert_eq!(toks[3], (TokenKind::Number, "42".into()));
    }

    #[test]
    fn range_dots_stay_out_of_numbers() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Punct('.')));
        assert!(!toks.iter().any(|(_, t)| t == "0."));
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn raw_strings_swallow_quotes_comments_and_hashes() {
        // The `//` and `"` inside the raw string must not open a comment
        // or terminate the literal early.
        let src = r####"let s = r#"quote " and // not a comment"#; done();"####;
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(lit.text.contains("not a comment"));
        assert_eq!(lit.str_content(), "quote \" and // not a comment");
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert!(!toks.iter().any(Token::is_comment));
    }

    #[test]
    fn byte_and_multi_hash_raw_strings_strip_decoration() {
        let toks = lex(r#####"b"bytes" br##"x"#y"## r"plain""#####);
        let contents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(Token::str_content)
            .collect();
        assert_eq!(contents, ["bytes", "x\"#y", "plain"]);
    }

    #[test]
    fn nested_block_comments_hide_their_contents() {
        // Rust block comments nest: the unwrap inside must come out as one
        // comment token, not as code.
        let src = "a /* outer /* inner */ x.unwrap() */ b";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("a")));
        assert!(toks.iter().any(|t| t.is_ident("b")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        let comment = toks.iter().find(|t| t.is_comment()).unwrap();
        assert!(comment.text.contains("inner") && comment.text.contains("unwrap"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }
}
