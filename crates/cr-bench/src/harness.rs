//! Shared experiment-driver utilities: result rows and markdown tables.

use cr_core::Instance;

/// One row of an experiment table, in the shape the paper's claims are
/// phrased: an algorithm, an instance, a measured makespan and the reference
/// value (optimal makespan or lower bound) it is compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Instance label (e.g. `"fig3 n=100"`).
    pub instance: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Number of processors.
    pub processors: usize,
    /// Maximum chain length.
    pub max_chain: usize,
    /// Measured makespan.
    pub makespan: usize,
    /// Reference value (optimal makespan where computable, otherwise the best
    /// lower bound).
    pub reference: usize,
    /// Whether `reference` is a proven optimum (`true`) or only a lower
    /// bound (`false`).
    pub reference_is_optimal: bool,
}

impl ExperimentRow {
    /// Creates a row, reading `m` and `n` from the instance.
    #[must_use]
    pub fn new(
        instance_label: impl Into<String>,
        algorithm: impl Into<String>,
        instance: &Instance,
        makespan: usize,
        reference: usize,
        reference_is_optimal: bool,
    ) -> Self {
        ExperimentRow {
            instance: instance_label.into(),
            algorithm: algorithm.into(),
            processors: instance.processors(),
            max_chain: instance.max_chain_length(),
            makespan,
            reference,
            reference_is_optimal,
        }
    }

    /// The measured ratio `makespan / reference`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.reference == 0 {
            1.0
        } else {
            self.makespan as f64 / self.reference as f64
        }
    }
}

/// Formats a ratio with three decimals, marking lower-bound-based ratios with
/// `≤` (the true ratio against the unknown optimum can only be smaller).
#[must_use]
pub fn ratio_string(row: &ExperimentRow) -> String {
    if row.reference_is_optimal {
        format!("{:.3}", row.ratio())
    } else {
        format!("≤ {:.3}", row.ratio())
    }
}

/// Renders rows as a GitHub-flavoured markdown table, the format used in
/// `EXPERIMENTS.md`.
#[must_use]
pub fn markdown_table(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| instance | m | n | algorithm | makespan | reference | ratio |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {}{} | {} |\n",
            row.instance,
            row.processors,
            row.max_chain,
            row.algorithm,
            row.makespan,
            row.reference,
            if row.reference_is_optimal {
                " (opt)"
            } else {
                " (LB)"
            },
            ratio_string(row),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_instances::figure1_instance;

    #[test]
    fn row_and_table_formatting() {
        let inst = figure1_instance();
        let row = ExperimentRow::new("fig1", "GreedyBalance", &inst, 6, 5, true);
        assert_eq!(row.processors, 3);
        assert_eq!(row.max_chain, 5);
        assert!((row.ratio() - 1.2).abs() < 1e-12);
        assert_eq!(ratio_string(&row), "1.200");

        let lb_row = ExperimentRow::new("fig1", "RoundRobin", &inst, 8, 5, false);
        assert!(ratio_string(&lb_row).starts_with('≤'));

        let table = markdown_table("demo", &[row, lb_row]);
        assert!(table.contains("| fig1 | 3 | 5 | GreedyBalance | 6 | 5 (opt) | 1.200 |"));
        assert!(table.contains("RoundRobin"));
        assert!(table.starts_with("### demo"));
    }

    #[test]
    fn zero_reference_is_handled() {
        let inst = figure1_instance();
        let row = ExperimentRow::new("x", "y", &inst, 0, 0, true);
        assert_eq!(row.ratio(), 1.0);
    }
}
