//! The discrete-time simulation engine.
//!
//! The engine owns a workload (one task per core), repeatedly asks an
//! [`OnlinePolicy`] for a bus-share vector, validates it, advances the cores
//! and collects metrics.  Internally it reuses the exact simulation semantics
//! of [`cr_core::ScheduleBuilder`], so a simulation run is bit-for-bit a
//! CRSharing schedule and can be validated, rendered and analyzed with the
//! rest of the tool chain.

use crate::metrics::{CoreReport, SimReport};
use crate::policies::{CoreView, OnlinePolicy};
use crate::task::{tasks_to_instance, Task};
use cr_core::{bounds, Instance, Schedule, ScheduleBuilder};

/// A simulation of one workload under one policy.
pub struct Simulator {
    tasks: Vec<Task>,
    instance: Instance,
    /// Hard cap on simulated steps, to surface starvation bugs in policies
    /// instead of spinning forever.
    step_limit: usize,
}

/// Outcome of a simulation: the aggregate report plus the full schedule for
/// further inspection.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate and per-core metrics.
    pub report: SimReport,
    /// The exact schedule the policy produced.
    pub schedule: Schedule,
}

impl Simulator {
    /// Creates a simulator for a set of tasks (one per core).
    #[must_use]
    pub fn new(tasks: Vec<Task>) -> Self {
        let instance = tasks_to_instance(&tasks);
        // Generous default: even a policy that serves one core at a time
        // finishes within the total ideal time of all tasks.
        let step_limit = tasks
            .iter()
            .map(Task::ideal_completion_time)
            .sum::<usize>()
            .max(1)
            * 4
            + 16;
        Simulator {
            tasks,
            instance,
            step_limit,
        }
    }

    /// Creates a simulator directly from a CRSharing instance (cores are
    /// named `core0`, `core1`, …).
    #[must_use]
    pub fn from_instance(instance: &Instance) -> Self {
        Simulator::new(crate::task::instance_to_tasks(instance))
    }

    /// Overrides the step limit (mostly useful in tests).
    #[must_use]
    pub fn with_step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// The workload as a CRSharing instance.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Runs the workload to completion under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an infeasible share vector or fails to
    /// make progress within the step limit.
    #[must_use]
    pub fn run(&self, policy: &mut dyn OnlinePolicy) -> SimOutcome {
        let m = self.instance.processors();
        let mut builder = ScheduleBuilder::new(&self.instance);
        let mut completion = vec![0usize; m];
        let mut starved = vec![0usize; m];
        let mut consumed_total = 0.0_f64;

        let mut steps = 0usize;
        while !builder.all_done() {
            assert!(
                steps < self.step_limit,
                "policy {} exceeded the step limit of {} — it is starving a core",
                policy.name(),
                self.step_limit
            );
            let views: Vec<CoreView> = (0..m)
                .map(|i| CoreView {
                    active_requirement: builder
                        .active_job(i)
                        .map(|id| self.instance.job(id).requirement),
                    step_demand: builder.step_demand(i),
                    remaining_workload: builder.remaining_workload(i),
                    remaining_phases: builder.unfinished_jobs(i),
                })
                .collect();
            let shares = policy.allocate(&views);
            assert_eq!(
                shares.len(),
                m,
                "policy {} returned {} shares for {} cores",
                policy.name(),
                shares.len(),
                m
            );

            for i in 0..m {
                if views[i].is_active() {
                    let consumed = shares[i].min(views[i].step_demand);
                    consumed_total += consumed.to_f64();
                    if shares[i].is_zero() && views[i].step_demand.is_positive() {
                        starved[i] += 1;
                    }
                }
            }
            builder.push_step(shares);
            steps += 1;
            for (i, done_at) in completion.iter_mut().enumerate() {
                if *done_at == 0 && builder.unfinished_jobs(i) == 0 {
                    *done_at = steps;
                }
            }
        }

        let schedule = builder.finish();
        let makespan = steps;
        let per_core: Vec<CoreReport> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| CoreReport {
                name: task.name.clone(),
                completion_time: completion[i],
                ideal_completion_time: task.ideal_completion_time(),
                starved_steps: starved[i],
            })
            .collect();

        let report = SimReport {
            policy: policy.name().to_string(),
            cores: m,
            makespan,
            bus_utilization: if makespan == 0 {
                0.0
            } else {
                consumed_total / makespan as f64
            },
            lower_bound: bounds::trivial_lower_bound(&self.instance),
            per_core,
        };
        SimOutcome { report, schedule }
    }

    /// Runs the workload under every provided policy and returns the reports
    /// in the same order.
    #[must_use]
    pub fn compare(&self, policies: &mut [Box<dyn OnlinePolicy>]) -> Vec<SimReport> {
        policies
            .iter_mut()
            .map(|p| self.run(p.as_mut()).report)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{
        standard_policies, EqualSharePolicy, GreedyBalancePolicy, RoundRobinPolicy,
    };
    use crate::task::Phase;
    use cr_core::{ratio, Ratio};
    use cr_instances::{generate_workload, TaskMix, WorkloadConfig};

    fn small_workload() -> Vec<Task> {
        vec![
            Task::new(
                "io0",
                vec![
                    Phase::unit(ratio(9, 10)),
                    Phase::unit(ratio(8, 10)),
                    Phase::unit(ratio(7, 10)),
                ],
            ),
            Task::new(
                "cpu0",
                vec![Phase::unit(ratio(1, 10)), Phase::unit(ratio(1, 10))],
            ),
            Task::new(
                "io1",
                vec![Phase::unit(ratio(6, 10)), Phase::unit(ratio(5, 10))],
            ),
        ]
    }

    #[test]
    fn simulation_completes_and_matches_schedule_semantics() {
        let sim = Simulator::new(small_workload());
        let outcome = sim.run(&mut GreedyBalancePolicy);
        // The schedule the engine reports is feasible and has the same
        // makespan as the engine's own step count.
        let trace = outcome.schedule.trace(sim.instance()).unwrap();
        assert_eq!(trace.makespan(), outcome.report.makespan);
        assert!(outcome.report.makespan >= outcome.report.lower_bound);
        assert!(outcome.report.bus_utilization > 0.0);
        assert!(outcome
            .report
            .per_core
            .iter()
            .all(|c| c.completion_time > 0));
    }

    #[test]
    fn greedy_balance_is_no_worse_than_equal_share_here() {
        let sim = Simulator::new(small_workload());
        let greedy = sim.run(&mut GreedyBalancePolicy).report;
        let equal = sim.run(&mut EqualSharePolicy).report;
        assert!(greedy.makespan <= equal.makespan);
    }

    #[test]
    fn round_robin_respects_phase_barriers() {
        let sim = Simulator::new(small_workload());
        let rr = sim.run(&mut RoundRobinPolicy).report;
        // Round robin is a 2-approximation; with the lower bound as proxy for
        // the optimum the ratio must stay below 2 (plus 1 step of slack for
        // the ceiling effects on this tiny workload).
        assert!(rr.makespan <= 2 * rr.lower_bound + 1);
    }

    #[test]
    fn policy_comparison_covers_all_policies() {
        let cfg = WorkloadConfig {
            cores: 6,
            phases_per_task: 4,
            mix: TaskMix::Mixed,
            ..Default::default()
        };
        let sim = Simulator::from_instance(&generate_workload(&cfg, 7));
        let mut policies = standard_policies();
        let reports = sim.compare(&mut policies);
        assert_eq!(reports.len(), policies.len());
        for r in &reports {
            assert!(r.makespan >= r.lower_bound);
            assert!(r.bus_utilization <= 1.0 + 1e-9);
        }
        // GreedyBalance is within its proven factor of the lower bound.
        let greedy = &reports[0];
        assert!(greedy.normalized_makespan() <= 2.0 - 1.0 / cfg.cores as f64 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "step limit")]
    fn starving_policies_are_detected() {
        struct DoNothing;
        impl OnlinePolicy for DoNothing {
            fn name(&self) -> &'static str {
                "DoNothing"
            }
            fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio> {
                vec![Ratio::ZERO; cores.len()]
            }
        }
        let sim = Simulator::new(small_workload()).with_step_limit(16);
        let _ = sim.run(&mut DoNothing);
    }
}
