//! Scaled-integer view of an instance's resource requirements, and the
//! scaled scheduling layer built on top of it.
//!
//! The exact solvers spend essentially all of their time comparing and
//! summing [`Ratio`] requirements: every `Ratio` addition runs Euclid's gcd
//! on `i128` operands, and every comparison cross-multiplies.  For a *fixed*
//! instance none of that generality is needed — all requirements live on the
//! common grid `1/D`, where `D` is the least common multiple of their
//! denominators (bounded, for every instance family shipped in this
//! repository, by a few million — see the `rational` module docs).
//!
//! [`ScaledInstance`] precomputes `D` once and re-expresses every requirement
//! as a plain `u64` number of *units* with resource capacity `D`.  Sums,
//! "does it exceed the resource?" tests and leftover computations then become
//! single integer operations with no gcd anywhere.  The conversion is exact
//! in both directions: [`ScaledInstance::to_ratio`] returns the original
//! requirement value bit-for-bit (same reduced fraction), which is what lets
//! the solver cores run on units internally while the public API keeps
//! speaking exact [`Ratio`]s.
//!
//! # The scaled scheduling layer
//!
//! [`ScaledScheduleBuilder`] extends the same representation from the exact
//! solvers to *schedule construction*: it mirrors
//! [`ScheduleBuilder`](crate::schedule::ScheduleBuilder) step for step, but
//! tracks the remaining **workload** `r·p` of each frontier job as `u64`
//! units on the grid `1/D`, where `D` is the LCM of all requirement *and*
//! workload denominators.  A time step hands out exactly `D` units; granting
//! `c ≤ min(workload, r·D)` units to a job reduces its remaining workload by
//! exactly `c`, so a whole simulation step is a handful of integer ops.
//! [`ScaledScheduleBuilder::finish`] converts the unit shares back to exact
//! [`Ratio`]s (`units/D`), so the resulting [`Schedule`] is bit-for-bit the
//! schedule the equivalent `Ratio` arithmetic would have produced — the
//! schedulers in `cr-algos` and the online arbiter in `cr-sim` run on units
//! internally while their public APIs keep speaking exact `Ratio` schedules.
//!
//! [`largest_remainder_split`] is the companion primitive for policies that
//! *divide* the resource (uniform or demand-proportional shares): it splits
//! the `D`-unit pool proportionally to integer weights with deterministic
//! largest-remainder rounding, so shares always sum to exactly one pool —
//! no sliver of the resource is silently wasted, and a positive demand is
//! only ever given zero units when the entire pool went to other positive
//! demands.  This replaces the lossy fixed `SHARE_GRID` floor the heuristics
//! and the online policies used before, which could quantize small positive
//! demands to a zero share and starve a core.
//!
//! Construction is fallible ([`ScaledInstance::try_new`],
//! [`ScaledScheduleBuilder::try_new`]): if the LCM blows past the
//! overflow-safe bound, callers fall back to the rational-arithmetic path.
//! The two layers reserve different headroom above the LCM `D`:
//! [`ScaledInstance`] only needs `2 · D` (the two-processor DP's
//! requirement-plus-carry cells; the wide configuration engines in
//! `cr-algos` overflow-check their own `m`-fold sums), while
//! [`ScaledScheduleBuilder`] keeps `(m + 1) · D` because its step
//! application accumulates `m` shares unchecked.

use crate::instance::Instance;
use crate::job::JobId;
use crate::rational::Ratio;
use crate::schedule::Schedule;

/// An instance's requirements re-expressed as integer units on the common
/// grid `1/capacity`.
///
/// Rows are stored in one flat buffer (CSR-style) so iterating a processor's
/// chain is a contiguous slice scan.
///
/// # Examples
///
/// ```
/// use cr_core::{Instance, Ratio, ScaledInstance};
///
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[50]]);
/// let scaled = ScaledInstance::try_new(&inst).unwrap();
/// // 60%, 40% and 50% share the grid 1/5 after reduction (3/5, 2/5, 1/2 → lcm 10).
/// assert_eq!(scaled.capacity(), 10);
/// assert_eq!(scaled.row(0), &[6, 4]);
/// assert_eq!(scaled.row(1), &[5]);
/// assert_eq!(scaled.to_ratio(6), Ratio::from_percent(60));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaledInstance {
    /// The shared resource capacity `D` (the requirement denominators' LCM).
    capacity: u64,
    /// Row start offsets into `units`; length `processors + 1`.
    offsets: Vec<u32>,
    /// All requirements in units, processor-major.
    units: Vec<u64>,
    /// Extra resource layers (`extra[r − 1]` is resource `r`), each on its
    /// **own** per-resource LCM grid and sharing `offsets`.  Empty for
    /// single-resource instances, whose representation is bit-for-bit what
    /// it was before the multi-resource generalization.
    extra: Vec<ScaledLayer>,
}

/// One extra resource layer of a [`ScaledInstance`]: its own unit grid plus
/// the per-job requirements in units, addressed through the instance's
/// shared CSR offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScaledLayer {
    /// The layer's capacity `D_r` (LCM of the layer's requirement
    /// denominators, with the same `2 · D_r` headroom as the base grid).
    capacity: u64,
    /// The layer's requirements in units, processor-major.
    units: Vec<u64>,
}

/// Greatest common divisor (Euclid) on `u64`.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl ScaledInstance {
    /// Builds the scaled view, or `None` when the denominators' LCM `D` is
    /// so large that `2 · D` would overflow `u64`.  Callers treat `None` as
    /// "use the rational path".
    ///
    /// # Headroom invariant
    ///
    /// The factor-two headroom is exactly what the two-processor dynamic
    /// program needs: its cell values are one frontier requirement plus one
    /// carried leftover, each at most `D`.  Wider sums — over the
    /// *m*-processor active set of the configuration search — are **not**
    /// covered and may exceed `u64`; the engines in `cr-algos` use
    /// overflow-checked additions for those (an overflowing sum is, a
    /// fortiori, oversubscribed).  Before ISSUE 4 this reserved
    /// `(m + 1) · D` instead, needlessly pushing wide many-core instances
    /// with large denominators onto the slow rational path.
    ///
    /// The scheduling-layer grid ([`schedule_unit_grid`] /
    /// [`ScaledScheduleBuilder`]) still reserves `(m + 1) · D`: its step
    /// application accumulates `m` shares unchecked.
    #[must_use]
    pub fn try_new(instance: &Instance) -> Option<Self> {
        let m = instance.processors();
        // LCM of all requirement denominators.  Denominators are positive and
        // requirements lie in [0, 1], so they fit u64.
        let mut capacity: u64 = 1;
        for (_, job) in instance.iter_jobs() {
            let den = u64::try_from(job.requirement.denom()).ok()?;
            let g = gcd(capacity, den);
            capacity = capacity.checked_mul(den / g)?;
            // Keep headroom for one requirement plus one carried leftover.
            capacity.checked_mul(2)?;
        }
        let mut offsets = Vec::with_capacity(m + 1);
        let mut units = Vec::with_capacity(instance.total_jobs());
        offsets.push(0u32);
        for i in 0..m {
            for job in instance.processor_jobs(i) {
                let num = u64::try_from(job.requirement.numer()).ok()?;
                let den = u64::try_from(job.requirement.denom()).ok()?;
                // num ≤ den divides capacity, so num · (capacity / den) ≤ capacity.
                units.push(num * (capacity / den));
            }
            offsets.push(u32::try_from(units.len()).ok()?);
        }
        // Each extra resource layer gets its own denominator-LCM grid with
        // the same factor-two headroom discipline as the base resource.
        let mut extra = Vec::with_capacity(instance.extra_layers().len());
        for layer in instance.extra_layers() {
            let mut layer_capacity: u64 = 1;
            for row in layer {
                for req in row {
                    let den = u64::try_from(req.denom()).ok()?;
                    let g = gcd(layer_capacity, den);
                    layer_capacity = layer_capacity.checked_mul(den / g)?;
                    layer_capacity.checked_mul(2)?;
                }
            }
            let mut layer_units = Vec::with_capacity(units.len());
            for row in layer {
                for req in row {
                    let num = u64::try_from(req.numer()).ok()?;
                    let den = u64::try_from(req.denom()).ok()?;
                    layer_units.push(num * (layer_capacity / den));
                }
            }
            extra.push(ScaledLayer {
                capacity: layer_capacity,
                units: layer_units,
            });
        }
        Some(ScaledInstance {
            capacity,
            offsets,
            units,
            extra,
        })
    }

    /// Number of shared resources `k` (`1` plus the extra layers).
    #[must_use]
    pub fn resources(&self) -> usize {
        1 + self.extra.len()
    }

    /// The capacity `D_r` of resource `resource` (`0` is the base
    /// resource): a full time step hands out `layer_capacity(r)` units *of
    /// resource `r`*.  Each resource lives on its own grid.
    #[must_use]
    pub fn layer_capacity(&self, resource: usize) -> u64 {
        if resource == 0 {
            self.capacity
        } else {
            self.extra[resource - 1].capacity
        }
    }

    /// Requirements of processor `i` on resource `resource` in that
    /// resource's units, in chain order.
    #[must_use]
    pub fn layer_row(&self, resource: usize, processor: usize) -> &[u64] {
        let range = self.offsets[processor] as usize..self.offsets[processor + 1] as usize;
        if resource == 0 {
            &self.units[range]
        } else {
            &self.extra[resource - 1].units[range]
        }
    }

    /// Requirement of job `(processor, index)` on resource `resource` in
    /// that resource's units.
    #[must_use]
    pub fn layer_unit_req(&self, resource: usize, processor: usize, index: usize) -> u64 {
        let slot = self.offsets[processor] as usize + index;
        if resource == 0 {
            self.units[slot]
        } else {
            self.extra[resource - 1].units[slot]
        }
    }

    /// Converts a unit count of resource `resource` back to the exact
    /// rational share `units / D_r` (reduced — round-trips the original
    /// requirement).
    #[must_use]
    pub fn to_ratio_on(&self, resource: usize, units: u64) -> Ratio {
        Ratio::new(i128::from(units), i128::from(self.layer_capacity(resource)))
    }

    /// The resource capacity `D`: a full time step hands out exactly
    /// `capacity` units.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of jobs on processor `i`.
    #[must_use]
    pub fn jobs_on(&self, processor: usize) -> usize {
        (self.offsets[processor + 1] - self.offsets[processor]) as usize
    }

    /// Total number of jobs over all processors.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.units.len()
    }

    /// Requirements of processor `i` in units, in chain order.
    #[must_use]
    pub fn row(&self, processor: usize) -> &[u64] {
        &self.units[self.offsets[processor] as usize..self.offsets[processor + 1] as usize]
    }

    /// Requirement of job `(processor, index)` in units.
    #[must_use]
    pub fn unit_req(&self, processor: usize, index: usize) -> u64 {
        self.units[self.offsets[processor] as usize + index]
    }

    /// Converts a unit count back to the exact rational share
    /// `units / capacity` (reduced — round-trips the original requirement).
    #[must_use]
    pub fn to_ratio(&self, units: u64) -> Ratio {
        Ratio::new(i128::from(units), i128::from(self.capacity))
    }
}

/// Least common multiple of all requirement *and* workload denominators of
/// `instance` — the unit grid the scaled scheduling layer runs on — or
/// `None` when the LCM (with `(m + 1)·D` headroom, so sums of `m` shares
/// plus a carry always fit `u64`) would overflow.
///
/// This is the capacity a [`ScaledScheduleBuilder`] for the same instance
/// reports; it is exposed separately so the `*_rational` reference
/// implementations in `cr-algos` can quantize their splits to the identical
/// grid without constructing a builder.
#[must_use]
pub fn schedule_unit_grid(instance: &Instance) -> Option<u64> {
    let m = instance.processors() as u64;
    let mut capacity: u64 = 1;
    let mut fold = |den: i128| -> Option<()> {
        let den = u64::try_from(den).ok()?;
        let g = gcd(capacity, den);
        capacity = capacity.checked_mul(den / g)?;
        capacity.checked_mul(m + 1)?;
        Some(())
    };
    for (_, job) in instance.iter_jobs() {
        fold(job.requirement.denom())?;
        if job.requirement.is_positive() {
            let workload = job.requirement.checked_mul(job.volume)?;
            fold(workload.denom())?;
        }
    }
    Some(capacity)
}

/// Splits a pool of `pool` resource units proportionally to integer
/// `weights`, with deterministic largest-remainder rounding.
///
/// Each entry receives `⌊pool·wᵢ/Σw⌋` units, and the remaining units are
/// handed out one each in order of decreasing fractional part
/// `(pool·wᵢ) mod Σw` (ties broken towards the lower index).  The result
/// always sums to exactly `pool` (or to zero when all weights are zero), a
/// zero weight always receives zero units, and no entry exceeds
/// `⌈pool·wᵢ/Σw⌉` — in particular, when `Σw > pool` no entry exceeds its own
/// weight, so demand-proportional splits never over-allocate a job.
///
/// # Examples
///
/// ```
/// use cr_core::scaled::largest_remainder_split;
///
/// // A 10-unit pool split uniformly among three actives: 4 + 3 + 3.
/// assert_eq!(largest_remainder_split(10, &[1, 1, 1]), vec![4, 3, 3]);
/// // Proportional to demands 7 and 3 (oversubscribed pool of 5): 4 + 1.
/// assert_eq!(largest_remainder_split(5, &[7, 3]), vec![4, 1]);
/// ```
#[must_use]
pub fn largest_remainder_split(pool: u64, weights: &[u64]) -> Vec<u64> {
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    let mut shares = vec![0u64; weights.len()];
    let mut fracs: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let product = u128::from(pool) * u128::from(w);
        // product / total ≤ pool, so the quotient fits u64.
        let base = (product / total) as u64;
        shares[i] = base;
        assigned += base;
        fracs.push((product % total, i));
    }
    // Σ fracᵢ = rest·total with every frac < total, so rest < len and every
    // bumped entry has a strictly positive fractional part (zero weights are
    // never bumped).
    let rest = (pool - assigned) as usize;
    fracs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    for &(_, i) in fracs.iter().take(rest) {
        shares[i] += 1;
    }
    shares
}

/// The [`Ratio`]-arithmetic twin of [`largest_remainder_split`]: splits the
/// full unit pool (`1`) proportionally to `weights` on the grid `1/grid`.
///
/// For weights that are multiples of `1/grid` this produces exactly the
/// shares `largest_remainder_split(grid, unit_weights)` produces (divided by
/// `grid`) — it exists so the retained rational reference implementations of
/// the splitting heuristics compute bit-identical schedules to their scaled
/// production paths, which the cross-check property tests in `cr-algos`
/// assert.
///
/// # Panics
///
/// Panics if `grid` is not positive.
#[must_use]
pub fn largest_remainder_split_ratio(grid: i128, weights: &[Ratio]) -> Vec<Ratio> {
    assert!(grid > 0, "split grid must be positive");
    let total: Ratio = weights.iter().sum();
    if total.is_zero() {
        return vec![Ratio::ZERO; weights.len()];
    }
    let step = Ratio::new(1, grid);
    let mut shares = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(Ratio, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = Ratio::ZERO;
    for (i, &w) in weights.iter().enumerate() {
        let ideal = w / total;
        let base = ideal.floor_to_denominator(grid);
        assigned += base;
        fracs.push((ideal - base, i));
        shares.push(base);
    }
    // 1 − Σ base is a non-negative multiple of 1/grid.
    let rest = ((Ratio::ONE - assigned) * Ratio::new(grid, 1)).numer();
    let rest = usize::try_from(rest).expect("largest-remainder rest count fits usize");
    fracs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    for &(_, i) in fracs.iter().take(rest) {
        shares[i] += step;
    }
    shares
}

/// Forward-simulating schedule builder on the scaled-integer grid — the
/// `u64` twin of [`ScheduleBuilder`](crate::schedule::ScheduleBuilder).
///
/// All quantities are *units* on the grid `1/capacity` (see
/// [`schedule_unit_grid`]): a full time step hands out exactly
/// [`capacity`](Self::capacity) units, a job's step demand and remaining
/// workload are plain `u64`s, and one simulation step is pure integer
/// arithmetic.  [`finish`](Self::finish) converts the accumulated unit
/// shares back to exact [`Ratio`]s, so the produced [`Schedule`] is
/// bit-for-bit the one the equivalent `Ratio` computation would build.
///
/// Jobs with a **zero requirement** have zero workload but still occupy
/// steps (they advance one volume unit per step regardless of their share,
/// like in [`Schedule::trace`]); the builder tracks them by their remaining
/// step count `⌈p⌉` instead of workload units.
///
/// # Examples
///
/// ```
/// use cr_core::{Instance, ScaledScheduleBuilder};
///
/// let inst = Instance::unit_from_percentages(&[&[60], &[40]]);
/// let mut b = ScaledScheduleBuilder::try_new(&inst).unwrap();
/// assert_eq!(b.capacity(), 5);
/// assert_eq!(b.step_demand_units(0), 3);
/// b.push_step(vec![3, 2]);
/// assert!(b.all_done());
/// let schedule = b.finish();
/// assert_eq!(schedule.makespan(&inst).unwrap(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ScaledScheduleBuilder<'a> {
    instance: &'a Instance,
    /// The unit grid `D`: a full step hands out exactly `capacity` units.
    capacity: u64,
    /// Row start offsets into the per-job arrays; length `processors + 1`.
    offsets: Vec<u32>,
    /// Requirement of each job in units, processor-major.
    req_units: Vec<u64>,
    /// Initial cost of each job: workload `r·p` in units for jobs with a
    /// positive requirement, remaining step count `⌈p⌉` for zero-requirement
    /// jobs.
    cost: Vec<u64>,
    next_job: Vec<usize>,
    /// Remaining cost of each processor's frontier job (same encoding as
    /// `cost`).
    frontier: Vec<u64>,
    steps: Vec<Vec<u64>>,
}

impl<'a> ScaledScheduleBuilder<'a> {
    /// Builds the scaled schedule builder, or `None` when the unit grid
    /// overflows (see [`schedule_unit_grid`]); callers treat `None` as "use
    /// the rational [`ScheduleBuilder`](crate::schedule::ScheduleBuilder)
    /// path".
    #[must_use]
    pub fn try_new(instance: &'a Instance) -> Option<Self> {
        let capacity = schedule_unit_grid(instance)?;
        let m = instance.processors();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut req_units = Vec::with_capacity(instance.total_jobs());
        let mut cost = Vec::with_capacity(instance.total_jobs());
        offsets.push(0u32);
        for i in 0..m {
            for job in instance.processor_jobs(i) {
                let num = u64::try_from(job.requirement.numer()).ok()?;
                let den = u64::try_from(job.requirement.denom()).ok()?;
                req_units.push(num * (capacity / den));
                if job.requirement.is_positive() {
                    let workload = job.requirement.checked_mul(job.volume)?;
                    let num = u64::try_from(workload.numer()).ok()?;
                    let den = u64::try_from(workload.denom()).ok()?;
                    cost.push(num.checked_mul(capacity / den)?);
                } else {
                    cost.push(u64::try_from(job.volume.ceil()).ok()?);
                }
            }
            offsets.push(u32::try_from(req_units.len()).ok()?);
        }
        let frontier = (0..m)
            .map(|i| {
                let row = offsets[i] as usize;
                if offsets[i + 1] as usize > row {
                    cost[row]
                } else {
                    0
                }
            })
            .collect();
        Some(ScaledScheduleBuilder {
            instance,
            capacity,
            offsets,
            req_units,
            cost,
            next_job: vec![0; m],
            frontier,
            steps: Vec::new(),
        })
    }

    /// The instance being scheduled.
    #[must_use]
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The unit grid `D`: a full time step hands out exactly `capacity`
    /// units, and a share of `u` units round-trips to the exact [`Ratio`]
    /// `u / capacity`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of steps emitted so far.
    #[must_use]
    pub fn current_step(&self) -> usize {
        self.steps.len()
    }

    fn job_slot(&self, processor: usize) -> Option<usize> {
        let slot = self.offsets[processor] as usize + self.next_job[processor];
        (slot < self.offsets[processor + 1] as usize).then_some(slot)
    }

    /// The active (first unfinished) job of processor `i`.
    #[must_use]
    pub fn active_job(&self, processor: usize) -> Option<JobId> {
        self.job_slot(processor)
            .map(|_| JobId::new(processor, self.next_job[processor]))
    }

    /// Requirement of the active job of processor `i` in units.
    #[must_use]
    pub fn active_requirement_units(&self, processor: usize) -> Option<u64> {
        self.job_slot(processor).map(|slot| self.req_units[slot])
    }

    /// Whether processor `i` still has unfinished jobs.
    #[must_use]
    pub fn is_active(&self, processor: usize) -> bool {
        self.job_slot(processor).is_some()
    }

    /// Number of unfinished jobs on processor `i` (the paper's `nᵢ(t)`).
    #[must_use]
    pub fn unfinished_jobs(&self, processor: usize) -> usize {
        (self.offsets[processor + 1] as usize - self.offsets[processor] as usize)
            - self.next_job[processor]
    }

    /// Remaining workload `r · (remaining volume)` of the active job in
    /// units — the total resource still needed to finish it (zero if the
    /// processor is idle or its active job needs no resource).
    #[must_use]
    pub fn remaining_workload_units(&self, processor: usize) -> u64 {
        match self.job_slot(processor) {
            Some(slot) if self.req_units[slot] > 0 => self.frontier[processor],
            _ => 0,
        }
    }

    /// Maximum resource the active job of processor `i` can usefully absorb
    /// in a single step, in units: `min(remaining workload, r·D)` — exactly
    /// `r · min(remaining volume, 1)` on the unit grid.
    #[must_use]
    pub fn step_demand_units(&self, processor: usize) -> u64 {
        match self.job_slot(processor) {
            Some(slot) => self.frontier[processor].min(self.req_units[slot]),
            None => 0,
        }
    }

    /// Whether every job of the instance has been completed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.processors()).all(|i| !self.is_active(i))
    }

    /// Applies one time step with the given resource shares (in units) and
    /// advances the simulated state.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release builds alike) if the shares are
    /// infeasible — algorithms must never emit an infeasible step.
    pub fn push_step(&mut self, shares: Vec<u64>) {
        assert_eq!(
            shares.len(),
            self.processors(),
            "step must assign a share to every processor"
        );
        let mut total: u64 = 0;
        for (i, &share) in shares.iter().enumerate() {
            assert!(
                share <= self.capacity,
                "share of {share} units for processor {i} exceeds the capacity {}",
                self.capacity
            );
            // Cannot overflow: try_new guarantees (m + 1)·capacity fits u64.
            total += share;
        }
        assert!(
            total <= self.capacity,
            "step overuses the resource: {total} units assigned, capacity {}",
            self.capacity
        );

        for (i, &share) in shares.iter().enumerate() {
            let Some(slot) = self.job_slot(i) else {
                continue;
            };
            if self.req_units[slot] > 0 {
                // Consumption = min(share, step demand); remaining workload
                // decreases by exactly the consumed units.
                let consumed = share.min(self.frontier[i].min(self.req_units[slot]));
                self.frontier[i] -= consumed;
            } else {
                // Zero-requirement jobs advance one volume unit per step for
                // free; `frontier` counts their remaining steps.
                self.frontier[i] -= 1;
            }
            if self.frontier[i] == 0 {
                self.next_job[i] += 1;
                if let Some(next_slot) = self.job_slot(i) {
                    self.frontier[i] = self.cost[next_slot];
                }
            }
        }
        self.steps.push(shares);
    }

    /// Finalizes the schedule, converting every unit share back to the exact
    /// rational `units / capacity`.
    ///
    /// # Panics
    ///
    /// Panics if jobs remain unfinished — that would be an algorithm bug.
    #[must_use]
    pub fn finish(self) -> Schedule {
        assert!(
            self.all_done(),
            "ScaledScheduleBuilder::finish called with unfinished jobs"
        );
        let capacity = i128::from(self.capacity);
        Schedule::new(
            self.steps
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|units| Ratio::new(i128::from(units), capacity))
                        .collect()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::rational::ratio;

    #[test]
    fn lcm_and_units_are_exact() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 3), ratio(1, 4)])
            .processor([ratio(5, 6)])
            .build();
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.capacity(), 12);
        assert_eq!(scaled.row(0), &[4, 3]);
        assert_eq!(scaled.row(1), &[10]);
        assert_eq!(scaled.processors(), 2);
        assert_eq!(scaled.total_jobs(), 3);
        assert_eq!(scaled.jobs_on(0), 2);
        assert_eq!(scaled.unit_req(1, 0), 10);
    }

    #[test]
    fn round_trips_every_requirement() {
        let inst = Instance::unit_from_percentages(&[&[20, 10, 0, 100], &[55, 90], &[33]]);
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        for i in 0..inst.processors() {
            for (j, job) in inst.processor_jobs(i).iter().enumerate() {
                assert_eq!(scaled.to_ratio(scaled.unit_req(i, j)), job.requirement);
            }
        }
    }

    #[test]
    fn empty_processors_give_empty_rows() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2)])
            .empty_processor()
            .build();
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.jobs_on(1), 0);
        assert!(scaled.row(1).is_empty());
    }

    #[test]
    fn zero_and_full_requirements() {
        let inst = Instance::unit_from_percentages(&[&[0, 100], &[100, 0]]);
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.capacity(), 1);
        assert_eq!(scaled.row(0), &[0, 1]);
        assert_eq!(scaled.to_ratio(0), Ratio::ZERO);
        assert_eq!(scaled.to_ratio(1), Ratio::ONE);
    }

    #[test]
    fn near_u64_max_capacity_is_accepted_for_solvers() {
        // Largest prime below 2^63: `2·D` still fits u64, so the solver view
        // scales regardless of the processor count (the pre-ISSUE-4
        // `(m + 1)·D` headroom would have rejected this for m ≥ 2), while
        // the scheduling-layer grid keeps its wider `(m + 1)·D` reserve and
        // correctly declines.
        let p: i128 = 9_223_372_036_854_775_783;
        let inst = InstanceBuilder::new()
            .processor([ratio(p - 1, p)])
            .processor([ratio(p - 1, p)])
            .processor([ratio(p - 1, p)])
            .build();
        let scaled = ScaledInstance::try_new(&inst).expect("2·D headroom fits u64");
        assert_eq!(scaled.capacity(), 9_223_372_036_854_775_783u64);
        assert_eq!(scaled.row(0), &[9_223_372_036_854_775_782u64]);
        assert_eq!(scaled.to_ratio(scaled.unit_req(0, 0)), ratio(p - 1, p));
        assert!(schedule_unit_grid(&inst).is_none());
        assert!(ScaledScheduleBuilder::try_new(&inst).is_none());
    }

    #[test]
    fn overflowing_lcm_is_rejected() {
        // Denominators are pairwise-coprime large primes: the LCM exceeds the
        // u64 headroom bound and construction must decline, not panic.
        let primes: [i128; 4] = [4_294_967_291, 4_294_967_279, 4_294_967_231, 4_294_967_197];
        let inst = InstanceBuilder::new()
            .processor(primes.map(|p| ratio(1, p)))
            .build();
        assert!(ScaledInstance::try_new(&inst).is_none());
        assert!(schedule_unit_grid(&inst).is_none());
        assert!(ScaledScheduleBuilder::try_new(&inst).is_none());
    }

    #[test]
    fn largest_remainder_sums_to_pool_and_respects_weights() {
        assert_eq!(largest_remainder_split(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(largest_remainder_split(5, &[7, 3]), vec![4, 1]);
        assert_eq!(largest_remainder_split(7, &[0, 0]), vec![0, 0]);
        assert_eq!(
            largest_remainder_split(3, &[1, 0, 1, 0, 1]),
            vec![1, 0, 1, 0, 1]
        );
        // One huge and many tiny demands: the pool is fully assigned and the
        // huge demand never exceeds the pool it can absorb.
        let shares = largest_remainder_split(100, &[1_000_000, 1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        for (share, weight) in shares.iter().zip([1_000_000u64, 1, 1, 1]) {
            assert!(*share <= weight);
        }
        // Oversubscribed splits never exceed the weight (demand cap).
        for pool in 1..=20u64 {
            for weights in [vec![3u64, 9, 8, 1], vec![20, 1, 1], vec![5, 5, 5, 5]] {
                let total: u64 = weights.iter().sum();
                if total <= pool {
                    continue;
                }
                let shares = largest_remainder_split(pool, &weights);
                assert_eq!(shares.iter().sum::<u64>(), pool);
                assert!(shares.iter().zip(&weights).all(|(s, w)| s <= w));
            }
        }
    }

    #[test]
    fn ratio_split_matches_integer_split_on_the_same_grid() {
        let grid = 60u64;
        for weights in [
            vec![7u64, 3, 0, 12],
            vec![1, 1, 1],
            vec![59, 1],
            vec![60, 60, 60],
        ] {
            let integer = largest_remainder_split(grid, &weights);
            let ratios: Vec<Ratio> = weights
                .iter()
                .map(|&w| Ratio::new(i128::from(w), i128::from(grid)))
                .collect();
            let rational = largest_remainder_split_ratio(i128::from(grid), &ratios);
            for (u, r) in integer.iter().zip(&rational) {
                assert_eq!(Ratio::new(i128::from(*u), i128::from(grid)), *r);
            }
        }
    }

    #[test]
    fn schedule_builder_mirrors_ratio_builder() {
        use crate::schedule::ScheduleBuilder;
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2)])
            .processor([ratio(3, 4), ratio(1, 4)])
            .build();
        let mut scaled = ScaledScheduleBuilder::try_new(&inst).unwrap();
        let mut rational = ScheduleBuilder::new(&inst);
        assert_eq!(scaled.capacity(), 4);
        let d = i128::from(scaled.capacity());
        while !scaled.all_done() {
            assert!(!rational.all_done());
            let m = scaled.processors();
            for i in 0..m {
                assert_eq!(scaled.is_active(i), rational.is_active(i));
                assert_eq!(scaled.active_job(i), rational.active_job(i));
                assert_eq!(scaled.unfinished_jobs(i), rational.unfinished_jobs(i));
                assert_eq!(
                    Ratio::new(i128::from(scaled.step_demand_units(i)), d),
                    rational.step_demand(i)
                );
                assert_eq!(
                    Ratio::new(i128::from(scaled.remaining_workload_units(i)), d),
                    rational.remaining_workload(i)
                );
            }
            // Serve in processor order.
            let mut units = vec![0u64; m];
            let mut left = scaled.capacity();
            for (i, unit) in units.iter_mut().enumerate() {
                *unit = scaled.step_demand_units(i).min(left);
                left -= *unit;
            }
            rational.push_step(
                units
                    .iter()
                    .map(|&u| Ratio::new(i128::from(u), d))
                    .collect(),
            );
            scaled.push_step(units);
        }
        assert!(rational.all_done());
        assert_eq!(scaled.finish(), rational.finish());
    }

    #[test]
    fn schedule_builder_handles_volumes_and_zero_requirements() {
        use crate::job::Job;
        // p0: a 2.5-step zero-requirement job then a 50% job;
        // p1: a volume-3 job at requirement 1/4 (workload 3/4).
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ZERO, ratio(5, 2)), Job::unit(ratio(1, 2))])
            .processor_jobs([Job::new(ratio(1, 4), ratio(3, 1))])
            .build();
        let mut b = ScaledScheduleBuilder::try_new(&inst).unwrap();
        assert_eq!(b.capacity(), 4);
        // Zero-requirement frontier: no demand, no workload.
        assert_eq!(b.step_demand_units(0), 0);
        assert_eq!(b.remaining_workload_units(0), 0);
        assert_eq!(b.active_requirement_units(0), Some(0));
        // Volume-3 job: demand capped at one step's worth (r·D = 1 unit).
        assert_eq!(b.step_demand_units(1), 1);
        assert_eq!(b.remaining_workload_units(1), 3);
        for step in 0..3 {
            assert_eq!(b.unfinished_jobs(0), 2, "step {step}");
            b.push_step(vec![0, 1]);
        }
        // The free job took ⌈5/2⌉ = 3 steps; p1's volume job finished too.
        assert_eq!(b.unfinished_jobs(0), 1);
        assert_eq!(b.unfinished_jobs(1), 0);
        assert_eq!(b.step_demand_units(0), 2);
        b.push_step(vec![2, 0]);
        assert!(b.all_done());
        let schedule = b.finish();
        assert_eq!(schedule.makespan(&inst).unwrap(), 4);
        assert_eq!(schedule.share(3, 0), ratio(1, 2));
        // The exact trace agrees with the scaled bookkeeping step for step.
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.completion_step(JobId::new(0, 0)), Some(2));
        assert_eq!(trace.completion_step(JobId::new(1, 0)), Some(2));
        assert_eq!(trace.completion_step(JobId::new(0, 1)), Some(3));
    }

    #[test]
    #[should_panic(expected = "overuses the resource")]
    fn schedule_builder_rejects_overuse() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50]]);
        let mut b = ScaledScheduleBuilder::try_new(&inst).unwrap();
        let over = b.capacity();
        b.push_step(vec![over, 1]);
    }

    #[test]
    #[should_panic(expected = "unfinished jobs")]
    fn schedule_builder_finish_requires_completion() {
        let inst = Instance::unit_from_percentages(&[&[50]]);
        let b = ScaledScheduleBuilder::try_new(&inst).unwrap();
        let _ = b.finish();
    }

    #[test]
    fn extra_layers_get_their_own_exact_grids() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 4)])
            .processor([ratio(3, 4)])
            .extra_layer([vec![ratio(1, 3), ratio(5, 6)], vec![Ratio::ZERO]])
            .build();
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.resources(), 2);
        // The base layer is untouched by the extra one…
        assert_eq!(scaled.capacity(), 4);
        assert_eq!(scaled.layer_capacity(0), 4);
        assert_eq!(scaled.layer_row(0, 0), &[2, 1]);
        // …and the extra layer lives on its own LCM grid (1/3, 5/6 → 6).
        assert_eq!(scaled.layer_capacity(1), 6);
        assert_eq!(scaled.layer_row(1, 0), &[2, 5]);
        assert_eq!(scaled.layer_row(1, 1), &[0]);
        assert_eq!(scaled.layer_unit_req(1, 0, 1), 5);
        // Exact rational round-trip per layer.
        for i in 0..inst.processors() {
            for j in 0..inst.jobs_on(i) {
                for r in 0..2 {
                    assert_eq!(
                        scaled.to_ratio_on(r, scaled.layer_unit_req(r, i, j)),
                        inst.requirement_on(r, crate::job::JobId::new(i, j))
                    );
                }
            }
        }
    }

    #[test]
    fn single_resource_scaling_is_unchanged_by_the_multi_extension() {
        let inst = Instance::unit_from_percentages(&[&[60, 40], &[50]]);
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.resources(), 1);
        assert_eq!(scaled.layer_capacity(0), scaled.capacity());
        assert_eq!(scaled.layer_row(0, 0), scaled.row(0));
        assert_eq!(scaled.to_ratio_on(0, 6), scaled.to_ratio(6));
    }

    #[test]
    fn overflowing_extra_layer_is_rejected() {
        let primes: [i128; 4] = [4_294_967_291, 4_294_967_279, 4_294_967_231, 4_294_967_197];
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2), ratio(1, 2), ratio(1, 2)])
            .extra_layer([primes.map(|p| ratio(1, p)).to_vec()])
            .build();
        assert!(ScaledInstance::try_new(&inst).is_none());
    }

    #[test]
    fn schedule_grid_covers_workload_denominators() {
        use crate::job::Job;
        // Requirement 1/3 with volume 5/2: the workload 5/6 forces grid 6.
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 3), ratio(5, 2))])
            .build();
        assert_eq!(schedule_unit_grid(&inst), Some(6));
        // A zero-requirement job's fractional volume does not inflate the
        // grid (it is tracked by step count, not workload units).
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ZERO, ratio(5, 7))])
            .processor([ratio(1, 2)])
            .build();
        assert_eq!(schedule_unit_grid(&inst), Some(2));
    }
}
