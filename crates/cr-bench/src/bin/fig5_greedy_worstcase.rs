//! E5 — regenerates Figure 5 / Theorem 8: on the block construction,
//! GreedyBalance needs 2m − 1 steps per block while the optimum needs
//! essentially m, so its ratio tends to 2 − 1/m; the factor is tight.

use cr_algos::{opt_m_makespan, GreedyBalance, Scheduler};
use cr_bench::{markdown_table, ExperimentRow};
use cr_core::bounds;
use cr_instances::{greedy_balance_max_blocks, greedy_balance_worst_case, greedy_balance_worst_case_steps};
use cr_viz::render_instance;

fn main() {
    println!("E5 / Figure 5 — GreedyBalance worst-case blocks (ratio → 2 − 1/m)\n");

    // The exact Figure 5 instance: m = 3, ε = 0.01, three blocks.
    let fig5 = greedy_balance_worst_case(3, 100, 3);
    println!("{}", render_instance(&fig5));

    let mut rows = Vec::new();
    for m in 2..=6usize {
        let max_blocks = greedy_balance_max_blocks(m, 1000);
        for blocks in [1usize, 4, 16, 64] {
            if blocks > max_blocks {
                continue;
            }
            let instance = greedy_balance_worst_case(m, 1000, blocks);
            let greedy = GreedyBalance::new().makespan(&instance);
            assert_eq!(
                greedy,
                greedy_balance_worst_case_steps(m, blocks),
                "GreedyBalance must need exactly (2m − 1) steps per block"
            );
            // Reference: exact optimum on tiny cases, workload lower bound
            // otherwise (the optimum approaches it as ε → 0).
            let (reference, is_opt) = if m * blocks * m <= 12 {
                (opt_m_makespan(&instance), true)
            } else {
                (bounds::workload_bound_steps(&instance), false)
            };
            rows.push(ExperimentRow::new(
                format!("fig5 m={m} blocks={blocks}"),
                "GreedyBalance",
                &instance,
                greedy,
                reference,
                is_opt,
            ));
        }
    }
    println!("{}", markdown_table("Block construction (Theorem 8)", &rows));
    for m in 2..=6usize {
        println!("  m = {m}: paper bound 2 − 1/m = {:.3}", 2.0 - 1.0 / m as f64);
    }
    println!(
        "\npaper: the ratio of GreedyBalance on this family approaches 2 − 1/m from below as\n\
         the number of blocks grows and ε shrinks; Theorem 7 shows no balanced schedule can\n\
         be worse."
    );
}
