//! Tasks and phases of the simulated many-core system.
//!
//! A *task* is pinned to one core and consists of a sequence of *phases*;
//! each phase declares the share of the memory/I-O bus it needs to progress
//! at full speed (its bandwidth requirement) and its length in time steps at
//! full speed.  This is exactly the job-chain structure of the CRSharing
//! model, and the module provides lossless conversions in both directions.

use cr_core::{Instance, Job, Ratio};
use serde::{Deserialize, Serialize};

/// One phase of a task: bandwidth requirement and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Share of the bus needed to run at full speed, in `[0, 1]`.
    pub bandwidth: Ratio,
    /// Length of the phase in time steps when running at full speed.
    pub length: Ratio,
}

impl Phase {
    /// Creates a phase.
    #[must_use]
    pub fn new(bandwidth: Ratio, length: Ratio) -> Self {
        Phase { bandwidth, length }
    }

    /// A unit-length phase.
    #[must_use]
    pub fn unit(bandwidth: Ratio) -> Self {
        Phase {
            bandwidth,
            length: Ratio::ONE,
        }
    }

    /// Total bus time the phase consumes when run at full speed
    /// (`bandwidth · length`).
    #[must_use]
    pub fn bus_demand(&self) -> Ratio {
        self.bandwidth * self.length
    }
}

/// A task: a named sequence of phases pinned to one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name used in simulation reports.
    pub name: String,
    /// The phases, processed strictly in order.
    pub phases: Vec<Phase>,
}

impl Task {
    /// Creates a task.
    #[must_use]
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        Task {
            name: name.into(),
            phases,
        }
    }

    /// Number of phases.
    #[must_use]
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The time the task needs when it always receives its full bandwidth
    /// requirement: `Σ ⌈length⌉` (each phase runs at most one volume unit per
    /// step, and phases cannot share a step).
    #[must_use]
    pub fn ideal_completion_time(&self) -> usize {
        self.phases
            .iter()
            .map(|p| usize::try_from(p.length.ceil().max(0)).unwrap_or(0).max(1))
            .sum()
    }

    /// Total bus time the task consumes.
    #[must_use]
    pub fn bus_demand(&self) -> Ratio {
        self.phases.iter().map(Phase::bus_demand).sum()
    }
}

/// Converts a set of tasks (one per core) into a CRSharing [`Instance`].
#[must_use]
pub fn tasks_to_instance(tasks: &[Task]) -> Instance {
    let rows: Vec<Vec<Job>> = tasks
        .iter()
        .map(|task| {
            task.phases
                .iter()
                .map(|p| Job::new(p.bandwidth, p.length))
                .collect()
        })
        .collect();
    Instance::new(rows).expect("task phases form a valid instance")
}

/// Converts a CRSharing instance into tasks named `core0`, `core1`, ….
#[must_use]
pub fn instance_to_tasks(instance: &Instance) -> Vec<Task> {
    (0..instance.processors())
        .map(|i| {
            let phases = instance
                .processor_jobs(i)
                .iter()
                .map(|job| Phase::new(job.requirement, job.volume))
                .collect();
            Task::new(format!("core{i}"), phases)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::ratio;

    #[test]
    fn phase_and_task_accounting() {
        let task = Task::new(
            "io-heavy",
            vec![
                Phase::unit(ratio(9, 10)),
                Phase::new(ratio(1, 10), ratio(3, 1)),
            ],
        );
        assert_eq!(task.num_phases(), 2);
        assert_eq!(task.ideal_completion_time(), 1 + 3);
        assert_eq!(task.bus_demand(), ratio(9, 10) + ratio(3, 10));
    }

    #[test]
    fn conversion_roundtrip() {
        let tasks = vec![
            Task::new(
                "core0",
                vec![Phase::unit(ratio(1, 2)), Phase::unit(ratio(1, 4))],
            ),
            Task::new("core1", vec![Phase::new(ratio(3, 4), ratio(2, 1))]),
        ];
        let instance = tasks_to_instance(&tasks);
        assert_eq!(instance.processors(), 2);
        assert_eq!(instance.total_workload(), ratio(3, 4) + ratio(3, 2));
        let back = instance_to_tasks(&instance);
        assert_eq!(back[0].phases, tasks[0].phases);
        assert_eq!(back[1].phases, tasks[1].phases);
    }

    #[test]
    fn fractional_phase_lengths_round_up_in_ideal_time() {
        let task = Task::new("t", vec![Phase::new(ratio(1, 2), ratio(5, 2))]);
        assert_eq!(task.ideal_completion_time(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let task = Task::new("core0", vec![Phase::unit(ratio(1, 3))]);
        let json = serde_json::to_string(&task).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, task);
    }
}
