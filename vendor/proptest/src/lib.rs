//! Minimal, workspace-local stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(...)]` header, range and
//! tuple strategies, [`Strategy::prop_map`], `prop::collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: generation is derived deterministically
//! from the test name (every run explores the same cases — CI is
//! reproducible by construction) and failing inputs are reported but not
//! shrunk.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Frequently used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Namespaced strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection_vec as vec;
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
    /// Upper bound on rejected (`prop_assume!`) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(64).max(4096),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic generator driving the strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so that every test explores a
    /// fixed, reproducible case sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                ((self.start as i128) + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                ((lo as i128) + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// `i128` ranges need widening arithmetic of their own.
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start + rng.below(span) as i128
    }
}

impl Strategy for RangeInclusive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi.wrapping_sub(lo) as u128 + 1;
        lo + rng.below(span) as i128
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` (use as
/// `prop::collection::vec`).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u128 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Creates a strategy producing vectors of `element` values with a length
/// drawn from `size`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Runs the body of one `proptest!`-generated test (implementation detail of
/// the macro; public so that the expansion can reach it).
pub fn run_proptest_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected}) — \
                     weaken the `prop_assume!` conditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed after {accepted} passing cases: {msg}");
            }
        }
    }
}

/// Defines deterministic property tests.  Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        let strat = (1i64..=100).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((2..=200).contains(&v));
            assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::from_name("vecs");
        let strat = collection_vec(collection_vec(0u64..10, 2..=3), 1..=4);
        for _ in 0..200 {
            let outer = strat.generate(&mut rng);
            assert!((1..=4).contains(&outer.len()));
            for inner in outer {
                assert!((2..=3).contains(&inner.len()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_accepts_and_rejects(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert!(a != b);
            prop_assert_eq!(a.max(b), b.max(a));
            prop_assert_ne!(a, b);
        }
    }
}
