//! **vocab_sync** — the workspace's exported vocabularies must not drift
//! from their documentation, in both directions:
//!
//! * every `kind` string in `SolveError::ALL_KINDS` (`cr-algos`) and
//!   `WIRE_ERROR_KINDS` (`cr-service`) appears in `docs/WIRE.md`, and
//!   every kind the document's tables promise exists in the code —
//!   `cr-serve` clients dispatch on these strings, so a kind that exists
//!   only on one side is a silent protocol break;
//! * every metric and span name in `METRIC_NAMES` / `SPAN_NAMES`
//!   (`cr-obs`) appears in the catalog tables of
//!   `docs/OBSERVABILITY.md`, and every catalogued name exists in the
//!   code — dashboards and the CI smoke test key on these strings.
//!
//! The code side is read from the lexed token stream (string literals
//! between the named array's brackets); the doc side from the
//! `| \`name\` | …` table rows of every section whose heading contains
//! "error kinds" (`WIRE.md`) or "catalog" (`OBSERVABILITY.md`).

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Rule name.
pub const RULE: &str = "vocab_sync";

/// One vocabulary string with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kind {
    /// The snake_case kind string.
    pub name: String,
    /// 1-based line it was declared on.
    pub line: u32,
}

/// Extracts the string literals of the `const NAME: … = [ … ];` array from
/// a lexed file. `None` when the array is missing entirely.
#[must_use]
pub fn array_strings(tokens: &[Token], name: &str) -> Option<Vec<Kind>> {
    // Prefer the `const NAME` declaration site over later uses.
    let decl = tokens
        .iter()
        .enumerate()
        .position(|(i, t)| {
            t.is_ident(name)
                && tokens[..i]
                    .iter()
                    .rfind(|p| !p.is_comment())
                    .is_some_and(|p| p.is_ident("const"))
        })
        .or_else(|| tokens.iter().position(|t| t.is_ident(name)))?;
    // Find the opening `[` of the initializer (skip the type annotation's
    // own brackets by waiting for the `=`).
    let eq = (decl..tokens.len()).find(|&j| tokens[j].is_punct('='))?;
    let open = (eq..tokens.len()).find(|&j| tokens[j].is_punct('['))?;
    let mut depth = 0i64;
    let mut out = Vec::new();
    for tok in &tokens[open..] {
        match tok.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Str => out.push(Kind {
                name: tok.str_content().to_string(),
                line: tok.line,
            }),
            _ => {}
        }
    }
    Some(out)
}

/// Extracts the documented kinds from `WIRE.md` text: first-column
/// backticked entries of table rows inside "… error kinds" sections.
#[must_use]
pub fn doc_kinds(markdown: &str) -> Vec<Kind> {
    doc_entries(markdown, "error kinds")
}

/// Extracts first-column backticked table entries from every section of
/// `markdown` whose heading (any `#` level, case-insensitive) contains
/// `heading_needle`.
#[must_use]
pub fn doc_entries(markdown: &str, heading_needle: &str) -> Vec<Kind> {
    let mut out = Vec::new();
    let mut in_kinds_section = false;
    for (idx, line) in markdown.lines().enumerate() {
        let line_no = idx as u32 + 1;
        if let Some(heading) = line.strip_prefix('#') {
            in_kinds_section = heading.to_ascii_lowercase().contains(heading_needle);
            continue;
        }
        if !in_kinds_section {
            continue;
        }
        let Some(rest) = line.trim_start().strip_prefix("| `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            let name = &rest[..end];
            if !name.is_empty() {
                out.push(Kind {
                    name: name.to_string(),
                    line: line_no,
                });
            }
        }
    }
    out
}

/// Cross-checks the two code vocabularies against the document.
///
/// `solver` / `wire` are the lexed `solver.rs` / `wire.rs` token streams
/// with their workspace-relative paths; `doc` is `(path, content)` of
/// `WIRE.md`.
pub fn check(
    solver: (&str, &[Token]),
    wire: (&str, &[Token]),
    doc: (&str, &str),
    diags: &mut Vec<Diagnostic>,
) {
    let mut code: Vec<(String, Kind)> = Vec::new();
    for ((path, tokens), array) in [(solver, "ALL_KINDS"), (wire, "WIRE_ERROR_KINDS")] {
        match array_strings(tokens, array) {
            Some(kinds) => {
                code.extend(kinds.into_iter().map(|k| (path.to_string(), k)));
            }
            None => diags.push(Diagnostic {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                message: format!("expected a `{array}` kind array in this file, found none"),
            }),
        }
    }
    let documented = doc_kinds(doc.1);

    for (path, kind) in &code {
        if !documented.iter().any(|d| d.name == kind.name) {
            diags.push(Diagnostic {
                path: path.clone(),
                line: kind.line,
                rule: RULE,
                message: format!(
                    "error kind `{}` is emitted by the code but undocumented: add a \
                     `| \\`{}\\` | … |` row to the kind tables in {}",
                    kind.name, kind.name, doc.0
                ),
            });
        }
    }
    for d in &documented {
        if !code.iter().any(|(_, k)| k.name == d.name) {
            diags.push(Diagnostic {
                path: doc.0.to_string(),
                line: d.line,
                rule: RULE,
                message: format!(
                    "documented error kind `{}` no longer exists in `ALL_KINDS` or \
                     `WIRE_ERROR_KINDS`: remove the row or restore the kind",
                    d.name
                ),
            });
        }
    }
}

/// Cross-checks the observability vocabulary against its catalog.
///
/// `names` is the lexed `cr-obs` `names.rs` token stream with its
/// workspace-relative path; `doc` is `(path, content)` of
/// `docs/OBSERVABILITY.md`. The union of the `METRIC_NAMES` and
/// `SPAN_NAMES` arrays must match the union of all catalog-table rows
/// (sections whose heading contains "catalog"), in both directions.
pub fn check_obs(names: (&str, &[Token]), doc: (&str, &str), diags: &mut Vec<Diagnostic>) {
    let (path, tokens) = names;
    let mut code: Vec<Kind> = Vec::new();
    for array in ["METRIC_NAMES", "SPAN_NAMES"] {
        match array_strings(tokens, array) {
            Some(kinds) => code.extend(kinds),
            None => diags.push(Diagnostic {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                message: format!("expected a `{array}` name array in this file, found none"),
            }),
        }
    }
    let documented = doc_entries(doc.1, "catalog");

    for kind in &code {
        if !documented.iter().any(|d| d.name == kind.name) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: kind.line,
                rule: RULE,
                message: format!(
                    "observability name `{}` is declared in the code but uncatalogued: add a \
                     `| \\`{}\\` | … |` row to the catalog tables in {}",
                    kind.name, kind.name, doc.0
                ),
            });
        }
    }
    for d in &documented {
        if !code.iter().any(|k| k.name == d.name) {
            diags.push(Diagnostic {
                path: doc.0.to_string(),
                line: d.line,
                rule: RULE,
                message: format!(
                    "catalogued observability name `{}` no longer exists in `METRIC_NAMES` or \
                     `SPAN_NAMES`: remove the row or restore the name",
                    d.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SOLVER: &str = r#"
        impl SolveError {
            pub const ALL_KINDS: [&'static str; 2] = ["infeasible", "budget_exhausted"];
        }
    "#;
    const WIRE: &str = r#"pub const WIRE_ERROR_KINDS: [&str; 1] = ["bad_request"];"#;

    fn doc(kinds: &[&str]) -> String {
        let rows: String = kinds
            .iter()
            .map(|k| format!("| `{k}` | when |\n"))
            .collect();
        format!("# Wire\n\n### Solver error kinds\n\n| kind | emitted when |\n|---|---|\n{rows}")
    }

    #[test]
    fn in_sync_vocabulary_passes() {
        let text = doc(&["infeasible", "budget_exhausted", "bad_request"]);
        let mut diags = Vec::new();
        check(
            ("solver.rs", &lex(SOLVER)),
            ("wire.rs", &lex(WIRE)),
            ("WIRE.md", &text),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn undocumented_code_kind_is_flagged() {
        let text = doc(&["infeasible", "bad_request"]);
        let mut diags = Vec::new();
        check(
            ("solver.rs", &lex(SOLVER)),
            ("wire.rs", &lex(WIRE)),
            ("WIRE.md", &text),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("budget_exhausted"));
        assert_eq!(diags[0].path, "solver.rs");
    }

    #[test]
    fn stale_doc_kind_is_flagged() {
        let text = doc(&["infeasible", "budget_exhausted", "bad_request", "gone_kind"]);
        let mut diags = Vec::new();
        check(
            ("solver.rs", &lex(SOLVER)),
            ("wire.rs", &lex(WIRE)),
            ("WIRE.md", &text),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("gone_kind"));
        assert_eq!(diags[0].path, "WIRE.md");
    }

    #[test]
    fn missing_array_is_flagged() {
        let mut diags = Vec::new();
        check(
            ("solver.rs", &lex("fn nothing() {}")),
            ("wire.rs", &lex(WIRE)),
            ("WIRE.md", &doc(&["bad_request"])),
            &mut diags,
        );
        assert!(diags.iter().any(|d| d.message.contains("ALL_KINDS")));
    }

    const NAMES: &str = r#"
        pub const METRIC_NAMES: [&str; 2] = ["sim.steps", "serve.batches"];
        pub const SPAN_NAMES: [&str; 1] = ["sim.run"];
    "#;

    fn obs_doc(names: &[&str]) -> String {
        let rows: String = names.iter().map(|n| format!("| `{n}` | … |\n")).collect();
        format!("# Observability\n\n## Metric catalog\n\n| name | meaning |\n|---|---|\n{rows}")
    }

    #[test]
    fn in_sync_obs_vocabulary_passes() {
        let text = obs_doc(&["sim.steps", "serve.batches", "sim.run"]);
        let mut diags = Vec::new();
        check_obs(
            ("names.rs", &lex(NAMES)),
            ("OBSERVABILITY.md", &text),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uncatalogued_obs_name_is_flagged() {
        let text = obs_doc(&["sim.steps", "sim.run"]);
        let mut diags = Vec::new();
        check_obs(
            ("names.rs", &lex(NAMES)),
            ("OBSERVABILITY.md", &text),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("serve.batches"));
        assert_eq!(diags[0].path, "names.rs");
    }

    #[test]
    fn stale_obs_catalog_row_is_flagged() {
        let text = obs_doc(&["sim.steps", "serve.batches", "sim.run", "ghost.metric"]);
        let mut diags = Vec::new();
        check_obs(
            ("names.rs", &lex(NAMES)),
            ("OBSERVABILITY.md", &text),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("ghost.metric"));
        assert_eq!(diags[0].path, "OBSERVABILITY.md");
    }

    #[test]
    fn missing_obs_arrays_are_flagged() {
        let mut diags = Vec::new();
        check_obs(
            ("names.rs", &lex("fn nothing() {}")),
            ("OBSERVABILITY.md", &obs_doc(&[])),
            &mut diags,
        );
        assert!(diags.iter().any(|d| d.message.contains("METRIC_NAMES")));
        assert!(diags.iter().any(|d| d.message.contains("SPAN_NAMES")));
    }

    #[test]
    fn kinds_outside_error_kind_sections_are_ignored() {
        let text = format!(
            "{}\n### Other table\n\n| `not_a_kind` | x |\n",
            doc(&["infeasible", "budget_exhausted", "bad_request"])
        );
        let mut diags = Vec::new();
        check(
            ("solver.rs", &lex(SOLVER)),
            ("wire.rs", &lex(WIRE)),
            ("WIRE.md", &text),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
