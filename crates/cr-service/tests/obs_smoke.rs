//! End-to-end observability smoke: spawn the `cr-serve` binary in socket
//! mode, replay the committed golden batch, and assert the server-side
//! telemetry — the expanded stats frame's cache counters and the full
//! `{"control":"metrics"}` dump against a committed golden.
//!
//! The smoke batch is engineered so every number below is derivable by
//! hand: 12 request lines of which 11 parse (the last carries a
//! mismatched resource-layer shape), 7 distinct instances (so 7 cache
//! misses), 4 same-batch duplicates (so 4 cache hits), no evictions, and
//! one structured solver error (the `max_rounds: 1` budget request).
//!
//! Span wall-times are nondeterministic, so the golden normalizes every
//! `"total_ns"` to 0. Regenerate after an intentional telemetry change
//! with:
//!
//! ```console
//! $ OBS_SMOKE_UPDATE=1 cargo test -p cr-service --test obs_smoke
//! ```
//!
//! The whole suite is meaningless without recording compiled in, so it is
//! compiled out under the `obs-off` feature (the obs-off CI build still
//! type-checks it — `cfg` gates the bodies, not the file).

#![cfg(not(feature = "obs-off"))]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const SMOKE_BATCH: &str = include_str!("data/smoke_batch.jsonl");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_golden.jsonl"
);

/// Spawns `cr-serve --listen 127.0.0.1:0` and returns (child, address).
fn spawn_server() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cr-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cr-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listening line");
    let addr = line
        .trim()
        .strip_prefix("{\"listening\":\"")
        .and_then(|rest| rest.strip_suffix("\"}"))
        .unwrap_or_else(|| panic!("unexpected listening line: {line:?}"))
        .to_string();
    (child, addr)
}

/// Sends `line` and reads exactly one reply line.
fn roundtrip(writer: &mut TcpStream, reader: &mut impl BufRead, line: &str) -> String {
    writeln!(writer, "{line}").expect("send line");
    writer.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "server closed early after {line:?}");
    reply.trim_end().to_string()
}

/// Replaces every `"total_ns":<digits>` with `"total_ns":0`.
fn normalize_total_ns(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find("\"total_ns\":") {
        let end = at + "\"total_ns\":".len();
        out.push_str(&rest[..end]);
        out.push('0');
        rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn smoke_batch_telemetry_matches_the_golden() {
    let (mut child, addr) = spawn_server();
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    // Replay the golden batch: 12 requests, one blank-line flush, 12
    // responses in input order.
    let requests: Vec<&str> = SMOKE_BATCH.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(requests.len(), 12, "the smoke batch drifted");
    for request in &requests {
        writeln!(writer, "{request}").expect("send request");
    }
    writeln!(writer).expect("send flush");
    writer.flush().expect("flush");
    for i in 0..requests.len() {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read response");
        assert!(
            reply.starts_with(&format!("{{\"id\":{i},")),
            "response {i} out of order: {reply}"
        );
    }

    // The expanded stats frame: cache behaviour of exactly this batch.
    let stats = roundtrip(&mut writer, &mut reader, "{\"control\":\"stats\"}");
    for pin in [
        "\"cache_hits\":4",
        "\"cache_misses\":7",
        "\"cache_evictions\":0",
    ] {
        assert!(stats.contains(pin), "{pin} not in {stats}");
    }

    // The full metrics dump, against the committed golden (span
    // wall-times normalized away).
    let header = roundtrip(&mut writer, &mut reader, "{\"control\":\"metrics\"}");
    assert!(
        header.starts_with("{\"control\":\"metrics\",\"metrics\":"),
        "{header}"
    );
    let body_lines: usize = header
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|n| n.parse::<usize>().expect("count"))
        .sum();
    let mut dump = vec![header];
    for _ in 0..body_lines {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read dump line");
        dump.push(normalize_total_ns(line.trim_end()));
    }
    let mut got = dump.join("\n");
    got.push('\n');

    if std::env::var_os("OBS_SMOKE_UPDATE").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("update the golden");
    } else {
        let want = std::fs::read_to_string(GOLDEN_PATH)
            .expect("tests/data/metrics_golden.jsonl exists (OBS_SMOKE_UPDATE=1 regenerates)");
        assert_eq!(
            got, want,
            "metrics dump drifted from the golden; regenerate deliberately with \
             OBS_SMOKE_UPDATE=1 if the telemetry change is intentional"
        );
    }

    // Graceful drain, then the process must exit cleanly.
    let ack = roundtrip(&mut writer, &mut reader, "{\"control\":\"shutdown\"}");
    assert!(ack.contains("\"draining\":true"), "{ack}");
    let status = child.wait().expect("wait for cr-serve");
    assert!(status.success(), "cr-serve exited {status}");
}
