//! Diagnostics: rustc-style text rendering and hand-rolled JSON output
//! (the crate is dependency-free by design — no serde).

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (`cancel_coverage`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a full lint report as one pretty-printed JSON document (the CI
/// artifact format).
#[must_use]
pub fn render_json(root: &str, diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", json_escape(root)));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diagnostics.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.path),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic {
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "panic_hygiene",
            message: "bare unwrap".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [panic_hygiene] bare unwrap"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_report_shape() {
        let diags = vec![Diagnostic {
            path: "p.rs".into(),
            line: 1,
            rule: "crate_hygiene",
            message: "m".into(),
        }];
        let json = render_json("/r", &diags, 3);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"rule\": \"crate_hygiene\""));
    }
}
