//! Scaled-core vs. rational-core timing for the exact solvers, the
//! scheduling heuristics and the online simulator.
//!
//! Every case dispatches through the shared solver registry (the same
//! `cr_algos::solver` surface `cr-serve` exposes): the scaled column pins
//! [`EnginePreference::Scaled`], the rational column pins
//! [`EnginePreference::Rational`], and the two columns must agree on the
//! summed makespans — the binary asserts this.  Adding a solver to the
//! comparison is one registry registration plus one entry in a method list
//! here; the pre-redesign version duplicated a hand-written match arm per
//! algorithm instead.
//!
//! The online simulator methods (`sim:*`) are integer-native, so their
//! rational column runs the *offline* twin's rational reference on the same
//! workload — the cost model of the pre-ISSUE-3 engine.  The workloads have
//! equal phase counts per task, so every online policy reproduces its
//! offline twin's makespan exactly and the equality assert still holds.
//!
//! Writes `BENCH_exact.json` with per-case medians and speedup factors
//! (the solver-granularity record of the ISSUE-2 ≥5× acceptance target; the
//! pipeline-level number lives in `BENCH_pipeline.json`).
//!
//! Usage: `cargo run --release -p cr-bench --bin bench_exact --
//! [--out-dir DIR] [--iters N]`

#![forbid(unsafe_code)]

use cr_algos::solver::{EnginePreference, SolveRequest, POLY_METHODS};
use cr_bench::pipeline::shared_service;
use cr_core::Instance;
use cr_instances::{
    generate_workload, random_unit_instance, wide_oversubscribed_instance, RandomConfig,
    RequirementProfile, TaskMix, WorkloadConfig,
};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    out_dir: PathBuf,
    iters: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_dir: PathBuf::from("."),
        iters: 5,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--out-dir" => {
                args.out_dir = PathBuf::from(iter.next().expect("--out-dir requires a value"));
            }
            "--iters" => {
                args.iters = iter
                    .next()
                    .expect("--iters requires a value")
                    .parse()
                    .expect("invalid iteration count");
            }
            "--help" | "-h" => {
                println!("usage: bench_exact [--out-dir DIR] [--iters N]");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    args
}

/// Median wall time in milliseconds of `iters` runs of `f` (which must
/// return a checksum so the work cannot be optimized away).
fn median_ms(iters: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(iters);
    let mut checksum = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        checksum = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], checksum)
}

/// Solves `method` on `instance` with a pinned engine preference through
/// the shared registry and returns the makespan.
fn method_makespan(method: &str, engine: EnginePreference, instance: &Instance) -> usize {
    shared_service()
        .solve(&SolveRequest::new(method, instance.clone()).with_engine(engine))
        .unwrap_or_else(|e| panic!("bench solve failed for {method}: {e}"))
        .makespan
        .expect("bench methods report makespans")
}

struct CaseResult {
    case: String,
    solver: String,
    instances: usize,
    scaled_ms: f64,
    rational_ms: f64,
}

/// Times one (case, method) pair: the method's scaled core against a
/// rational reference method (usually itself; the offline twin for `sim:`
/// methods), asserting value equality.
fn measure(
    out: &mut Vec<CaseResult>,
    iters: usize,
    case: impl Into<String>,
    scaled_method: &str,
    rational_method: &str,
    instances: &[Instance],
) {
    let sum_over = |method: &str, engine: EnginePreference| -> usize {
        instances
            .iter()
            .map(|i| method_makespan(method, engine, i))
            .sum()
    };
    // The sim:* methods have no rational core; their scaled column runs the
    // integer engine through Auto.
    let scaled_engine = if scaled_method == rational_method {
        EnginePreference::Scaled
    } else {
        EnginePreference::Auto
    };
    let (scaled_ms, scaled_sum) = median_ms(iters, || sum_over(scaled_method, scaled_engine));
    let (rational_ms, rational_sum) = median_ms(iters, || {
        sum_over(rational_method, EnginePreference::Rational)
    });
    assert_eq!(
        scaled_sum, rational_sum,
        "scaled and rational cores disagree on a makespan ({scaled_method} vs {rational_method})"
    );
    out.push(CaseResult {
        case: case.into(),
        solver: scaled_method.to_string(),
        instances: instances.len(),
        scaled_ms,
        rational_ms,
    });
}

fn main() {
    let args = parse_args();
    let mut results: Vec<CaseResult> = Vec::new();

    // The random-exact grid's (m, n, profile) sweep — the pipeline's hot set.
    for (m, n) in [(2usize, 4usize), (3, 3), (3, 4), (4, 3)] {
        for profile in [RequirementProfile::Uniform, RequirementProfile::Light] {
            let cfg = RandomConfig {
                profile,
                ..RandomConfig::uniform(m, n)
            };
            let instances: Vec<Instance> = (0..10)
                .map(|rep| random_unit_instance(&cfg, 1000 + rep))
                .collect();
            measure(
                &mut results,
                args.iters,
                format!("{profile:?} m={m} n={n}"),
                "OptM",
                "OptM",
                &instances,
            );
        }
    }

    // Wide-m oversubscribed instances: 32 or more simultaneously active
    // processors were a hard error before ISSUE 4 (the scaled engine
    // asserted, the rational path shift-overflowed its u32 subset mask).
    // The family keeps the active set at full width while the heavy chains
    // oversubscribe the resource; see
    // `cr_instances::wide_oversubscribed_instance`.
    for m in [16usize, 32, 48] {
        let instances = vec![wide_oversubscribed_instance(m, 4, 3, 12, 90)];
        measure(
            &mut results,
            args.iters,
            format!("WideOversub m={m}"),
            "OptM",
            "OptM",
            &instances,
        );
    }

    // The two-processor DP at sizes where the O(n²) table dominates.
    for n in [128usize, 512, 1024] {
        let instances: Vec<Instance> = vec![random_unit_instance(&RandomConfig::uniform(2, n), 11)];
        measure(
            &mut results,
            args.iters,
            format!("Uniform m=2 n={n}"),
            "OptTwo",
            "OptTwo",
            &instances,
        );
    }

    // Brute force on a three-processor reference workload.
    let instances: Vec<Instance> = (0..5)
        .map(|rep| random_unit_instance(&RandomConfig::uniform(3, 4), 2000 + rep))
        .collect();
    measure(
        &mut results,
        args.iters,
        "Uniform m=3 n=4",
        "BruteForce",
        "BruteForce",
        &instances,
    );

    // The scheduling layer: the scaled production path vs. the rational
    // reference of all six polynomial methods, straight off the registry.
    for (m, n) in [(8usize, 48usize), (16, 64)] {
        let instances: Vec<Instance> = (0..8)
            .map(|rep| random_unit_instance(&RandomConfig::uniform(m, n), 3000 + rep))
            .collect();
        for method in POLY_METHODS {
            measure(
                &mut results,
                args.iters,
                format!("Uniform m={m} n={n}"),
                method,
                method,
                &instances,
            );
        }
    }

    // The online simulator methods vs. their offline rational twins.
    for (cores, mix) in [(16usize, TaskMix::Mixed), (64, TaskMix::IoBound)] {
        let cfg = WorkloadConfig {
            cores,
            phases_per_task: 16,
            mix,
            denominator: 100,
            unit_phases: true,
        };
        let workloads: Vec<Instance> = (0..4)
            .map(|rep| generate_workload(&cfg, 9000 + cores as u64 + rep))
            .collect();
        for (sim_method, offline_twin) in [
            ("sim:GreedyBalance", "GreedyBalance"),
            ("sim:RoundRobin", "RoundRobin"),
            ("sim:EqualShare", "EqualShare"),
            ("sim:ProportionalShare", "ProportionalShare"),
        ] {
            measure(
                &mut results,
                args.iters,
                format!("{mix:?} cores={cores}"),
                sim_method,
                offline_twin,
                &workloads,
            );
        }
    }

    println!(
        "{:<24} {:<24} {:>6} {:>12} {:>12} {:>9}",
        "case", "solver", "insts", "scaled ms", "rational ms", "speedup"
    );
    for r in &results {
        println!(
            "{:<24} {:<24} {:>6} {:>12.3} {:>12.3} {:>8.1}x",
            r.case,
            r.solver,
            r.instances,
            r.scaled_ms,
            r.rational_ms,
            r.rational_ms / r.scaled_ms.max(1e-9)
        );
    }

    let json = results_json(&results);
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let path = args.out_dir.join("BENCH_exact.json");
    std::fs::write(&path, json).expect("write BENCH_exact.json");
    println!("\nwrote {}", path.display());
}

fn results_json(results: &[CaseResult]) -> String {
    let round = |x: f64| (x * 1000.0).round() / 1000.0;
    let cases: Vec<serde::Value> = results
        .iter()
        .map(|r| {
            serde::Value::Object(vec![
                ("case".to_string(), serde::Value::String(r.case.clone())),
                ("solver".to_string(), serde::Value::String(r.solver.clone())),
                (
                    "instances".to_string(),
                    serde::Value::Number(serde::Number::Int(r.instances as i128)),
                ),
                (
                    "scaled_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round(r.scaled_ms))),
                ),
                (
                    "rational_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round(r.rational_ms))),
                ),
                (
                    "speedup".to_string(),
                    serde::Value::Number(serde::Number::Float(round(
                        r.rational_ms / r.scaled_ms.max(1e-9),
                    ))),
                ),
            ])
        })
        .collect();
    let root = serde::Value::Object(vec![
        (
            "benchmark".to_string(),
            serde::Value::String("exact solver cores: scaled vs rational".to_string()),
        ),
        ("cases".to_string(), serde::Value::Array(cases)),
    ]);
    serde_json::to_string_pretty(&root).expect("benchmark serialization is infallible")
}
