//! End-to-end regression tests driving the `cr-serve` binary itself.

use std::io::Write;
use std::process::{Command, Stdio};

/// Pipes `input` through `cr-serve` in stdin mode and returns stdout lines.
fn run_serve_stdin(input: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cr-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cr-serve");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("wait for cr-serve");
    assert!(output.status.success(), "cr-serve exited {}", output.status);
    String::from_utf8(output.stdout)
        .expect("utf8 stdout")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn blank_line_only_input_answers_bad_request_instead_of_silence() {
    // Regression: a blank-line flush with no accumulated requests used to
    // be swallowed silently and the process exited with no output at all.
    let lines = run_serve_stdin("\n");
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(
        lines[0].contains("\"kind\":\"bad_request\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("empty batch"), "{}", lines[0]);
}

#[test]
fn empty_flushes_consume_ids_between_real_batches() {
    let input = "\n\
        {\"method\":\"GreedyBalance\",\"rows\":[[50,50]]}\n\
        \n\
        \n";
    let lines = run_serve_stdin(input);
    assert_eq!(lines.len(), 3, "{lines:?}");
    // Empty flush (id 0), the real request (id 1), empty flush again (id 2).
    assert!(lines[0].starts_with("{\"id\":0,") && lines[0].contains("bad_request"));
    assert!(lines[1].starts_with("{\"id\":1,") && lines[1].contains("\"makespan\":2"));
    assert!(lines[2].starts_with("{\"id\":2,") && lines[2].contains("bad_request"));
}

#[test]
fn trailing_batch_without_final_blank_line_still_answers_on_eof() {
    let lines = run_serve_stdin("{\"method\":\"Bounds\",\"rows\":[[60,40],[40,60]]}");
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].contains("\"lower_bounds\""), "{}", lines[0]);
}

/// Runs `cr-serve` with `args` and no stdin, returning (exit code, stderr).
fn run_serve_args(args: &[&str]) -> (Option<i32>, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_cr-serve"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run cr-serve");
    (
        output.status.code(),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn unknown_flag_is_a_usage_error_not_a_panic() {
    let (code, stderr) = run_serve_args(&["--no-such-flag"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown flag `--no-such-flag`"), "{stderr}");
    assert!(stderr.contains("usage: cr-serve"), "{stderr}");
    assert!(
        !stderr.contains("panicked"),
        "usage errors must not be panics: {stderr}"
    );
}

#[test]
fn missing_and_malformed_flag_values_are_usage_errors() {
    let (code, stderr) = run_serve_args(&["--quota"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--quota requires a value"), "{stderr}");

    let (code, stderr) = run_serve_args(&["--deadline-ms", "soon"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--deadline-ms"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn bind_failure_is_a_usage_error_not_a_panic() {
    // An unresolvable listen address cannot bind.
    let (code, stderr) = run_serve_args(&["--listen", "definitely.invalid.localdomain:0"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("cannot bind"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
