//! Property tests pinning the scaled-integer solver engine to the retained
//! rational reference paths (the ISSUE-2 cross-check contract).
//!
//! Instances are generated on a random grid `1/den` including the 0% and
//! 100% extremes, plus all-equal-requirement degenerate grids; on every
//! instance the scaled and rational implementations of `opt_two`, `opt_m`
//! and `brute_force` must report identical optimal makespans, and
//! [`ScaledInstance`] must round-trip every requirement exactly.

use cr_algos::{
    brute_force_makespan, brute_force_makespan_rational, opt_m_makespan, opt_m_makespan_rational,
    opt_two_makespan, opt_two_makespan_rational, opt_two_makespan_sparse, OptM, OptTwo, Scheduler,
};
use cr_core::{Instance, Ratio, ScaledInstance};
use proptest::prelude::*;

/// Builds a unit-size instance from per-processor tick counts on the grid
/// `1/den`.  Ticks are drawn in percent (0..=100) and snapped onto the grid,
/// so 0% and 100% shares stay representable for every `den`.
fn instance_from(den: u64, rows: &[Vec<u64>]) -> Instance {
    let reqs = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|&pct| Ratio::from_parts(pct * den / 100, den))
                .collect()
        })
        .collect();
    Instance::unit_from_requirements(reqs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scaled_instance_round_trips_requirements(
        den in 1u64..=48,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=6), 1..=4),
    ) {
        let inst = instance_from(den, &rows);
        let scaled = ScaledInstance::try_new(&inst).expect("small denominators always scale");
        prop_assert_eq!(scaled.processors(), inst.processors());
        prop_assert_eq!(scaled.total_jobs(), inst.total_jobs());
        for i in 0..inst.processors() {
            prop_assert_eq!(scaled.jobs_on(i), inst.jobs_on(i));
            for (j, job) in inst.processor_jobs(i).iter().enumerate() {
                prop_assert_eq!(scaled.to_ratio(scaled.unit_req(i, j)), job.requirement);
            }
        }
    }

    #[test]
    fn opt_two_scaled_matches_rational(
        den in 1u64..=36,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=6), 2..=2),
    ) {
        let inst = instance_from(den, &rows);
        let scaled = opt_two_makespan(&inst);
        prop_assert_eq!(scaled, opt_two_makespan_rational(&inst));
        prop_assert_eq!(scaled, opt_two_makespan_sparse(&inst));
        prop_assert_eq!(OptTwo::new().schedule(&inst).makespan(&inst).unwrap(), scaled);
    }

    #[test]
    fn opt_m_scaled_matches_rational(
        den in 1u64..=24,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 2..=3),
    ) {
        let inst = instance_from(den, &rows);
        let scaled = opt_m_makespan(&inst);
        prop_assert_eq!(scaled, opt_m_makespan_rational(&inst));
        prop_assert_eq!(OptM::new().schedule(&inst).makespan(&inst).unwrap(), scaled);
    }

    #[test]
    fn brute_force_scaled_matches_rational(
        den in 1u64..=24,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 2..=3),
    ) {
        let inst = instance_from(den, &rows);
        prop_assert_eq!(brute_force_makespan(&inst), brute_force_makespan_rational(&inst));
    }

    #[test]
    fn degenerate_all_equal_grids_agree(
        pct in 0u64..=100,
        m in 2usize..=4,
        n in 1usize..=3,
    ) {
        // Every job shares one requirement — including the 0% and 100%
        // degenerate extremes where whole columns finish together (or the
        // resource serializes completely).  The unpruned brute-force
        // reference is exponential, so it only joins on m ≤ 3.
        let rows: Vec<Vec<u64>> = vec![vec![pct; n]; m];
        let inst = instance_from(100, &rows);
        let scaled = opt_m_makespan(&inst);
        prop_assert_eq!(scaled, opt_m_makespan_rational(&inst));
        if m <= 3 {
            prop_assert_eq!(scaled, brute_force_makespan(&inst));
        }
        if m == 2 {
            prop_assert_eq!(scaled, opt_two_makespan(&inst));
        }
    }
}
