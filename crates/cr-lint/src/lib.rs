//! `cr-lint` — workspace-invariant static analysis for the CRSharing
//! repository.
//!
//! The serving stack's correctness rests on rules no compiler checks:
//! every long-running search loop polls a `CancelGate`, production paths
//! do not panic, the service cache mutex is never held across I/O, and the
//! wire error vocabulary stays in sync with `docs/WIRE.md`. This crate
//! enforces them mechanically, as named, individually suppressible rules
//! over a hand-rolled lexer and scope tracker (dependency-free — no `syn`,
//! no network; see `docs/LINTS.md` for the catalog):
//!
//! * [`rules::cancel_coverage`] — loops in hot modules poll a gate;
//! * [`rules::panic_hygiene`] — no `unwrap`/`expect`/`panic!` (and, in
//!   `cr-service`, no slice indexing) on production paths;
//! * [`rules::lock_discipline`] — no second lock and no I/O while a mutex
//!   guard is live;
//! * [`rules::vocab_sync`] — error `kind` strings ⇄ `docs/WIRE.md`, and
//!   metric/span names ⇄ the `docs/OBSERVABILITY.md` catalog;
//! * [`rules::crate_hygiene`] — standard lint headers + workspace lint
//!   inheritance everywhere.
//!
//! Deliberate exceptions are justified in-tree:
//! `// lint: allow(<rule>) — <reason>` (see [`suppress`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod suppress;

use diag::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// The hot modules whose loops must poll a `CancelGate`
/// (workspace-relative paths).
pub const HOT_MODULES: [&str; 6] = [
    "crates/cr-algos/src/scaled_engine.rs",
    "crates/cr-algos/src/opt_m.rs",
    "crates/cr-algos/src/subset_enum.rs",
    "crates/cr-algos/src/brute_force.rs",
    "crates/cr-algos/src/multi_engine.rs",
    "crates/cr-sim/src/engine.rs",
];

/// Source prefixes under panic-hygiene (production paths of the solver
/// core and the serving tier).
pub const PANIC_PREFIXES: [&str; 3] = [
    "crates/cr-service/src/",
    "crates/cr-algos/src/",
    "crates/cr-core/src/",
];

/// The prefix where slice indexing is additionally flagged (a
/// remote-triggerable panic costs a serving worker).
pub const INDEX_PREFIX: &str = "crates/cr-service/src/";

/// The wire-vocabulary invariant files.
pub const VOCAB_SOLVER: &str = "crates/cr-algos/src/solver.rs";
/// See [`VOCAB_SOLVER`].
pub const VOCAB_WIRE: &str = "crates/cr-service/src/wire.rs";
/// See [`VOCAB_SOLVER`].
pub const VOCAB_DOC: &str = "docs/WIRE.md";

/// The observability-vocabulary invariant files: the declared metric and
/// span name arrays, cross-checked against the catalog document.
pub const VOCAB_OBS: &str = "crates/cr-obs/src/names.rs";
/// See [`VOCAB_OBS`].
pub const VOCAB_OBS_DOC: &str = "docs/OBSERVABILITY.md";

/// A full lint run's outcome.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml` and the `crates/` tree).
///
/// # Errors
///
/// A human-readable message when `root` is not a workspace or files
/// cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(format!(
            "{} does not look like the workspace root (need Cargo.toml + crates/)",
            root.display()
        ));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut files_scanned = 0usize;

    // ---- Per-file rules over every crate's src tree -------------------
    let mut vocab_solver: Option<Vec<lexer::Token>> = None;
    let mut vocab_wire: Option<Vec<lexer::Token>> = None;
    let mut vocab_obs: Option<Vec<lexer::Token>> = None;

    for crate_dir in crate_dirs(root)? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = rel_path(root, &file);
            let source =
                fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
            files_scanned += 1;

            let tokens = lexer::lex(&source);
            let ctx = scope::analyze(&tokens);
            let suppressions = suppress::parse(&rel, &tokens, &mut diags);

            if HOT_MODULES.contains(&rel.as_str()) {
                rules::cancel_coverage::check(&rel, &tokens, &ctx, &suppressions, &mut diags);
            }
            if PANIC_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                let indexing = rel.starts_with(INDEX_PREFIX);
                rules::panic_hygiene::check(
                    &rel,
                    &tokens,
                    &ctx,
                    &suppressions,
                    indexing,
                    &mut diags,
                );
            }
            rules::lock_discipline::check(&rel, &tokens, &ctx, &suppressions, &mut diags);

            if rel == VOCAB_SOLVER {
                vocab_solver = Some(tokens.clone());
            } else if rel == VOCAB_WIRE {
                vocab_wire = Some(tokens.clone());
            } else if rel == VOCAB_OBS {
                vocab_obs = Some(tokens.clone());
            }

            // Crate/binary roots: standard lint header.
            let is_lib = rel.ends_with("src/lib.rs");
            let is_bin = rel.ends_with("src/main.rs") || rel.contains("src/bin/");
            if is_lib || is_bin {
                rules::crate_hygiene::check_root(&rel, &tokens, is_lib, &mut diags);
            }
        }

        // Manifest lint inheritance.
        let manifest_path = crate_dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        rules::crate_hygiene::check_manifest(
            &rel_path(root, &manifest_path),
            &manifest,
            &mut diags,
        );
    }

    // ---- Workspace-level vocabulary sync ------------------------------
    let doc_path = root.join(VOCAB_DOC);
    match (vocab_solver, vocab_wire, fs::read_to_string(&doc_path)) {
        (Some(solver), Some(wire), Ok(doc)) => {
            rules::vocab_sync::check(
                (VOCAB_SOLVER, &solver),
                (VOCAB_WIRE, &wire),
                (VOCAB_DOC, &doc),
                &mut diags,
            );
        }
        (solver, wire, doc) => {
            for (present, what) in [
                (solver.is_some(), VOCAB_SOLVER),
                (wire.is_some(), VOCAB_WIRE),
                (doc.is_ok(), VOCAB_DOC),
            ] {
                if !present {
                    diags.push(Diagnostic {
                        path: what.to_string(),
                        line: 1,
                        rule: rules::vocab_sync::RULE,
                        message: "wire-vocabulary invariant file is missing from the workspace"
                            .to_string(),
                    });
                }
            }
        }
    }

    // ---- Workspace-level observability-vocabulary sync ----------------
    let obs_doc_path = root.join(VOCAB_OBS_DOC);
    match (vocab_obs, fs::read_to_string(&obs_doc_path)) {
        (Some(names), Ok(doc)) => {
            rules::vocab_sync::check_obs((VOCAB_OBS, &names), (VOCAB_OBS_DOC, &doc), &mut diags);
        }
        (names, doc) => {
            for (present, what) in [(names.is_some(), VOCAB_OBS), (doc.is_ok(), VOCAB_OBS_DOC)] {
                if !present {
                    diags.push(Diagnostic {
                        path: what.to_string(),
                        line: 1,
                        rule: rules::vocab_sync::RULE,
                        message:
                            "observability-vocabulary invariant file is missing from the workspace"
                                .to_string(),
                    });
                }
            }
        }
    }

    diags.sort();
    diags.dedup();
    Ok(Report {
        diagnostics: diags,
        files_scanned,
    })
}

/// The workspace's own crate directories: the root package plus
/// `crates/*`. Vendored shims and `target/` are deliberately out of scope.
fn crate_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![root.to_path_buf()];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
    let mut found: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    found.sort();
    dirs.extend(found);
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir` (skipping `fixtures`
/// directories — the lint's own committed bad examples).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
