//! The paper's adversarial instance families and illustrative examples.
//!
//! * [`figure1_instance`] / [`figure2_instance`] — the running examples of
//!   Section 3.2 and Definition 4;
//! * [`round_robin_worst_case`] — the Theorem 3 family on which RoundRobin's
//!   approximation ratio tends to 2 (Figure 3);
//! * [`greedy_balance_worst_case`] — the Theorem 8 block construction on
//!   which GreedyBalance's ratio tends to `2 − 1/m` (Figure 5).

use cr_core::{Instance, Ratio};

/// The three-processor example of Figure 1 (requirements in percent:
/// `20 10 10 10 / 50 55 90 55 10 / 50 40 95`).
#[must_use]
pub fn figure1_instance() -> Instance {
    Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]])
}

/// The three-processor example of Figure 2: four 50% jobs on the first
/// processor and one 100% job on each of the other two.
#[must_use]
pub fn figure2_instance() -> Instance {
    Instance::unit_from_percentages(&[&[50, 50, 50, 50], &[100], &[100]])
}

/// The Theorem 3 worst-case family for RoundRobin on two processors with `n`
/// jobs per processor: `r_{1,j} = j·ε` and `r_{2,j} = (1 + ε) − r_{1,j}` with
/// `ε = 1/n` (Figure 3).
///
/// An optimal schedule finishes it in `n + 1` steps while RoundRobin needs
/// `2n` steps, so the ratio tends to 2 as `n → ∞`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn round_robin_worst_case(n: usize) -> Instance {
    assert!(n > 0, "the family needs at least one job per processor");
    let n_i = n as i128;
    let eps = Ratio::new(1, n_i);
    let first: Vec<Ratio> = (1..=n_i).map(|j| eps * Ratio::new(j, 1)).collect();
    let second: Vec<Ratio> = first.iter().map(|&r| Ratio::ONE + eps - r).collect();
    Instance::unit_from_requirements(vec![first, second])
}

/// The optimal makespan of [`round_robin_worst_case`]`(n)`: `n + 1` (the
/// total workload is exactly `n + 1` and Figure 3a shows a schedule wasting
/// nothing).
#[must_use]
pub fn round_robin_worst_case_opt(n: usize) -> usize {
    n + 1
}

/// How many `m × m` blocks of the Theorem 8 construction fit before a
/// requirement would leave `[0, 1]`, for the grid `ε = 1/denominator`.
///
/// The only entries that drift from block to block are the last row's first
/// block column (which decreases by roughly `m(m+1)/2 · ε` per block) and the
/// second block column of the first row (which increases at the same rate),
/// so the number of safe blocks grows linearly in `1/ε`.
#[must_use]
pub fn greedy_balance_max_blocks(m: usize, denominator: u64) -> usize {
    let mut blocks = 1usize;
    loop {
        if build_greedy_blocks(m, denominator, blocks + 1).is_none() {
            return blocks;
        }
        blocks += 1;
        if blocks > 10_000 {
            return blocks;
        }
    }
}

/// The Theorem 8 / Figure 5 block construction for `m ≥ 2` processors with
/// `blocks` blocks and `ε = 1/denominator`.
///
/// GreedyBalance needs `2m − 1` time steps per block (it insists on balancing
/// the number of remaining jobs and therefore spends `m` steps on a block's
/// first column), while an optimal schedule needs essentially `m` steps per
/// block, yielding the tight ratio `2 − 1/m`.
///
/// # Panics
///
/// Panics if `m < 2`, `blocks == 0`, or if the requested number of blocks
/// does not fit the grid (use [`greedy_balance_max_blocks`]).
#[must_use]
pub fn greedy_balance_worst_case(m: usize, denominator: u64, blocks: usize) -> Instance {
    build_greedy_blocks(m, denominator, blocks)
        .expect("requested block count does not fit into [0, 1] requirements; reduce blocks or refine the grid")
}

/// Fallible core of [`greedy_balance_worst_case`]; returns `None` when a
/// requirement would leave `[0, 1]`.
fn build_greedy_blocks(m: usize, denominator: u64, blocks: usize) -> Option<Instance> {
    assert!(m >= 2, "the construction needs at least two processors");
    assert!(blocks > 0, "at least one block is required");
    let eps = Ratio::new(1, denominator.max(1) as i128);
    // rows[i][j] = requirement of job (i, j); both zero-based here.
    let mut rows: Vec<Vec<Ratio>> = vec![Vec::new(); m];

    for block in 0..blocks {
        let base = block * m; // first column of this block (zero-based)
        let mut column_first = vec![Ratio::ZERO; m];
        if block == 0 {
            // r_{i,1} = 1 − i·ε (one-based i).
            for (i, slot) in column_first.iter_mut().enumerate() {
                *slot = Ratio::ONE - eps * Ratio::from_integer((i + 1) as i64);
            }
        } else {
            // r_{i,j} = 1 − (m−1)ε for i < m; the last row closes the diagonal:
            // r_{m,j} = 1 − Σ_{i'=1}^{m−1} r_{m−i', j−i'}.
            for slot in column_first.iter_mut().take(m - 1) {
                *slot = Ratio::ONE - eps * Ratio::from_integer((m - 1) as i64);
            }
            let mut diagonal = Ratio::ZERO;
            for offset in 1..m {
                let row = m - 1 - offset; // m − i' in zero-based rows
                let col = base - offset; // j − i' in zero-based columns
                diagonal += rows[row][col];
            }
            column_first[m - 1] = Ratio::ONE - diagonal;
        }

        // Second column: the first row collects the slack of the first column
        // plus ε, the other rows get ε.
        let slack: Ratio = column_first.iter().map(|&r| Ratio::ONE - r).sum();
        let mut column_second = vec![eps; m];
        column_second[0] = slack + eps;

        // Remaining m − 2 columns of the block: ε everywhere.
        let mut all_columns = vec![column_first, column_second];
        for _ in 2..m {
            all_columns.push(vec![eps; m]);
        }

        for column in &all_columns {
            for &value in column {
                if !value.in_unit_interval() {
                    return None;
                }
            }
        }
        for column in all_columns {
            for (i, value) in column.into_iter().enumerate() {
                rows[i].push(value);
            }
        }
    }
    Some(Instance::unit_from_requirements(rows))
}

/// The number of steps GreedyBalance needs on
/// [`greedy_balance_worst_case`]`(m, …, blocks)` according to the Theorem 8
/// analysis: `(2m − 1)` per block.
#[must_use]
pub fn greedy_balance_worst_case_steps(m: usize, blocks: usize) -> usize {
    (2 * m - 1) * blocks
}

/// A scalability family for the exact configuration search with arbitrarily
/// wide active sets (ISSUE 4: the pre-ISSUE-4 engines refused 32 or more
/// simultaneously active processors).
///
/// The first `heavy` processors carry chains of `heavy_chain` jobs at
/// requirement `heavy_pct`%; because `heavy_pct > 50`, any two heavy
/// frontiers oversubscribe the resource, so at most one heavy job completes
/// per step and the successor choice space stays small.  The remaining
/// `m − heavy` processors carry chains of `zero_chain` zero-requirement
/// jobs, which keep the *active set* at the full width `m` for the first
/// `zero_chain` rounds without inflating the configuration space (free
/// frontiers complete deterministically every step).
///
/// The search cost thus scales with `heavy` and `heavy_chain` but **not**
/// with `m` — exactly the knob the wide-m benchmarks sweep.
///
/// # Panics
///
/// Panics if `heavy` is zero or exceeds `m`, if `heavy_pct` is not in
/// `51..=100` (the family must be oversubscribed pairwise), or if a chain
/// length is zero.
#[must_use]
pub fn wide_oversubscribed_instance(
    m: usize,
    heavy: usize,
    heavy_chain: usize,
    zero_chain: usize,
    heavy_pct: i64,
) -> Instance {
    assert!(
        heavy >= 1 && heavy <= m,
        "need between 1 and m heavy processors"
    );
    assert!(
        (51..=100).contains(&heavy_pct),
        "heavy requirement must oversubscribe pairwise (51..=100 percent)"
    );
    assert!(
        heavy_chain >= 1 && zero_chain >= 1,
        "chains must be non-empty"
    );
    let mut rows: Vec<Vec<Ratio>> = Vec::with_capacity(m);
    for _ in 0..heavy {
        rows.push(vec![Ratio::from_percent(heavy_pct); heavy_chain]);
    }
    for _ in heavy..m {
        rows.push(vec![Ratio::ZERO; zero_chain]);
    }
    Instance::unit_from_requirements(rows)
}

/// A multi-resource stress family in which the bottleneck **rotates** over
/// the resources: job `(i, j)` demands 90% of resource `(i + j) mod k` and
/// 5% of every other resource.
///
/// At any frontier column `j` the heavy demands are spread round-robin over
/// the `k` resources, so every resource is oversubscribed whenever more
/// than one processor's frontier lands on it (two 90% demands exceed any
/// capacity) — the regime in which a scheduler must coordinate *all* pools
/// at once and single-resource reasoning (projecting any one layer) is
/// maximally misleading.  With `k = 1` the family degenerates to an
/// all-90% oversubscribed square.
///
/// # Panics
///
/// Panics if `m`, `jobs_per_processor` or `resources` is zero.
#[must_use]
pub fn rotating_bottleneck_instance(
    m: usize,
    jobs_per_processor: usize,
    resources: usize,
) -> Instance {
    assert!(m >= 1, "need at least one processor");
    assert!(jobs_per_processor >= 1, "chains must be non-empty");
    assert!(resources >= 1, "an instance has at least one resource");
    let heavy = Ratio::from_percent(90);
    let light = Ratio::from_percent(5);
    let layers: Vec<Vec<Vec<Ratio>>> = (0..resources)
        .map(|r| {
            (0..m)
                .map(|i| {
                    (0..jobs_per_processor)
                        .map(|j| {
                            if (i + j) % resources == r {
                                heavy
                            } else {
                                light
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    Instance::multi_unit_from_requirements(layers).expect("all layers share the job grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::bounds;

    #[test]
    fn figure_instances_have_the_documented_shape() {
        let f1 = figure1_instance();
        assert_eq!(f1.processors(), 3);
        assert_eq!(f1.total_jobs(), 12);
        let f2 = figure2_instance();
        assert_eq!(f2.max_chain_length(), 4);
        assert_eq!(f2.total_workload(), Ratio::from_integer(4));
    }

    #[test]
    fn round_robin_family_matches_figure3() {
        let inst = round_robin_worst_case(100);
        assert_eq!(inst.processors(), 2);
        assert_eq!(inst.max_chain_length(), 100);
        // First processor: 1%, 2%, …, 100%.
        assert_eq!(
            inst.processor_jobs(0)[0].requirement,
            Ratio::from_percent(1)
        );
        assert_eq!(inst.processor_jobs(0)[99].requirement, Ratio::ONE);
        // Second processor: 100%, 99%, …, 1%.
        assert_eq!(inst.processor_jobs(1)[0].requirement, Ratio::ONE);
        assert_eq!(
            inst.processor_jobs(1)[99].requirement,
            Ratio::from_percent(1)
        );
        // Total workload is n + 1, which matches the optimal makespan.
        assert_eq!(inst.total_workload(), Ratio::from_integer(101));
        assert_eq!(
            bounds::workload_bound_steps(&inst),
            round_robin_worst_case_opt(100)
        );
    }

    #[test]
    fn greedy_blocks_match_figure5_for_m3() {
        // Figure 5 uses m = 3, ε = 0.01 and shows three blocks.
        let inst = greedy_balance_worst_case(3, 100, 3);
        assert_eq!(inst.processors(), 3);
        assert_eq!(inst.max_chain_length(), 9);
        let pct = |i: usize, j: usize| {
            (inst.processor_jobs(i)[j].requirement * Ratio::from_integer(100)).to_f64()
        };
        // Block 1 first column: 99, 98, 97.
        assert_eq!(pct(0, 0), 99.0);
        assert_eq!(pct(1, 0), 98.0);
        assert_eq!(pct(2, 0), 97.0);
        // Block 1 second column: 7, 1, 1.
        assert_eq!(pct(0, 1), 7.0);
        assert_eq!(pct(1, 1), 1.0);
        assert_eq!(pct(2, 1), 1.0);
        // Block 2: first column 98, 98, 92; second column 13, 1, 1.
        assert_eq!(pct(0, 3), 98.0);
        assert_eq!(pct(1, 3), 98.0);
        assert_eq!(pct(2, 3), 92.0);
        assert_eq!(pct(0, 4), 13.0);
        // Block 3: last row 86, first row second column 19.
        assert_eq!(pct(2, 6), 86.0);
        assert_eq!(pct(0, 7), 19.0);
    }

    #[test]
    fn block_count_guard() {
        let max3 = greedy_balance_max_blocks(3, 100);
        assert!(
            max3 >= 3,
            "Figure 5 shows at least three blocks for ε = 0.01"
        );
        assert!(build_greedy_blocks(3, 100, max3 + 1).is_none());
        // A finer grid admits more blocks.
        assert!(greedy_balance_max_blocks(3, 1000) > max3);
    }

    #[test]
    #[should_panic(expected = "at least two processors")]
    fn construction_needs_two_processors() {
        let _ = greedy_balance_worst_case(1, 100, 1);
    }

    #[test]
    fn wide_family_has_the_documented_shape() {
        let inst = wide_oversubscribed_instance(40, 4, 3, 5, 90);
        assert_eq!(inst.processors(), 40);
        assert_eq!(inst.total_jobs(), 4 * 3 + 36 * 5);
        assert_eq!(inst.max_chain_length(), 5);
        // Heavies are pairwise oversubscribed; the rest are free.
        let heavy = inst.processor_jobs(0)[0].requirement;
        assert_eq!(heavy, Ratio::from_percent(90));
        assert!(heavy + heavy > Ratio::ONE);
        assert!(inst.processor_jobs(4)[0].requirement.is_zero());
        // The first round's active frontier spans all 40 processors and is
        // oversubscribed (the ISSUE-4 regression shape: the pre-ISSUE-4
        // engines refused 32+ simultaneously active processors).
        let frontier_sum: Ratio = (0..inst.processors())
            .map(|i| inst.processor_jobs(i)[0].requirement)
            .sum();
        assert!(frontier_sum > Ratio::ONE);
    }

    #[test]
    #[should_panic(expected = "oversubscribe pairwise")]
    fn wide_family_rejects_fitting_heavies() {
        let _ = wide_oversubscribed_instance(8, 2, 1, 1, 50);
    }

    #[test]
    fn rotating_bottleneck_spreads_heavies_over_the_resources() {
        let inst = rotating_bottleneck_instance(4, 3, 2);
        assert_eq!(inst.resources(), 2);
        assert_eq!(inst.processors(), 4);
        assert_eq!(inst.total_jobs(), 12);
        let heavy = Ratio::from_percent(90);
        for i in 0..4 {
            for j in 0..3 {
                let id = cr_core::JobId::new(i, j);
                let heavies = (0..2)
                    .filter(|&r| inst.requirement_on(r, id) == heavy)
                    .count();
                assert_eq!(heavies, 1, "job ({i},{j}) is heavy on exactly one layer");
            }
        }
        // Column 0 lands two heavies on each resource — both oversubscribed.
        for r in 0..2 {
            let frontier: Ratio = (0..4)
                .map(|i| inst.requirement_on(r, cr_core::JobId::new(i, 0)))
                .sum();
            assert!(frontier > Ratio::ONE, "resource {r} oversubscribed");
        }
        // k = 1 degenerates to the all-heavy square.
        let square = rotating_bottleneck_instance(3, 2, 1);
        assert_eq!(square.resources(), 1);
        assert_eq!(square.max_requirement(), heavy);
    }

    #[test]
    fn per_block_workload_is_roughly_m() {
        // Each block's total workload is m + O(mε); the optimal schedule can
        // therefore finish a block in about m steps.
        for m in 2..=5 {
            let inst = greedy_balance_worst_case(m, 1000, 1);
            let workload = inst.total_workload().to_f64();
            assert!(
                (workload - m as f64).abs() < 0.1,
                "m={m}: workload {workload}"
            );
        }
    }
}
