//! The NP-hardness reduction of Theorem 4 in action: Partition instances are
//! turned into CRSharing instances whose optimal makespan is 4 exactly for
//! YES-instances and at least 5 for NO-instances (the gap behind the 5/4
//! inapproximability bound of Corollary 1).
//!
//! Run with:
//! ```text
//! cargo run --example partition_hardness
//! ```

use crsharing::algos::{brute_force_makespan, GreedyBalance, Scheduler};
use crsharing::instances::reduction::{
    partition_to_crsharing, solve_partition, yes_certificate_schedule, PartitionReduction,
};
use crsharing::viz::render_instance;

fn main() {
    let cases: Vec<(&str, Vec<u64>)> = vec![
        ("YES: {2,2,3,3}", vec![2, 2, 3, 3]),
        ("YES: {2,3,4,5,6}", vec![2, 3, 4, 5, 6]),
        ("NO:  {2,2,3,5}", vec![2, 2, 3, 5]),
        ("NO:  {3,3,3,5}", vec![3, 3, 3, 5]),
    ];

    println!(
        "Theorem 4: Partition ≤ₚ CRSharing — YES ⟺ makespan {}, NO ⟹ makespan ≥ {}\n",
        PartitionReduction::YES_MAKESPAN,
        PartitionReduction::NO_MAKESPAN
    );

    for (label, values) in cases {
        let reduction = partition_to_crsharing(&values);
        println!("── {label} ──");
        print!("{}", render_instance(&reduction.instance));

        let partition = solve_partition(&values);
        let optimum = brute_force_makespan(&reduction.instance);
        let greedy = GreedyBalance::new().makespan(&reduction.instance);

        match partition {
            Some(membership) => {
                let certificate = yes_certificate_schedule(&reduction, &membership);
                let cert_makespan = certificate
                    .makespan(&reduction.instance)
                    .expect("certificate schedule is feasible");
                println!(
                    "  Partition: YES  → certificate schedule achieves makespan {cert_makespan}"
                );
                assert_eq!(cert_makespan, PartitionReduction::YES_MAKESPAN);
                assert_eq!(optimum, PartitionReduction::YES_MAKESPAN);
            }
            None => {
                println!("  Partition: NO");
                assert!(optimum >= PartitionReduction::NO_MAKESPAN);
            }
        }
        println!("  optimal makespan (brute force): {optimum}    GreedyBalance: {greedy}\n");
    }

    println!(
        "The 4-vs-5 gap shows that approximating CRSharing within a factor better than 5/4\n\
         is NP-hard (Corollary 1)."
    );
}
