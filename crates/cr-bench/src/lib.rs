//! # cr-bench — experiment harness for the CRSharing reproduction
//!
//! This crate contains no algorithms of its own; it provides the shared
//! experiment-driver utilities used by the Criterion benchmarks in
//! `benches/` and the figure/table regeneration binaries in `src/bin/`.
//! See `EXPERIMENTS.md` at the workspace root for the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod grids;
pub mod harness;
pub mod loadgen;
pub mod pipeline;

pub use harness::{markdown_table, ratio_string, ExperimentRow};
pub use pipeline::{
    Algorithm, Cell, CellResult, ExperimentReport, ExperimentTable, Family, Reference, Runner,
};
