//! E5 — regenerates Figure 5 / Theorem 8: on the block construction,
//! GreedyBalance needs 2m − 1 steps per block while the optimum needs
//! essentially m, so its ratio tends to 2 − 1/m; the factor is tight.
//!
//! The grid comes from the shared builders in `cr_bench::grids` (the same
//! sweep the `experiments` binary runs) and fans out through the rayon
//! pipeline.

#![forbid(unsafe_code)]

use cr_bench::grids::fig5_cells;
use cr_bench::pipeline::{Family, Runner};
use cr_instances::{greedy_balance_worst_case, greedy_balance_worst_case_steps};
use cr_viz::render_instance;

fn main() {
    println!("E5 / Figure 5 — GreedyBalance worst-case blocks (ratio → 2 − 1/m)\n");

    // The exact Figure 5 instance: m = 3, ε = 0.01, three blocks.
    let fig5 = greedy_balance_worst_case(3, 100, 3);
    println!("{}", render_instance(&fig5));

    let cells = fig5_cells(1000);
    let table = Runner::default().run_table("Block construction (Theorem 8)", &cells);
    for (cell, result) in cells.iter().zip(&table.results) {
        let Family::GreedyWorstCase { m, blocks, .. } = cell.family else {
            unreachable!("fig5 grid contains only block constructions");
        };
        assert_eq!(
            result.makespan,
            greedy_balance_worst_case_steps(m, blocks),
            "GreedyBalance must need exactly (2m − 1) steps per block"
        );
    }
    println!("{}", table.to_markdown());
    for m in 2..=6usize {
        println!(
            "  m = {m}: paper bound 2 − 1/m = {:.3}",
            2.0 - 1.0 / m as f64
        );
    }
    println!(
        "\npaper: the ratio of GreedyBalance on this family approaches 2 − 1/m from below as\n\
         the number of blocks grows and ε shrinks; Theorem 7 shows no balanced schedule can\n\
         be worse."
    );
}
