//! **lock_discipline** — the serving tier's cache mutex must stay a
//! short, I/O-free critical section: while a `MutexGuard` is live in a
//! scope, taking a second lock risks deadlock and writing to a socket or
//! stdout stalls every other worker behind a kernel buffer.
//!
//! Detection is lexical but liveness-aware:
//!
//! * an **acquisition** is a `.lock()` call (standard-stream locks —
//!   `stdin`/`stdout`/`stderr` receivers — are exempt: they are not mutex
//!   guards over shared solver state) or a call of a `*lock_cache*` helper
//!   (the service's poison-recovering wrapper);
//! * the guard's **liveness span** depends on how the acquisition is used:
//!   bound by `let` → to the end of the enclosing block (or an explicit
//!   `drop(name)`); a `match`/`if`/`while` scrutinee → to the end of that
//!   construct's braces; a bare expression statement → to its `;`;
//! * within the span, a second acquisition or any write — the
//!   `write!`-family macros, `print!`-family macros, or `.write_all(…)` /
//!   `.write(…)` / `.flush(…)` method calls — is a violation.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::scope::Ctx;
use crate::suppress::Suppressions;

/// Rule name.
pub const RULE: &str = "lock_discipline";

const WRITE_MACROS: [&str; 6] = ["write", "writeln", "print", "println", "eprint", "eprintln"];
const WRITE_METHODS: [&str; 3] = ["write_all", "write", "flush"];

/// Runs the rule over one file.
pub fn check(
    path: &str,
    tokens: &[Token],
    ctx: &[Ctx],
    suppressions: &Suppressions,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if ctx[i].in_test {
            continue;
        }
        let Some(acq_line) = acquisition_at(tokens, i) else {
            continue;
        };
        let end = liveness_end(tokens, ctx, i);
        scan_span(path, tokens, i, end, acq_line, suppressions, diags);
    }
}

/// If token `i` completes a lock acquisition, its line.
fn acquisition_at(tokens: &[Token], i: usize) -> Option<u32> {
    let tok = &tokens[i];
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let prev = prev_code(tokens, i);
    let next = next_code(tokens, i);
    let called = next.is_some_and(|j| tokens[j].is_punct('('));
    if !called {
        return None;
    }
    if tok.text == "lock" {
        let dotted = prev.is_some_and(|j| tokens[j].is_punct('.'));
        if !dotted || std_stream_receiver(tokens, i) {
            return None;
        }
        return Some(tok.line);
    }
    if tok.text.contains("lock_cache") {
        // The helper's own `fn lock_cache(…)` definition is not a call.
        if prev.is_some_and(|j| tokens[j].is_ident("fn")) {
            return None;
        }
        return Some(tok.line);
    }
    None
}

/// Walks the receiver chain left of the `.lock()` call looking for a
/// standard-stream handle (`stdout.lock()`, `io::stdin().lock()`, …).
fn std_stream_receiver(tokens: &[Token], lock_idx: usize) -> bool {
    let mut j = lock_idx;
    let mut paren_depth = 0i64;
    // Scan back across the `recv.method().field.` chain.
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_comment() {
            continue;
        }
        match t.kind {
            TokenKind::Punct(')') => paren_depth += 1,
            TokenKind::Punct('(') => {
                if paren_depth == 0 {
                    return false;
                }
                paren_depth -= 1;
            }
            TokenKind::Punct('.' | ':' | '&' | '*') => {}
            TokenKind::Ident if paren_depth == 0 => {
                let lower = t.text.to_ascii_lowercase();
                if lower.contains("stdout") || lower.contains("stdin") || lower.contains("stderr") {
                    return true;
                }
            }
            _ if paren_depth > 0 => {}
            _ => return false,
        }
    }
    false
}

/// Computes the token index at which the guard acquired at `acq` dies.
fn liveness_end(tokens: &[Token], ctx: &[Ctx], acq: usize) -> usize {
    // Statement start: walk back to the nearest `;`, `{` or `}` at any
    // depth — the first code token after it opens the statement.
    let mut start = 0usize;
    for j in (0..acq).rev() {
        if matches!(tokens[j].kind, TokenKind::Punct(';' | '{' | '}')) {
            start = j + 1;
            break;
        }
    }
    let opener = tokens[start..=acq]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.text.as_str());

    match opener {
        Some("let") => {
            // Bound guard: live until the enclosing block closes, or an
            // explicit `drop(name)`.
            let name = tokens[start + 1..acq]
                .iter()
                .filter(|t| !t.is_comment())
                .filter(|t| t.kind == TokenKind::Ident)
                .find(|t| t.text != "mut")
                .map(|t| t.text.clone());
            // The enclosing block's `}` carries the same scope depth as the
            // tokens inside it (inner blocks' closers are deeper), so the
            // first close brace at `<=` the acquisition depth ends the span.
            let depth = ctx[acq].depth;
            for (off, t) in tokens.iter().enumerate().skip(acq + 1) {
                if t.is_punct('}') && ctx[off].depth <= depth {
                    return off;
                }
                if let Some(name) = &name {
                    if t.is_ident("drop")
                        && next_code(tokens, off).is_some_and(|j| tokens[j].is_punct('('))
                        && tokens[off + 1..]
                            .iter()
                            .find(|t| !t.is_comment() && !t.is_punct('('))
                            .is_some_and(|t| t.text == *name)
                    {
                        return off;
                    }
                }
            }
            tokens.len() - 1
        }
        Some("match" | "if" | "while") => {
            // Scrutinee guard: live until the construct's braces close.
            let mut j = acq;
            let mut depth = 0i64;
            while j < tokens.len() {
                if tokens[j].is_punct('(') || tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(')') || tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_punct('{') && depth == 0 {
                    return crate::lexer::matching_brace(tokens, j);
                } else if tokens[j].is_punct(';') && depth == 0 {
                    return j; // no braces after all
                }
                j += 1;
            }
            tokens.len() - 1
        }
        _ => {
            // Temporary in an expression statement: dies at the `;` — or,
            // for a block's tail expression, at the closing `}`.
            let mut depth = 0i64;
            for (j, t) in tokens.iter().enumerate().skip(acq + 1) {
                match t.kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => {
                        depth -= 1;
                        if depth < 0 {
                            return j;
                        }
                    }
                    TokenKind::Punct(';') if depth <= 0 => return j,
                    _ => {}
                }
            }
            tokens.len() - 1
        }
    }
}

/// Reports second locks and writes inside the guard's liveness span.
fn scan_span(
    path: &str,
    tokens: &[Token],
    acq: usize,
    end: usize,
    acq_line: u32,
    suppressions: &Suppressions,
    diags: &mut Vec<Diagnostic>,
) {
    let mut emit = |line: u32, what: String| {
        if !suppressions.covers(RULE, line) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line,
                rule: RULE,
                message: format!(
                    "{what} while the lock guard taken on line {acq_line} is still live: \
                     shrink the critical section (bind, copy out, drop) or justify with \
                     `// lint: allow({RULE}) — <reason>`"
                ),
            });
        }
    };
    let mut j = next_code(tokens, acq).map_or(end, |j| j + 1); // skip the `(` of the acquisition
    while j <= end.min(tokens.len() - 1) {
        let tok = &tokens[j];
        if tok.kind == TokenKind::Ident {
            if acquisition_at(tokens, j).is_some() {
                emit(tok.line, "second lock acquisition".to_string());
            } else if WRITE_MACROS.contains(&tok.text.as_str())
                && next_code(tokens, j).is_some_and(|k| tokens[k].is_punct('!'))
            {
                emit(tok.line, format!("`{}!` I/O", tok.text));
            } else if WRITE_METHODS.contains(&tok.text.as_str())
                && prev_code(tokens, j).is_some_and(|k| tokens[k].is_punct('.'))
                && next_code(tokens, j).is_some_and(|k| tokens[k].is_punct('('))
            {
                emit(tok.line, format!("`.{}(…)` I/O", tok.text));
            }
        }
        j += 1;
    }
}

fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    tokens[..i].iter().rposition(|t| !t.is_comment())
}

fn next_code(tokens: &[Token], i: usize) -> Option<usize> {
    (i + 1..tokens.len()).find(|&j| !tokens[j].is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;

    fn run(src: &str) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let ctx = analyze(&tokens);
        let mut diags = Vec::new();
        let sup = crate::suppress::parse("f.rs", &tokens, &mut diags);
        check("f.rs", &tokens, &ctx, &sup, &mut diags);
        diags
    }

    #[test]
    fn write_under_let_bound_guard_is_flagged() {
        let src = "fn f() { let g = m.lock().unwrap(); writeln!(s, \"x\").ok(); }";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`writeln!`"));
    }

    #[test]
    fn second_lock_under_guard_is_flagged() {
        let src = "fn f() { let g = a.lock().unwrap(); let h = b.lock().unwrap(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn drop_ends_liveness() {
        let src = "fn f() { let g = a.lock().unwrap(); drop(g); writeln!(s, \"x\").ok(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scoped_guard_frees_the_rest() {
        let src = "fn f() { { let g = a.lock().unwrap(); use_it(&g); } writeln!(s, \"x\").ok(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "fn f() { v.lock().unwrap().push(1); writeln!(s, \"x\").ok(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn match_scrutinee_guard_lives_through_the_match() {
        let src =
            "fn f() { match m.lock() { Ok(g) => { writeln!(s, \"x\").ok(); } Err(_) => {} } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn stdout_and_stdin_locks_are_exempt() {
        let src = "fn f() { let mut out = io::stdout().lock(); for l in stdin.lock().lines() { writeln!(out, \"x\").ok(); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_cache_helper_counts_as_acquisition() {
        let src = "fn f(&self) { let c = self.lock_cache(); writeln!(s, \"x\").ok(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn multi_line_chain_hiding_the_lock_is_still_seen() {
        let src = "fn f(&self) {\n    let g = self\n        .shared\n        .workers\n        .lock()\n        .unwrap();\n    writeln!(s, \"x\").ok();\n}";
        assert_eq!(run(src).len(), 1);
    }
}
