//! Integration tests for the Theorem 4 reduction (against the exact solvers)
//! and for the JSON persistence layer used by the experiment harness.

mod common;

use common::unit_instance;
use crsharing::algos::{brute_force_makespan, GreedyBalance, Scheduler};
use crsharing::instances::reduction::{
    is_yes_instance, partition_to_crsharing, solve_partition, yes_certificate_schedule,
    PartitionReduction,
};
use crsharing::instances::serde_io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4 end to end on random Partition instances: YES-instances map
    /// to makespan exactly 4, NO-instances to at least 5.
    #[test]
    fn reduction_gap_holds(values in prop::collection::vec(1u64..=6, 3..=4)) {
        let total: u64 = values.iter().sum();
        prop_assume!(total % 2 == 0);
        let half = total / 2;
        prop_assume!(values.iter().all(|&a| a <= half));

        let reduction = partition_to_crsharing(&values);
        let optimum = brute_force_makespan(&reduction.instance);
        if is_yes_instance(&values) {
            prop_assert_eq!(optimum, PartitionReduction::YES_MAKESPAN);
            let membership = solve_partition(&values).expect("YES instance");
            let certificate = yes_certificate_schedule(&reduction, &membership);
            prop_assert_eq!(
                certificate.makespan(&reduction.instance).expect("feasible"),
                PartitionReduction::YES_MAKESPAN
            );
        } else {
            prop_assert!(optimum >= PartitionReduction::NO_MAKESPAN);
        }
    }

    /// The Partition solver is sound: whenever it returns a certificate, the
    /// certificate sums to exactly half the total.
    #[test]
    fn partition_solver_certificates_are_valid(values in prop::collection::vec(1u64..=9, 2..=10)) {
        if let Some(membership) = solve_partition(&values) {
            let total: u64 = values.iter().sum();
            let chosen: u64 = values
                .iter()
                .zip(&membership)
                .filter_map(|(&a, &m)| if m { Some(a) } else { None })
                .sum();
            prop_assert_eq!(chosen * 2, total);
        } else {
            // NO answer: exhaustively confirm on these small inputs.
            let n = values.len();
            let total: u64 = values.iter().sum();
            let mut found = false;
            for mask in 0u32..(1 << n) {
                let s: u64 = (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                if 2 * s == total {
                    found = true;
                    break;
                }
            }
            prop_assert!(!found, "solver missed a valid partition of {:?}", values);
        }
    }

    /// Instances and schedules survive a JSON round trip unchanged.
    #[test]
    fn json_roundtrip(instance in unit_instance(3, 4)) {
        let named = serde_io::NamedInstance {
            name: "prop".into(),
            description: "property-test instance".into(),
            instance: instance.clone(),
        };
        let json = serde_json::to_string(&named).expect("serialize");
        let back: serde_io::NamedInstance = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back.instance, instance.clone());

        let schedule = GreedyBalance::new().schedule(&instance);
        let text = serde_io::schedule_to_json(&schedule);
        let back = serde_io::schedule_from_json(&text).expect("deserialize schedule");
        prop_assert_eq!(back.makespan(&instance).unwrap(), schedule.makespan(&instance).unwrap());
    }
}
