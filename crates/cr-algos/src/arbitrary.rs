//! Extensions beyond unit-size jobs (Section 9 of the paper).
//!
//! The paper's analysis is for unit-size jobs, but its model is defined for
//! arbitrary processing volumes, and footnote 3 observes that resource
//! requirements above 1 reduce to requirements of exactly 1 with rescaled
//! volumes.  This module provides:
//!
//! * [`rescaled_job`] / [`build_rescaled_instance`] — the footnote 3
//!   reduction `(r > 1, p) → (1, r·p)`;
//! * [`split_into_unit_jobs`] — a discretization that splits a job of
//!   integral volume `k` into `k` unit-size jobs with the same requirement,
//!   making the exact unit-size algorithms applicable;
//! * the observation (exercised by tests) that [`crate::GreedyBalance`] and
//!   [`crate::RoundRobin`] remain feasible, work-conserving schedulers for
//!   arbitrary volumes because they are built on the step-demand interface of
//!   `cr_core::ScheduleBuilder`.

use cr_core::{Instance, Job, Ratio};

/// Applies the footnote 3 rescaling to a single `(requirement, volume)` pair:
/// a job with requirement `r > 1` and volume `p` behaves exactly like a job
/// with requirement `1` and volume `r · p` (its workload `r·p` is unchanged,
/// and its maximal per-step volume progress `1/r · r = 1` is preserved).
#[must_use]
pub fn rescaled_job(requirement: Ratio, volume: Ratio) -> Job {
    assert!(
        requirement.is_positive() || requirement.is_zero(),
        "requirements must be non-negative"
    );
    assert!(volume.is_positive(), "volumes must be positive");
    if requirement > Ratio::ONE {
        Job::new(Ratio::ONE, requirement * volume)
    } else {
        Job::new(requirement, volume)
    }
}

/// Builds an instance from raw `(requirement, volume)` rows, rescaling any
/// requirement above 1 via [`rescaled_job`].
///
/// # Panics
///
/// Panics if a volume is non-positive or a requirement negative.
#[must_use]
pub fn build_rescaled_instance(rows: Vec<Vec<(Ratio, Ratio)>>) -> Instance {
    let jobs = rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(r, p)| rescaled_job(r, p))
                .collect::<Vec<_>>()
        })
        .collect();
    Instance::new(jobs).expect("rescaled instance is valid by construction")
}

/// Splits every job with an **integral** volume `k ≥ 1` into `k` unit-size
/// jobs with the same requirement.  The resulting unit-size instance has the
/// same total workload and, step for step, admits exactly the same progress
/// as the original instance (a volume-`k` job advances by at most one volume
/// unit per step either way), so optimal makespans coincide.  Returns `None`
/// if some volume is not a positive integer.
#[must_use]
pub fn split_into_unit_jobs(instance: &Instance) -> Option<Instance> {
    let mut rows = Vec::with_capacity(instance.processors());
    for i in 0..instance.processors() {
        let mut row = Vec::new();
        for job in instance.processor_jobs(i) {
            if job.volume.denom() != 1 || !job.volume.is_positive() {
                return None;
            }
            let copies = job.volume.numer();
            for _ in 0..copies {
                row.push(Job::unit(job.requirement));
            }
        }
        rows.push(row);
    }
    // lint: allow(panic_hygiene) — splitting a valid instance's jobs into unit pieces preserves every `Instance::new` invariant
    Some(Instance::new(rows).expect("unit split of a valid instance is valid"))
}

/// The total workload of a raw `(requirement, volume)` table, before any
/// rescaling — convenient for asserting that rescaling preserves workloads.
#[must_use]
pub fn raw_workload(rows: &[Vec<(Ratio, Ratio)>]) -> Ratio {
    rows.iter()
        .flat_map(|row| row.iter())
        .map(|&(r, p)| r * p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GreedyBalance, OptM, RoundRobin, Scheduler};
    use cr_core::{bounds, ratio, InstanceBuilder};

    #[test]
    fn rescaling_clamps_requirement_and_preserves_workload() {
        let job = rescaled_job(ratio(3, 2), ratio(2, 1));
        assert_eq!(job.requirement, Ratio::ONE);
        assert_eq!(job.volume, ratio(3, 1));
        assert_eq!(job.workload(), ratio(3, 1));
        // Requirements within [0, 1] are untouched.
        let job = rescaled_job(ratio(1, 2), ratio(2, 1));
        assert_eq!(job.requirement, ratio(1, 2));
        assert_eq!(job.volume, ratio(2, 1));
    }

    #[test]
    fn build_rescaled_instance_accepts_oversized_requirements() {
        let rows = vec![
            vec![(ratio(5, 4), Ratio::ONE), (ratio(1, 2), Ratio::ONE)],
            vec![(ratio(2, 1), ratio(3, 2))],
        ];
        let expected_workload = raw_workload(&rows);
        let inst = build_rescaled_instance(rows);
        assert_eq!(inst.total_workload(), expected_workload);
        assert!(inst.max_requirement() <= Ratio::ONE);
    }

    #[test]
    fn split_into_unit_jobs_preserves_optimum_on_small_instances() {
        // p0: one job of volume 2 with requirement 60%; p1: two unit jobs.
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(3, 5), ratio(2, 1))])
            .processor([ratio(2, 5), ratio(2, 5)])
            .build();
        let unit = split_into_unit_jobs(&inst).expect("integral volumes");
        assert!(unit.is_unit_size());
        assert_eq!(unit.total_workload(), inst.total_workload());
        assert_eq!(unit.jobs_on(0), 2);

        // The unit-size optimum equals the makespan GreedyBalance reaches on
        // the original instance here (columns pack perfectly).
        let opt_unit = crate::opt_m::opt_m_makespan(&unit);
        assert_eq!(opt_unit, 2);
        let greedy_orig = GreedyBalance::new().makespan(&inst);
        assert_eq!(greedy_orig, opt_unit);
    }

    #[test]
    fn split_rejects_fractional_volumes() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 2), ratio(3, 2))])
            .build();
        assert!(split_into_unit_jobs(&inst).is_none());
    }

    #[test]
    fn greedy_and_round_robin_handle_arbitrary_volumes() {
        let inst = InstanceBuilder::new()
            .processor_jobs([
                Job::new(ratio(3, 10), ratio(5, 2)),
                Job::new(ratio(9, 10), Ratio::ONE),
            ])
            .processor_jobs([Job::new(ratio(6, 10), ratio(2, 1))])
            .processor_jobs([
                Job::new(ratio(2, 10), ratio(4, 1)),
                Job::new(ratio(5, 10), ratio(1, 2)),
            ])
            .build();
        for scheduler in [
            Box::new(GreedyBalance::new()) as Box<dyn Scheduler>,
            Box::new(RoundRobin::new()),
        ] {
            let schedule = scheduler.schedule(&inst);
            let trace = schedule.trace(&inst).unwrap();
            assert!(
                trace.makespan() >= bounds::trivial_lower_bound(&inst),
                "{} beat the lower bound",
                scheduler.name()
            );
            // Work conservation keeps them within factor 2 + chain slack of the
            // trivial bound on this instance.
            assert!(trace.makespan() <= 3 * bounds::trivial_lower_bound(&inst));
        }
    }

    #[test]
    fn unit_size_exact_algorithms_reject_arbitrary_volumes() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(ratio(1, 2), ratio(2, 1))])
            .processor([ratio(1, 2)])
            .build();
        let result = std::panic::catch_unwind(|| OptM::new().makespan(&inst));
        assert!(result.is_err(), "OptM must reject non-unit volumes");
    }
}
