//! Plain-text rendering.

use cr_core::{Instance, Ratio, Schedule, ScheduleTrace, SchedulingGraph};

/// Formats a ratio as a compact percentage label (`"55"` for 55%, `"7.5"`
/// for 7.5%), the notation used by the paper's figures.
#[must_use]
pub fn percent_label(value: Ratio) -> String {
    let pct = value * Ratio::from_integer(100);
    if pct.denom() == 1 {
        format!("{}", pct.numer())
    } else {
        format!("{:.1}", pct.to_f64())
    }
}

/// Renders an instance as one row of requirement percentages per processor,
/// matching the node labels of Figures 1–5.
#[must_use]
pub fn render_instance(instance: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "instance: m = {}, n = {}, total workload = {:.3}\n",
        instance.processors(),
        instance.max_chain_length(),
        instance.total_workload().to_f64()
    ));
    for i in 0..instance.processors() {
        out.push_str(&format!("  p{i:<2} |"));
        for job in instance.processor_jobs(i) {
            if job.is_unit() {
                out.push_str(&format!(" {:>5}", percent_label(job.requirement)));
            } else {
                out.push_str(&format!(
                    " {:>5}x{}",
                    percent_label(job.requirement),
                    job.volume
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders an executed schedule as a Gantt-like table: one row per processor,
/// one column per time step, each cell showing the index of the job being
/// worked on and the share it received (in percent).  A `*` marks steps in
/// which the job completes.
#[must_use]
pub fn render_schedule(instance: &Instance, trace: &ScheduleTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("schedule: makespan = {}\n", trace.makespan()));
    out.push_str("      ");
    for t in 0..trace.makespan() {
        out.push_str(&format!("{:>10}", format!("t{t}")));
    }
    out.push('\n');
    for i in 0..instance.processors() {
        out.push_str(&format!("  p{i:<3}"));
        for t in 0..trace.makespan() {
            match trace.active_job(t, i) {
                Some(job) if trace.is_active(t, i) => {
                    let share = percent_label(trace.assigned(t, i));
                    let marker = if trace.completes_in(job, t) { "*" } else { " " };
                    out.push_str(&format!(
                        "{:>10}",
                        format!("j{}:{}{}", job.index, share, marker)
                    ));
                }
                _ => out.push_str(&format!("{:>10}", "·")),
            }
        }
        out.push('\n');
    }
    let wasted: f64 = (0..trace.makespan())
        .map(|t| 1.0 - trace.consumed_total(t).to_f64())
        .sum();
    out.push_str(&format!(
        "  unused resource over the horizon: {wasted:.3} steps\n"
    ));
    out
}

/// Renders the raw share matrix of a schedule (one row per step).
#[must_use]
pub fn render_share_matrix(schedule: &Schedule) -> String {
    let mut out = String::new();
    for (t, row) in schedule.steps().iter().enumerate() {
        out.push_str(&format!("  t{t:<3}"));
        for share in row {
            out.push_str(&format!(" {:>6}", percent_label(*share)));
        }
        out.push('\n');
    }
    out
}

/// Renders the connected components of a scheduling hypergraph: class, edge
/// count and node count per component, as used to discuss Figure 1b and the
/// Lemma 5/6 bounds.
#[must_use]
pub fn render_components(graph: &SchedulingGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scheduling graph: {} nodes, {} edges, {} components (#∅ = {:.2})\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_components(),
        graph.average_edges_per_component().to_f64()
    ));
    for (k, c) in graph.components().iter().enumerate() {
        out.push_str(&format!(
            "  C{:<2} steps {:>3}..{:<3} class q = {}  edges # = {}  nodes |C| = {}\n",
            k + 1,
            c.first_step(),
            c.last_step(),
            c.class,
            c.num_edges(),
            c.num_nodes()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_algos::{GreedyBalance, Scheduler};
    use cr_instances::figure1_instance;

    #[test]
    fn percent_labels() {
        assert_eq!(percent_label(Ratio::from_percent(55)), "55");
        assert_eq!(percent_label(Ratio::ONE), "100");
        assert_eq!(percent_label(Ratio::new(3, 40)), "7.5");
    }

    #[test]
    fn instance_rendering_contains_all_rows() {
        let text = render_instance(&figure1_instance());
        assert!(text.contains("p0"));
        assert!(text.contains("p2"));
        assert!(text.contains("90"));
        assert!(text.contains("95"));
    }

    #[test]
    fn schedule_rendering_marks_completions() {
        let inst = figure1_instance();
        let schedule = GreedyBalance::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let text = render_schedule(&inst, &trace);
        assert!(text.contains("makespan"));
        assert!(text.contains('*'), "completed jobs should be marked");
        assert!(text.lines().count() >= inst.processors() + 2);
    }

    #[test]
    fn component_rendering_lists_every_component() {
        let inst = figure1_instance();
        let schedule = cr_algos::SmallestRequirementFirst::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let graph = SchedulingGraph::build(&inst, &trace);
        let text = render_components(&graph);
        assert!(text.contains("C1"));
        assert!(text.contains("C3"));
        assert!(text.contains("class q = 3"));
    }

    #[test]
    fn share_matrix_rendering() {
        let schedule = Schedule::new(vec![vec![Ratio::from_percent(30), Ratio::from_percent(70)]]);
        let text = render_share_matrix(&schedule);
        assert!(text.contains("30"));
        assert!(text.contains("70"));
    }
}
