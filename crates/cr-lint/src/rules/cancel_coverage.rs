//! **cancel_coverage** — loops in the designated hot modules must poll a
//! `CancelGate` (`cr_core::cancel::CancelGate`), or visibly delegate to a
//! `*_cancellable` helper that does, so no search loop can ever again run
//! past a request's deadline unnoticed.
//!
//! A loop is compliant when its header or body mentions *cancellation
//! evidence*: a `tick`/`check_now`/`check` call, or any identifier
//! containing `gate`, `cancel`, or `token` (which is how delegation to the
//! gated helpers reads at the call site). Small structurally bounded loops
//! — per-processor accumulations, back-trace walks over already-bounded
//! rounds — carry a justification instead, turning every deliberate
//! exception into in-tree documentation.

use crate::diag::Diagnostic;
use crate::lexer::{matching_brace, Token, TokenKind};
use crate::scope::Ctx;
use crate::suppress::Suppressions;

/// Rule name.
pub const RULE: &str = "cancel_coverage";

/// Identifiers that count as evidence of cooperative cancellation.
fn is_evidence(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower == "tick"
        || lower == "check_now"
        || lower == "check"
        || lower.contains("gate")
        || lower.contains("cancel")
        || lower.contains("token")
}

/// Runs the rule over one hot-module file.
pub fn check(
    path: &str,
    tokens: &[Token],
    ctx: &[Ctx],
    suppressions: &Suppressions,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || ctx[i].in_test {
            continue;
        }
        let keyword = tok.text.as_str();
        if !matches!(keyword, "for" | "while" | "loop") {
            continue;
        }
        // Find the body `{`, collecting the header tokens on the way.
        // `for` is only a loop when its header contains `in` (this skips
        // HRTBs `for<'a>` and `impl Trait for Type`).
        let mut open = None;
        let mut header_has_in = false;
        let mut header_has_evidence = false;
        let mut depth = 0i64;
        for (j, t) in tokens.iter().enumerate().skip(i + 1) {
            match t.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Ident if t.text == "in" && depth == 0 => header_has_in = true,
                TokenKind::Ident if is_evidence(&t.text) => header_has_evidence = true,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        if keyword == "for" && !header_has_in {
            continue; // HRTB or `impl … for …`
        }
        if keyword == "loop" && tokens[i + 1..open].iter().any(|t| !t.is_comment()) {
            continue; // `loop` only introduces a loop when followed by `{`
        }
        if header_has_evidence {
            continue;
        }
        let close = matching_brace(tokens, open);
        let body_has_evidence = tokens[open..=close]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && is_evidence(&t.text));
        if body_has_evidence || suppressions.covers(RULE, tok.line) {
            continue;
        }
        diags.push(Diagnostic {
            path: path.to_string(),
            line: tok.line,
            rule: RULE,
            message: format!(
                "`{keyword}` loop in a hot module never polls a CancelGate: add a \
                 `gate.tick()?` (or delegate to a *_cancellable helper), or justify with \
                 `// lint: allow({RULE}) — <why this loop is bounded>`"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze;

    fn run(src: &str) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let ctx = analyze(&tokens);
        let mut diags = Vec::new();
        let sup = crate::suppress::parse("f.rs", &tokens, &mut diags);
        check("f.rs", &tokens, &ctx, &sup, &mut diags);
        diags
    }

    #[test]
    fn ungated_loop_is_flagged() {
        let diags = run("fn f() { while busy() { step(); } }");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("CancelGate"));
    }

    #[test]
    fn tick_in_body_passes() {
        assert!(run("fn f() { while busy() { gate.tick()?; step(); } }").is_empty());
    }

    #[test]
    fn cancellable_helper_in_header_passes() {
        assert!(
            run("fn f() { for x in successors_cancellable(i, &mut gate)? { use_it(x); } }")
                .is_empty()
        );
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        assert!(run("impl Solver for OptTwo { fn f(&self) {} }").is_empty());
        assert!(run("fn f(g: impl for<'a> Fn(&'a u8)) {}").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(run("#[cfg(test)] mod tests { fn t() { for i in 0..9 { go(i); } } }").is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn f() {\n// lint: allow(cancel_coverage) — bounded by processor count\nfor i in 0..m { init(i); }\n}";
        assert!(run(src).is_empty());
    }
}
