//! # cr-algos — scheduling algorithms for the CRSharing problem
//!
//! This crate implements every algorithm analyzed in *"Scheduling Shared
//! Continuous Resources on Many-Cores"* plus the baselines used by the
//! experiment harness:
//!
//! | Algorithm | Paper reference | Guarantee | Type |
//! |-----------|-----------------|-----------|------|
//! | [`RoundRobin`] | §4.2, Theorem 3 | exactly 2-approximate | linear time |
//! | [`GreedyBalance`] | §8.3, Theorems 7–8 | exactly (2 − 1/m)-approximate | linear time |
//! | [`OptTwo`] (`OptResAssignment`) | §6, Algorithm 1, Theorem 5 | optimal for m = 2 | O(n²) |
//! | [`OptM`] (`OptResAssignment2`) | §7, Algorithm 2, Theorem 6 | optimal for fixed m | polynomial for fixed m |
//! | [`brute_force`] | — | optimal (reference) | exponential |
//! | [`heuristics`] | §2 (discrete-continuous heuristics) | none | linear time |
//! | [`arbitrary`] | §9 outlook | — | extensions |
//!
//! All algorithms consume a [`cr_core::Instance`] and produce a
//! [`cr_core::Schedule`] through the shared [`Scheduler`] trait, so they can
//! be swapped freely in experiments.  The [`solver`] module layers the
//! unified request/response surface on top: every algorithm (plus the
//! bounds-only evaluator) is a [`solver::Solver`] behind the string-keyed
//! [`solver::registry`], with engine preferences, budgets and structured
//! [`solver::SolveError`]s — the interface the batch solver service in
//! `cr-service` fans out over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod brute_force;
pub mod greedy_balance;
pub mod heuristics;
mod multi_engine;
mod multi_sched;
mod obs;
pub mod opt_m;
pub mod opt_two;
pub mod round_robin;
mod scaled_engine;
mod scaled_sched;
pub mod solver;
mod subset_enum;
pub mod traits;

pub use brute_force::{
    brute_force_makespan, brute_force_makespan_rational, brute_force_with_stats,
    brute_force_with_stats_rational, SearchStats,
};
pub use greedy_balance::GreedyBalance;
pub use heuristics::{
    EqualShare, LargestRequirementFirst, ProportionalShare, SmallestRequirementFirst,
};
pub use opt_m::{opt_m_makespan, opt_m_makespan_rational, try_opt_m_makespan, OptM};
pub use opt_two::{opt_two_makespan, opt_two_makespan_rational, opt_two_makespan_sparse, OptTwo};
pub use round_robin::{phase_length, round_robin_upper_bound, RoundRobin};
pub use scaled_engine::SearchError;
pub use solver::{
    registry, Budget, Engine, EnginePreference, LowerBounds, Prepared, Registry, SolveError,
    SolveOutcome, SolveRequest, Solver,
};
#[allow(deprecated)]
pub use traits::standard_line_up;
pub use traits::{BoxedScheduler, Scheduler};

/// Commonly used items for glob import.
pub mod prelude {
    pub use crate::{
        brute_force_makespan, opt_m_makespan, opt_two_makespan, registry, EqualShare,
        GreedyBalance, OptM, OptTwo, ProportionalShare, RoundRobin, Scheduler, SolveRequest,
        Solver,
    };
}
