//! Structural schedule properties from Section 4.1 of the paper:
//! *non-wasting*, *progressive*, *nested* and *balanced* schedules, plus the
//! consequences stated in Propositions 1 and 2.
//!
//! All predicates operate on a [`ScheduleTrace`], i.e. on a schedule that has
//! already been validated against its instance.

use crate::job::JobId;
use crate::rational::Ratio;
use crate::schedule::ScheduleTrace;
use std::fmt;

/// A witness for the violation of one of the structural properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyViolation {
    /// A step used less than the full resource yet an active job survived it
    /// (violates Definition 2, *non-wasting*).
    Wasteful {
        /// The wasteful time step.
        step: usize,
        /// An active job that did not complete in that step.
        surviving_job: JobId,
    },
    /// More than one job that received resource was left partially processed
    /// in the same step (violates Definition 3, *progressive*).
    NotProgressive {
        /// The offending time step.
        step: usize,
        /// The resourced jobs left partially processed.
        partial_jobs: Vec<JobId>,
    },
    /// The nesting condition of Definition 4 is violated at `step`: `outer`
    /// is running although the later-started `inner` is still unfinished.
    NotNested {
        /// The offending time step.
        step: usize,
        /// The earlier-started job that runs at `step`.
        outer: JobId,
        /// The later-started, still unfinished job.
        inner: JobId,
    },
    /// Processor `lagging` finished a job at `step` although processor
    /// `ahead` had strictly more unfinished jobs and did not finish one
    /// (violates Definition 5, *balanced*).
    NotBalanced {
        /// The offending time step.
        step: usize,
        /// The processor that finished a job.
        lagging: usize,
        /// The processor with more unfinished jobs that did not finish one.
        ahead: usize,
    },
}

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyViolation::Wasteful { step, surviving_job } => write!(
                f,
                "step {step} wastes resource while job {surviving_job} stays unfinished"
            ),
            PropertyViolation::NotProgressive { step, partial_jobs } => write!(
                f,
                "step {step} leaves {} resourced jobs partially processed",
                partial_jobs.len()
            ),
            PropertyViolation::NotNested { step, outer, inner } => write!(
                f,
                "step {step}: job {outer} runs although later-started job {inner} is unfinished"
            ),
            PropertyViolation::NotBalanced { step, lagging, ahead } => write!(
                f,
                "step {step}: processor {lagging} finishes a job while processor {ahead} (more remaining jobs) does not"
            ),
        }
    }
}

/// Checks Definition 2: in every step that does not use the full resource,
/// all active jobs complete.
#[must_use]
pub fn check_non_wasting(trace: &ScheduleTrace) -> Option<PropertyViolation> {
    for t in 0..trace.num_steps() {
        if trace.assigned_total(t) >= Ratio::ONE {
            continue;
        }
        for i in 0..trace.processors() {
            if let Some(job) = trace.active_job(t, i) {
                if !trace.completes_in(job, t) {
                    return Some(PropertyViolation::Wasteful {
                        step: t,
                        surviving_job: job,
                    });
                }
            }
        }
    }
    None
}

/// Checks Definition 3: per step, at most one job that received resource is
/// only partially processed.
#[must_use]
pub fn check_progressive(trace: &ScheduleTrace) -> Option<PropertyViolation> {
    for t in 0..trace.num_steps() {
        let mut partial = Vec::new();
        for i in 0..trace.processors() {
            let Some(job) = trace.active_job(t, i) else {
                continue;
            };
            if trace.assigned(t, i).is_positive() && !trace.completes_in(job, t) {
                partial.push(job);
            }
        }
        if partial.len() > 1 {
            return Some(PropertyViolation::NotProgressive {
                step: t,
                partial_jobs: partial,
            });
        }
    }
    None
}

/// Checks Definition 4 (*nested*): there is no step `t` with two jobs
/// `(i,j)` and `(i',j')` such that `S(i,j) < S(i',j') ≤ t < C(i',j')`,
/// `S(i',j') < C(i,j)`, and `(i,j)` is running during `t`.
#[must_use]
pub fn check_nested(trace: &ScheduleTrace) -> Option<PropertyViolation> {
    // Collect (job, start, completion) triples once.
    let mut jobs = Vec::new();
    for t in 0..trace.num_steps() {
        for i in 0..trace.processors() {
            if let Some(job) = trace.active_job(t, i) {
                if trace.completes_in(job, t) {
                    let start = trace.start_step(job).unwrap_or(t);
                    jobs.push((job, start, t));
                }
            }
        }
    }

    for t in 0..trace.num_steps() {
        for i in 0..trace.processors() {
            let Some(outer) = trace.active_job(t, i) else {
                continue;
            };
            if !trace.is_running(t, i) {
                continue;
            }
            let (Some(s_outer), Some(c_outer)) =
                (trace.start_step(outer), trace.completion_step(outer))
            else {
                continue;
            };
            for &(inner, s_inner, c_inner) in &jobs {
                if inner == outer {
                    continue;
                }
                if s_outer < s_inner && s_inner <= t && t < c_inner && s_inner < c_outer {
                    return Some(PropertyViolation::NotNested {
                        step: t,
                        outer,
                        inner,
                    });
                }
            }
        }
    }
    None
}

/// Checks Definition 5 (*balanced*): whenever a processor finishes a job in a
/// step, every processor with strictly more unfinished jobs also finishes one.
#[must_use]
pub fn check_balanced(trace: &ScheduleTrace) -> Option<PropertyViolation> {
    for t in 0..trace.num_steps() {
        for i in 0..trace.processors() {
            let finished_i = trace
                .active_job(t, i)
                .map(|job| trace.completes_in(job, t))
                .unwrap_or(false);
            if !finished_i {
                continue;
            }
            let n_i = trace.unfinished_jobs(t, i);
            for i2 in 0..trace.processors() {
                if i2 == i {
                    continue;
                }
                let n_i2 = trace.unfinished_jobs(t, i2);
                if n_i2 > n_i {
                    let finished_i2 = trace
                        .active_job(t, i2)
                        .map(|job| trace.completes_in(job, t))
                        .unwrap_or(false);
                    if !finished_i2 {
                        return Some(PropertyViolation::NotBalanced {
                            step: t,
                            lagging: i,
                            ahead: i2,
                        });
                    }
                }
            }
        }
    }
    None
}

/// `true` iff the schedule is non-wasting (Definition 2).
#[must_use]
pub fn is_non_wasting(trace: &ScheduleTrace) -> bool {
    check_non_wasting(trace).is_none()
}

/// `true` iff the schedule is progressive (Definition 3).
#[must_use]
pub fn is_progressive(trace: &ScheduleTrace) -> bool {
    check_progressive(trace).is_none()
}

/// `true` iff the schedule is nested (Definition 4).
#[must_use]
pub fn is_nested(trace: &ScheduleTrace) -> bool {
    check_nested(trace).is_none()
}

/// `true` iff the schedule is balanced (Definition 5).
#[must_use]
pub fn is_balanced(trace: &ScheduleTrace) -> bool {
    check_balanced(trace).is_none()
}

/// Summary of all four structural properties of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyReport {
    /// Definition 2.
    pub non_wasting: bool,
    /// Definition 3.
    pub progressive: bool,
    /// Definition 4.
    pub nested: bool,
    /// Definition 5.
    pub balanced: bool,
    /// The first violation found for each failed property.
    pub violations: Vec<PropertyViolation>,
}

impl PropertyReport {
    /// Evaluates all structural properties of a trace.
    #[must_use]
    pub fn analyze(trace: &ScheduleTrace) -> Self {
        let mut violations = Vec::new();
        let non_wasting = match check_non_wasting(trace) {
            Some(v) => {
                violations.push(v);
                false
            }
            None => true,
        };
        let progressive = match check_progressive(trace) {
            Some(v) => {
                violations.push(v);
                false
            }
            None => true,
        };
        let nested = match check_nested(trace) {
            Some(v) => {
                violations.push(v);
                false
            }
            None => true,
        };
        let balanced = match check_balanced(trace) {
            Some(v) => {
                violations.push(v);
                false
            }
            None => true,
        };
        PropertyReport {
            non_wasting,
            progressive,
            nested,
            balanced,
            violations,
        }
    }

    /// Whether the schedule satisfies the three properties Lemma 1 grants
    /// (non-wasting, progressive and nested).
    #[must_use]
    pub fn is_normalized(&self) -> bool {
        self.non_wasting && self.progressive && self.nested
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-wasting: {}, progressive: {}, nested: {}, balanced: {}",
            self.non_wasting, self.progressive, self.nested, self.balanced
        )
    }
}

/// Checks Proposition 1 for a balanced schedule:
/// (a) `nᵢ ≥ nᵢ'` implies `nᵢ(t) ≥ nᵢ'(t) − 1` for all `t`;
/// (b) `nᵢ > nᵢ'` implies `nᵢ(t) ≤ nᵢ'(t) + nᵢ − nᵢ'` for all `t`.
///
/// Returns `true` when both statements hold for every processor pair and
/// step.  Used by tests to confirm the proposition on schedules produced by
/// balanced algorithms.
#[must_use]
pub fn proposition1_holds(trace: &ScheduleTrace, totals: &[usize]) -> bool {
    let m = trace.processors();
    debug_assert_eq!(totals.len(), m);
    for t in 0..=trace.num_steps() {
        for i1 in 0..m {
            for i2 in 0..m {
                if i1 == i2 {
                    continue;
                }
                let (n1, n2) = (totals[i1], totals[i2]);
                let (r1, r2) = (trace.unfinished_jobs(t, i1), trace.unfinished_jobs(t, i2));
                if n1 >= n2 && r1 + 1 < r2 {
                    return false;
                }
                if n1 > n2 && r1 > r2 + (n1 - n2) {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks Proposition 2 for a balanced schedule: if job `(i, j)` is active at
/// step `t` and is not the last job of processor `i`, then every processor in
/// `M_{j+1}` (having at least `j+1` jobs, one-based) is active at `t`.
#[must_use]
pub fn proposition2_holds(trace: &ScheduleTrace, totals: &[usize]) -> bool {
    let m = trace.processors();
    for t in 0..trace.num_steps() {
        for i in 0..m {
            let Some(job) = trace.active_job(t, i) else {
                continue;
            };
            if trace.unfinished_jobs(t, i) <= 1 {
                continue; // (i, j) is the last job on processor i.
            }
            // All processors with at least job.index + 1 jobs must be active.
            for (i2, &total) in totals.iter().enumerate() {
                if total > job.index && !trace.is_active(t, i2) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, InstanceBuilder};
    use crate::rational::ratio;
    use crate::schedule::Schedule;

    /// The Figure 2 input: p0 has four jobs of 50%, p1 and p2 one job of 100%.
    fn fig2_instance() -> Instance {
        InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2), ratio(1, 2), ratio(1, 2)])
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .build()
    }

    /// Figure 2b — the nested schedule.
    fn fig2_nested_schedule() -> Schedule {
        Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
        ])
    }

    /// Figure 2c — the unnested schedule: p1's job is already running when
    /// p2's job starts, and completes before p2's job completes.
    fn fig2_unnested_schedule() -> Schedule {
        Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
        ])
    }

    #[test]
    fn figure2_nested_schedule_has_all_lemma1_properties() {
        let inst = fig2_instance();
        let trace = fig2_nested_schedule().trace(&inst).unwrap();
        assert!(is_non_wasting(&trace));
        assert!(is_progressive(&trace));
        assert!(is_nested(&trace));
        let report = PropertyReport::analyze(&trace);
        assert!(report.is_normalized());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn figure2_unnested_schedule_fails_nestedness_only() {
        let inst = fig2_instance();
        let trace = fig2_unnested_schedule().trace(&inst).unwrap();
        assert!(is_non_wasting(&trace));
        assert!(is_progressive(&trace));
        assert!(!is_nested(&trace));
        let violation = check_nested(&trace).unwrap();
        match violation {
            PropertyViolation::NotNested { outer, inner, .. } => {
                // p1's job (started first) runs while p2's job (started later)
                // is still unfinished.
                assert_eq!(outer.processor, 1);
                assert_eq!(inner.processor, 2);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn wasteful_schedule_detected() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2)])
            .build();
        // Step 0 assigns only 1/4 (not the full resource, job survives).
        let schedule = Schedule::new(vec![
            vec![ratio(1, 4)],
            vec![ratio(1, 4)],
            vec![ratio(1, 2)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert!(!is_non_wasting(&trace));
        assert!(matches!(
            check_non_wasting(&trace),
            Some(PropertyViolation::Wasteful { step: 0, .. })
        ));
    }

    #[test]
    fn non_progressive_schedule_detected() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .build();
        // Both jobs receive half the resource and survive the step.
        let schedule = Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2)],
            vec![ratio(1, 2), ratio(1, 2)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert!(is_non_wasting(&trace));
        assert!(!is_progressive(&trace));
    }

    #[test]
    fn unbalanced_schedule_detected() {
        // p0 has one job, p1 has two.  Finishing p0's job first while p1 (more
        // remaining jobs) does not finish violates balance.
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([ratio(3, 4), ratio(3, 4)])
            .build();
        let schedule = Schedule::new(vec![
            vec![Ratio::ONE, Ratio::ZERO],
            vec![Ratio::ZERO, ratio(3, 4)],
            vec![Ratio::ZERO, ratio(3, 4)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert!(!is_balanced(&trace));
        assert!(matches!(
            check_balanced(&trace),
            Some(PropertyViolation::NotBalanced {
                step: 0,
                lagging: 0,
                ahead: 1
            })
        ));
    }

    #[test]
    fn balanced_schedule_accepted() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([ratio(1, 2), ratio(1, 2)])
            .build();
        // Finish p1's jobs first (it has more), then p0's.
        let schedule = Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2)],
            vec![ratio(1, 2), ratio(1, 2)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        assert!(is_balanced(&trace));
        let totals = vec![1, 2];
        assert!(proposition1_holds(&trace, &totals));
        assert!(proposition2_holds(&trace, &totals));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = PropertyViolation::Wasteful {
            step: 3,
            surviving_job: JobId::new(1, 2),
        };
        assert!(v.to_string().contains("step 3"));
        let v = PropertyViolation::NotBalanced {
            step: 0,
            lagging: 1,
            ahead: 2,
        };
        assert!(v.to_string().contains("processor 1"));
    }
}
