//! Cross-crate integration tests: the exact algorithms agree with each other
//! and with brute force, and the approximation algorithms respect their
//! proven guarantees (Theorems 3, 5, 6 and 7) on randomized instances.

mod common;

use common::{tiny_instance, unit_instance};
use crsharing::algos::{
    brute_force_makespan, opt_m_makespan, opt_two_makespan, opt_two_makespan_sparse, GreedyBalance,
    OptM, OptTwo, RoundRobin, Scheduler,
};
use crsharing::core::bounds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 6: the configuration search equals the brute-force optimum.
    #[test]
    fn opt_m_matches_brute_force(instance in tiny_instance()) {
        prop_assert_eq!(opt_m_makespan(&instance), brute_force_makespan(&instance));
    }

    /// Theorem 5: the two-processor DP (both variants) equals the optimum and
    /// its reconstructed schedule achieves the claimed makespan.
    #[test]
    fn opt_two_matches_brute_force(instance in unit_instance(2, 5)) {
        prop_assume!(instance.processors() == 2);
        let dp = opt_two_makespan(&instance);
        prop_assert_eq!(dp, brute_force_makespan(&instance));
        prop_assert_eq!(dp, opt_two_makespan_sparse(&instance));
        prop_assert_eq!(dp, OptTwo::new().makespan(&instance));
    }

    /// Optimal makespans respect the instance lower bounds.
    #[test]
    fn optimum_respects_lower_bounds(instance in tiny_instance()) {
        let opt = opt_m_makespan(&instance);
        prop_assert!(opt >= bounds::trivial_lower_bound(&instance));
        prop_assert!(opt <= instance.total_jobs());
        prop_assert_eq!(OptM::new().makespan(&instance), opt);
    }

    /// Theorem 7: GreedyBalance stays within 2 − 1/m of the optimum;
    /// Theorem 3: RoundRobin stays within 2.
    #[test]
    fn approximation_guarantees_hold(instance in tiny_instance()) {
        let opt = opt_m_makespan(&instance) as f64;
        let m = instance.processors() as f64;
        let greedy = GreedyBalance::new().makespan(&instance) as f64;
        let rr = RoundRobin::new().makespan(&instance) as f64;
        prop_assert!(greedy <= (2.0 - 1.0 / m) * opt + 1e-9,
            "GreedyBalance {} vs optimum {} on m={}", greedy, opt, m);
        prop_assert!(rr <= 2.0 * opt + 1e-9, "RoundRobin {} vs optimum {}", rr, opt);
        prop_assert!(greedy >= opt);
        prop_assert!(rr >= opt);
    }

    /// Every polynomial method of the solver registry produces a feasible
    /// schedule whose makespan lies between the lower bound and the total
    /// job count.
    #[test]
    fn line_up_produces_feasible_schedules(instance in unit_instance(4, 5)) {
        let registry = crsharing::algos::registry();
        for method in crsharing::algos::solver::POLY_METHODS {
            let request = crsharing::algos::SolveRequest::new(method, instance.clone())
                .with_schedule();
            let outcome = registry.solve(&request).expect("polynomial methods are total");
            let schedule = outcome.schedule.expect("schedule requested");
            let trace = schedule.trace(&instance).expect("feasible schedule");
            prop_assert_eq!(outcome.makespan, Some(trace.makespan()));
            prop_assert!(trace.makespan() >= bounds::workload_bound_steps(&instance));
            prop_assert!(trace.makespan() >= bounds::chain_bound(&instance));
            prop_assert!(trace.makespan() <= instance.total_jobs().max(1));
        }
    }
}

#[test]
fn exact_algorithms_agree_on_paper_examples() {
    let fig1 = crsharing::instances::figure1_instance();
    assert_eq!(opt_m_makespan(&fig1), 6);
    assert_eq!(brute_force_makespan(&fig1), 6);

    let fig2 = crsharing::instances::figure2_instance();
    assert_eq!(opt_m_makespan(&fig2), 4);
    assert_eq!(GreedyBalance::new().makespan(&fig2), 4);
}

#[test]
fn round_robin_hits_its_worst_case_family() {
    for n in [10usize, 50, 100] {
        let inst = crsharing::instances::round_robin_worst_case(n);
        assert_eq!(RoundRobin::new().makespan(&inst), 2 * n);
        assert_eq!(opt_two_makespan(&inst), n + 1);
    }
}

#[test]
fn greedy_balance_hits_its_worst_case_family() {
    for m in 2..=5usize {
        let blocks = 3;
        let inst = crsharing::instances::greedy_balance_worst_case(m, 1000, blocks);
        assert_eq!(
            GreedyBalance::new().makespan(&inst),
            crsharing::instances::greedy_balance_worst_case_steps(m, blocks)
        );
    }
}
