//! The NP-hardness reduction of Theorem 4: Partition ≤ₚ CRSharing.
//!
//! Given a Partition instance `a_1, …, a_n` with `Σ a_i = 2A`, the reduction
//! builds a CRSharing instance on `n` processors with three unit-size jobs
//! per processor: `ã_i, ε̃, ã_i` where `ã_i = a_i / (A + δ)` and
//! `ε̃ = ε / (A + δ)` for `ε ∈ (0, 1/n)` and `δ = n·ε < 1`.  The CRSharing
//! instance admits a schedule of makespan 4 if and only if the Partition
//! instance is a YES-instance; otherwise every schedule needs at least 5
//! steps.  Corollary 1 turns the 4-vs-5 gap into a 5/4 inapproximability
//! bound.
//!
//! The module also ships a small pseudo-polynomial Partition solver
//! ([`solve_partition`]) so that tests and experiments can label reduced
//! instances with ground truth.

use cr_core::{Instance, Ratio};

/// The outcome of the reduction: the CRSharing instance together with the
/// bookkeeping needed to interpret schedules for it.
#[derive(Debug, Clone)]
pub struct PartitionReduction {
    /// The reduced CRSharing instance (`n` processors, 3 unit jobs each).
    pub instance: Instance,
    /// The Partition values `a_i`.
    pub values: Vec<u64>,
    /// Half of the total sum, `A`.
    pub target: u64,
    /// The `ε` used by the reduction (as an exact rational).
    pub epsilon: Ratio,
}

impl PartitionReduction {
    /// Makespan of an optimal schedule if the Partition instance is a
    /// YES-instance.
    pub const YES_MAKESPAN: usize = 4;
    /// Minimum makespan of any schedule if the Partition instance is a
    /// NO-instance.
    pub const NO_MAKESPAN: usize = 5;
}

/// Builds the Theorem 4 reduction for the Partition values `a`.
///
/// # Panics
///
/// Panics if fewer than two values are given, if any value is zero, or if
/// their sum is odd (the reduction needs `Σ a_i = 2A`; odd sums are trivial
/// NO-instances that do not need the reduction).
#[must_use]
pub fn partition_to_crsharing(values: &[u64]) -> PartitionReduction {
    assert!(values.len() >= 2, "Partition needs at least two values");
    assert!(
        values.iter().all(|&a| a > 0),
        "Partition values must be positive"
    );
    let total: u64 = values.iter().sum();
    assert!(
        total % 2 == 0,
        "the reduction requires an even total sum (odd sums are trivial NO-instances)"
    );
    let a_half = total / 2;
    assert!(
        values.iter().all(|&a| a <= a_half),
        "every value must be at most half the total (larger values are trivial NO-instances and \
         would produce resource requirements above 1)"
    );
    let n = values.len() as i128;

    // ε = 1 / (2n) ∈ (0, 1/n), hence δ = n·ε = 1/2 < 1.
    let epsilon = Ratio::new(1, 2 * n);
    let delta = epsilon * Ratio::new(n, 1);
    let denom = Ratio::new(a_half as i128, 1) + delta; // A + δ

    let scaled = |x: Ratio| x / denom;
    let rows: Vec<Vec<Ratio>> = values
        .iter()
        .map(|&a| {
            let a_tilde = scaled(Ratio::new(a as i128, 1));
            let eps_tilde = scaled(epsilon);
            vec![a_tilde, eps_tilde, a_tilde]
        })
        .collect();

    PartitionReduction {
        instance: Instance::unit_from_requirements(rows),
        values: values.to_vec(),
        target: a_half,
        epsilon,
    }
}

/// Solves Partition exactly with the classical subset-sum dynamic program.
/// Returns a membership vector (`true` = first part) summing to `A`, or
/// `None` for NO-instances.  Pseudo-polynomial in `Σ a_i`, which is plenty
/// for the experiment sizes used here.
#[must_use]
pub fn solve_partition(values: &[u64]) -> Option<Vec<bool>> {
    let total: u64 = values.iter().sum();
    if total % 2 != 0 {
        return None;
    }
    let target = (total / 2) as usize;
    // reachable[s] = Some(index of the last value used to reach sum s);
    // parent[s] = (previous sum, item index) for certificate reconstruction.
    let mut reachable: Vec<Option<usize>> = vec![None; target + 1];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; target + 1];
    reachable[0] = Some(usize::MAX);
    for (idx, &a) in values.iter().enumerate() {
        let a = a as usize;
        // Iterate sums downwards so each item is used at most once.
        for s in (a..=target).rev() {
            if reachable[s].is_none() && reachable[s - a].is_some() && parent[s].is_none() {
                reachable[s] = Some(idx);
                parent[s] = Some((s - a, idx));
            }
        }
    }
    reachable[target]?;
    let mut membership = vec![false; values.len()];
    let mut s = target;
    while s > 0 {
        let (prev, item) = parent[s].expect("reachable sums have parents");
        membership[item] = true;
        s = prev;
    }
    Some(membership)
}

/// Whether `values` is a YES-instance of Partition.
#[must_use]
pub fn is_yes_instance(values: &[u64]) -> bool {
    solve_partition(values).is_some()
}

/// Constructs the certificate schedule of Figure 4a for a YES-instance: the
/// processors of the first part finish their first job in step 1, the others
/// in step 2, and symmetrically for the third jobs in steps 4 and 5 … folded
/// into 4 steps total.  Returns the makespan-4 schedule as share matrix.
///
/// # Panics
///
/// Panics if `membership` does not describe a perfect partition of the
/// reduction's values.
#[must_use]
pub fn yes_certificate_schedule(
    reduction: &PartitionReduction,
    membership: &[bool],
) -> cr_core::Schedule {
    let sum_first: u64 = reduction
        .values
        .iter()
        .zip(membership)
        .filter_map(|(&a, &in_first)| if in_first { Some(a) } else { None })
        .sum();
    assert_eq!(
        sum_first, reduction.target,
        "membership is not a perfect partition"
    );
    let n = reduction.values.len();
    let inst = &reduction.instance;
    let req = |i: usize, j: usize| inst.processor_jobs(i)[j].requirement;

    // Step 1: first jobs of the first part.  Step 2: first jobs of the second
    // part plus all ε̃ jobs of the first part.  Step 3: ε̃ jobs of the second
    // part plus third jobs of the first part.  Step 4: third jobs of the
    // second part.
    let mut steps = vec![vec![Ratio::ZERO; n]; 4];
    for i in 0..n {
        if membership[i] {
            steps[0][i] = req(i, 0);
            steps[1][i] = req(i, 1);
            steps[2][i] = req(i, 2);
        } else {
            steps[1][i] = req(i, 0);
            steps[2][i] = req(i, 1);
            steps[3][i] = req(i, 2);
        }
    }
    cr_core::Schedule::new(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_algos::{brute_force_makespan, GreedyBalance, Scheduler};

    #[test]
    fn solver_identifies_yes_and_no_instances() {
        assert!(is_yes_instance(&[1, 1, 2, 2]));
        assert!(is_yes_instance(&[3, 1, 1, 2, 2, 1]));
        assert!(!is_yes_instance(&[1, 1, 4]));
        assert!(!is_yes_instance(&[1, 2])); // odd total
        let membership = solve_partition(&[3, 1, 1, 2, 2, 1]).unwrap();
        let total: u64 = [3, 1, 1, 2, 2, 1]
            .iter()
            .zip(&membership)
            .filter_map(|(&a, &m)| if m { Some(a) } else { None })
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn reduction_shape() {
        let red = partition_to_crsharing(&[2, 2, 3, 3]);
        assert_eq!(red.instance.processors(), 4);
        assert!(red.instance.is_unit_size());
        assert!((0..4).all(|i| red.instance.jobs_on(i) == 3));
        // First and third job of each processor are equal.
        for i in 0..4 {
            assert_eq!(
                red.instance.processor_jobs(i)[0],
                red.instance.processor_jobs(i)[2]
            );
        }
        // The first jobs cannot all fit into one step: Σ ã_i = 2A/(A+δ) > 1.
        let first_total: Ratio = (0..4)
            .map(|i| red.instance.processor_jobs(i)[0].requirement)
            .sum();
        assert!(first_total > Ratio::ONE);
    }

    #[test]
    fn yes_instances_admit_makespan_four() {
        let values = [2, 2, 3, 3];
        let red = partition_to_crsharing(&values);
        let membership = solve_partition(&values).unwrap();
        let schedule = yes_certificate_schedule(&red, &membership);
        let trace = schedule.trace(&red.instance).unwrap();
        assert_eq!(trace.makespan(), PartitionReduction::YES_MAKESPAN);
        // Brute force agrees that 4 is optimal (3 is impossible: three jobs
        // per chain and the first column does not fit one step).
        assert_eq!(brute_force_makespan(&red.instance), 4);
    }

    #[test]
    fn no_instances_need_at_least_five_steps() {
        let values = [2, 2, 3, 5]; // total 12, but no subset sums to 6.
        assert!(!is_yes_instance(&values));
        let red = partition_to_crsharing(&values);
        let opt = brute_force_makespan(&red.instance);
        assert!(opt >= PartitionReduction::NO_MAKESPAN);
        // GreedyBalance, being a (2 − 1/m)-approximation, stays below 2·5.
        assert!(GreedyBalance::new().makespan(&red.instance) <= 2 * opt);
    }

    #[test]
    #[should_panic(expected = "even total sum")]
    fn odd_sums_are_rejected() {
        let _ = partition_to_crsharing(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "perfect partition")]
    fn certificate_requires_perfect_partition() {
        let red = partition_to_crsharing(&[2, 2, 3, 3]);
        let _ = yes_certificate_schedule(&red, &[true, true, true, false]);
    }
}
