//! Fixture hot module with an ungated search loop, a production unwrap,
//! and two malformed suppressions.

/// Runs a "search" that can never be cancelled and panics on empty input.
pub fn sweep(cells: &[u64]) -> u64 {
    let mut acc = 0u64;
    while acc < 1_000 {
        acc = acc.wrapping_add(1);
    }
    // lint: allow(made_up_rule) — this rule does not exist
    acc = acc.wrapping_add(1);
    // lint: allow(panic_hygiene)
    acc = acc.wrapping_add(1);
    acc.wrapping_add(*cells.first().unwrap())
}
