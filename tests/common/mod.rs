//! Shared proptest strategies for the cross-crate integration tests.

// Each integration-test target compiles its own copy of this module and not
// every target uses every strategy.
#![allow(dead_code)]

use crsharing::core::{Instance, Ratio};
use proptest::prelude::*;

/// Strategy for a single resource requirement on a percent grid, avoiding 0
/// so that every job actually consumes resource.
pub fn requirement() -> impl Strategy<Value = Ratio> {
    (1i64..=100).prop_map(Ratio::from_percent)
}

/// Strategy for a unit-size instance with `m ∈ [1, max_m]` processors and
/// between 1 and `max_n` jobs per processor.
pub fn unit_instance(max_m: usize, max_n: usize) -> impl Strategy<Value = Instance> {
    prop::collection::vec(prop::collection::vec(requirement(), 1..=max_n), 1..=max_m)
        .prop_map(Instance::unit_from_requirements)
}

/// Strategy for small instances on which the brute-force solver is fast.
pub fn tiny_instance() -> impl Strategy<Value = Instance> {
    unit_instance(3, 3)
}
