//! Cached handles into the process-wide observability registry.
//!
//! The engines record per-round aggregates (never per-node atomics on the
//! hot path — DFS extensions accumulate in a local and flush once per
//! enumerator call), so each handle is looked up once per process and the
//! steady-state cost is one relaxed atomic add per round or call.

use std::sync::OnceLock;

use cr_obs::{names, Counter, Registry};

fn cached(cell: &'static OnceLock<Counter>, name: &'static str) -> &'static Counter {
    cell.get_or_init(|| Registry::global().counter(name))
}

/// Search rounds executed by either OPT(m) engine.
pub(crate) fn optm_rounds() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::OPTM_ROUNDS)
}

/// Configurations entering the round's domination filter.
pub(crate) fn optm_round_candidates() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::OPTM_ROUND_CANDIDATES)
}

/// Configurations surviving the round's domination filter.
pub(crate) fn optm_round_survivors() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::OPTM_ROUND_SURVIVORS)
}

/// Subset-DFS extension steps in the shared choice enumerator.
pub(crate) fn subset_dfs_nodes() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::SUBSET_DFS_NODES)
}

/// Solve dispatches through the solver registry.
pub(crate) fn solve_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::SERVICE_SOLVE_TOTAL)
}

/// Solve dispatches that returned a structured error.
pub(crate) fn solve_errors() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    cached(&C, names::SERVICE_SOLVE_ERRORS)
}

/// `usize` losslessly widened for counter deltas (no panic path).
pub(crate) fn delta(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Records one solver-registry dispatch: the total moves first and the
/// per-method family second, so a snapshot (which reads the
/// alphabetically-earlier `by_method` cells before the total) always sees
/// `sum(by_method) <= total`.  Only *registered* methods get a per-method
/// counter — unknown client-supplied keys must not grow the registry.
pub(crate) fn record_dispatch(method: &str, known: bool, ok: bool) {
    let registry = Registry::global();
    if !registry.enabled() {
        return;
    }
    solve_total().inc();
    if known {
        registry
            .counter(&format!("service.solve.by_method.{method}"))
            .inc();
    }
    if !ok {
        solve_errors().inc();
    }
}
