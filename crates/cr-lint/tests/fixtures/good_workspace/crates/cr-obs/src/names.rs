//! Fixture metric and span vocabulary, in sync with the fixture
//! `docs/OBSERVABILITY.md` catalog.

/// Every fixture metric name, as plain literals for `vocab_sync`.
pub const METRIC_NAMES: [&str; 2] = ["serve.batches", "sim.steps"];

/// Every fixture span name, as plain literals for `vocab_sync`.
pub const SPAN_NAMES: [&str; 1] = ["sim.run"];
