//! The shared pruned successor-choice enumerator behind both exact engines.
//!
//! One normalized time step of the configuration search (Lemma 1) is a
//! *choice*: a subset of the active frontier jobs whose remaining
//! requirements fit into the resource and all complete, plus at most one
//! further active job that receives the leftover without completing.  Both
//! the scaled-integer engine ([`crate::scaled_engine`], values in `u64`
//! units) and the rational reference search ([`crate::opt_m`], values in
//! [`Ratio`]) enumerate exactly this choice space, so the enumeration lives
//! here once, generic over the value type.
//!
//! # Pruned DFS instead of a bitmask scan
//!
//! The previous implementations scanned `1u32 << k` bitmasks over the `k`
//! active processors, which capped the engines at 31 simultaneously active
//! processors (an assert in the scaled engine; a silent shift overflow in
//! the rational one).  This module enumerates fitting subsets by a
//! depth-first descent over the active jobs sorted by ascending remaining
//! requirement: a branch is extended only while the partial sum still fits
//! the capacity, and because candidates are sorted, the first candidate
//! that does not fit ends the whole level — every *fitting* subset is
//! visited exactly once and every pruned subtree costs `O(1)`.  The
//! representation is width-independent: any number of active processors is
//! supported, and the work is proportional to the number of emitted
//! choices, not to `2^k`.
//!
//! All additions are overflow-checked: a sum that overflows the value type
//! is, a fortiori, larger than the capacity, so the branch is pruned
//! instead of wrapping around (the scaled engine feeds `u64` units whose
//! *m*-fold sums may exceed `u64::MAX` — see the headroom notes on
//! [`cr_core::ScaledInstance::try_new`]).
//!
//! # Zero-requirement frontiers always complete
//!
//! A frontier job with zero remaining requirement completes in every
//! emitted choice.  Leaving such a job unfinished can never help: the same
//! choice with the job completed reaches a configuration that strictly
//! dominates (one more job completed, everything else equal), so the
//! dominance filter of Lemma 4 would discard the variant anyway — the old
//! mask scan enumerated those dominated variants only to throw them away,
//! at cost `2^z` for `z` zero-requirement frontiers.  Skipping them keeps
//! wide instances with many idle-requirement processors tractable and
//! matches the exact [`ScheduleBuilder`](cr_core::ScheduleBuilder) replay
//! semantics, which advances zero-requirement frontiers every step
//! regardless of their share.

#[cfg(test)]
use cr_core::CancelToken;
use cr_core::{CancelGate, CancelReason, Ratio};

/// A resource value the enumerator can sum and compare: `u64` units on the
/// scaled grid, or an exact [`Ratio`].
pub(crate) trait ResourceUnit: Copy + Ord {
    /// The additive identity.
    const ZERO: Self;

    /// Overflow-checked addition; `None` means "exceeds any capacity".
    fn checked_add(self, other: Self) -> Option<Self>;

    /// Subtraction; callers guarantee `self >= other`.
    fn sub(self, other: Self) -> Self;
}

impl ResourceUnit for u64 {
    const ZERO: Self = 0;

    fn checked_add(self, other: Self) -> Option<Self> {
        u64::checked_add(self, other)
    }

    fn sub(self, other: Self) -> Self {
        self - other
    }
}

impl ResourceUnit for Ratio {
    const ZERO: Self = Ratio::ZERO;

    fn checked_add(self, other: Self) -> Option<Self> {
        Ratio::checked_add(self, other)
    }

    fn sub(self, other: Self) -> Self {
        self - other
    }
}

/// Reusable buffers for one enumeration (one per search, not one per
/// expansion).
#[derive(Debug, Default, Clone)]
pub(crate) struct EnumScratch {
    /// Positive-remaining entries, sorted ascending by remaining value.
    order: Vec<u32>,
    /// The current finished set: zero-remaining entries first, then the
    /// DFS stack of chosen positive entries.
    finished: Vec<u32>,
    /// Membership flags over the active list for the current finished set.
    in_finished: Vec<bool>,
}

/// Streams every normalized step choice for one active frontier.
///
/// `remaining[i]` is the remaining requirement of the `i`-th *active* entry
/// (the caller maps entry indices to processors); `cap` is the full
/// resource.  For each choice, `emit` receives the finished entries
/// (zero-remaining entries first, then chosen positive entries in ascending
/// remaining order) and the optional partial receiver `(entry, leftover)`.
///
/// The emitted choice set equals the reference bitmask scan restricted to
/// choices that complete every zero-remaining frontier (see the module docs
/// for why the rest are dominated), which the enumerator property tests in
/// `scaled_engine` assert.
#[cfg(test)]
pub(crate) fn for_each_choice<V: ResourceUnit>(
    remaining: &[V],
    cap: V,
    scratch: &mut EnumScratch,
    emit: &mut impl FnMut(&[u32], Option<(u32, V)>),
) {
    let mut gate = CancelToken::never().gate(CHOICE_CHECK_STRIDE);
    for_each_choice_cancellable(remaining, cap, scratch, &mut gate, emit)
        .expect("a never token cannot fire");
}

/// How many DFS extensions pass between token checks: the per-extension
/// work is a handful of integer ops, so even pathological frontiers check
/// far more often than [`cr_core::cancel::CHECK_INTERVAL_MS`] demands.
pub(crate) const CHOICE_CHECK_STRIDE: u32 = 1024;

/// [`for_each_choice`] with cooperative cancellation: the DFS consults
/// `gate` on every subset extension, so an exponentially large choice space
/// stops within one check stride of the token firing.  Choices already
/// emitted before the cut are *not* unwound — callers must discard partial
/// results on `Err`.
pub(crate) fn for_each_choice_cancellable<V: ResourceUnit>(
    remaining: &[V],
    cap: V,
    scratch: &mut EnumScratch,
    gate: &mut CancelGate,
    emit: &mut impl FnMut(&[u32], Option<(u32, V)>),
) -> Result<(), CancelReason> {
    let k = remaining.len();
    if k == 0 {
        return Ok(());
    }
    let EnumScratch {
        order,
        finished,
        in_finished,
    } = scratch;
    order.clear();
    finished.clear();
    in_finished.clear();
    in_finished.resize(k, false);

    // Zero-remaining frontiers complete in every choice; positives are
    // sorted ascending so the DFS can prune a whole level as soon as one
    // candidate no longer fits.
    let mut total: Option<V> = Some(V::ZERO);
    // lint: allow(cancel_coverage) — bounded: one setup pass over the <= m active jobs; the DFS below is gated
    for (i, &r) in remaining.iter().enumerate() {
        // lint: allow(panic_hygiene) — the active list is bounded by the processor count, far below u32::MAX
        let i = u32::try_from(i).expect("active list fits u32");
        if r == V::ZERO {
            finished.push(i);
            in_finished[i as usize] = true;
        } else {
            order.push(i);
            total = total.and_then(|t| t.checked_add(r));
        }
    }
    order.sort_unstable_by(|&a, &b| {
        remaining[a as usize]
            .cmp(&remaining[b as usize])
            .then(a.cmp(&b))
    });

    // Non-wasting: if everything fits, the only normalized choice finishes
    // every active job (an overflowing total is a fortiori oversubscribed).
    if total.is_some_and(|t| t <= cap) {
        finished.clear();
        // lint: allow(panic_hygiene) — the active list is bounded by the processor count, far below u32::MAX
        finished.extend(0..u32::try_from(k).expect("active list fits u32"));
        emit(finished, None);
        return Ok(());
    }

    // The zeros-only choice: only valid when it wastes nothing, i.e. when
    // the capacity is exhausted by itself.  (With a positive capacity no
    // receiver can absorb the full leftover — remaining requirements never
    // exceed the capacity — so nothing else is emitted for it.)
    if !finished.is_empty() && cap == V::ZERO {
        emit(finished, None);
    }

    let zeros = finished.len();
    // DFS extensions accumulate locally and flush once per enumeration:
    // one relaxed atomic add per call instead of one per node.
    let mut nodes: u64 = 0;
    let result = descend(
        remaining,
        cap,
        order,
        0,
        V::ZERO,
        finished,
        in_finished,
        gate,
        &mut nodes,
        emit,
    );
    crate::obs::subset_dfs_nodes().add(nodes);
    debug_assert!(
        result.is_err() || finished.len() == zeros,
        "DFS unwinds its stack"
    );
    result
}

/// One DFS level: try extending the chosen subset with each not-yet-tried
/// positive entry, emitting the completing choices along the way.
#[allow(clippy::too_many_arguments)]
fn descend<V: ResourceUnit>(
    remaining: &[V],
    cap: V,
    order: &[u32],
    start: usize,
    sum: V,
    finished: &mut Vec<u32>,
    in_finished: &mut [bool],
    gate: &mut CancelGate,
    nodes: &mut u64,
    emit: &mut impl FnMut(&[u32], Option<(u32, V)>),
) -> Result<(), CancelReason> {
    for pos in start..order.len() {
        gate.tick()?;
        *nodes = nodes.saturating_add(1);
        let entry = order[pos];
        // Checked: an overflowing sum is larger than any capacity.  The
        // candidates are sorted ascending, so the first one that does not
        // fit ends the entire level — this is the prune that replaces the
        // 2^k mask scan.
        let Some(subset_sum) = sum.checked_add(remaining[entry as usize]) else {
            break;
        };
        if subset_sum > cap {
            break;
        }
        finished.push(entry);
        in_finished[entry as usize] = true;

        let leftover = cap.sub(subset_sum);
        if leftover == V::ZERO {
            emit(finished, None);
        } else {
            // Non-wasting: the leftover must go to exactly one remaining
            // active job that cannot be completed with it (otherwise a
            // larger subset covers the case).
            // lint: allow(cancel_coverage) — bounded: one pass over the <= m active jobs per emitted subset; the enclosing DFS is gated
            for (j, &r) in remaining.iter().enumerate() {
                if !in_finished[j] && r > leftover {
                    // lint: allow(panic_hygiene) — the active list is bounded by the processor count, far below u32::MAX
                    let j = u32::try_from(j).expect("active list fits u32");
                    emit(finished, Some((j, leftover)));
                }
            }
        }
        descend(
            remaining,
            cap,
            order,
            pos + 1,
            subset_sum,
            finished,
            in_finished,
            gate,
            nodes,
            emit,
        )?;
        in_finished[entry as usize] = false;
        finished.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One emitted choice: sorted finished entries plus the partial receiver.
    type Choice<V> = (Vec<u32>, Option<(u32, V)>);

    fn collect_choices<V: ResourceUnit>(remaining: &[V], cap: V) -> Vec<Choice<V>> {
        let mut scratch = EnumScratch::default();
        let mut out = Vec::new();
        for_each_choice(remaining, cap, &mut scratch, &mut |finished, partial| {
            let mut finished = finished.to_vec();
            finished.sort_unstable();
            out.push((finished, partial));
        });
        out
    }

    #[test]
    fn all_fit_emits_single_full_choice() {
        let choices = collect_choices(&[30u64, 40, 30], 100);
        assert_eq!(choices, vec![(vec![0, 1, 2], None)]);
    }

    #[test]
    fn oversubscribed_pair_emits_both_partials() {
        // 60 + 60 > 100: either entry finishes, the other carries 40.
        let choices = collect_choices(&[60u64, 60], 100);
        assert_eq!(choices.len(), 2);
        for (finished, partial) in choices {
            assert_eq!(finished.len(), 1);
            let (receiver, amount) = partial.unwrap();
            assert_ne!(finished[0], receiver);
            assert_eq!(amount, 40);
        }
    }

    #[test]
    fn exact_fill_has_no_partial_receiver() {
        // {0, 1} sums to exactly the capacity.
        let choices = collect_choices(&[40u64, 60, 90], 100);
        assert!(choices.contains(&(vec![0, 1], None)));
        // Singleton 40 leaves 60, which only entry 2 (90 > 60) can carry.
        assert!(choices.contains(&(vec![0], Some((2, 60)))));
        assert!(!choices.contains(&(vec![0], Some((1, 60)))));
    }

    #[test]
    fn zero_remaining_entries_complete_in_every_choice() {
        let choices = collect_choices(&[0u64, 70, 70, 0], 100);
        assert!(!choices.is_empty());
        for (finished, _) in &choices {
            assert!(finished.contains(&0), "zero entry 0 always completes");
            assert!(finished.contains(&3), "zero entry 3 always completes");
        }
    }

    #[test]
    fn sums_near_u64_max_do_not_wrap() {
        // Three entries just below the capacity: the total overflows u64,
        // which must read as "oversubscribed", not wrap to a small sum.
        let cap = u64::MAX / 2;
        let r = cap - 1;
        let choices = collect_choices(&[r, r, r], cap);
        // Only singletons fit; each leaves 1 unit for one of the others.
        assert_eq!(choices.len(), 6);
        for (finished, partial) in choices {
            assert_eq!(finished.len(), 1);
            assert_eq!(partial.unwrap().1, 1);
        }
    }

    #[test]
    fn ratio_values_enumerate_like_units() {
        let remaining = [Ratio::from_percent(60), Ratio::from_percent(60)];
        let choices = collect_choices(&remaining, Ratio::ONE);
        assert_eq!(choices.len(), 2);
        for (_, partial) in choices {
            assert_eq!(partial.unwrap().1, Ratio::from_percent(40));
        }
    }

    #[test]
    fn empty_active_list_emits_nothing() {
        let choices = collect_choices::<u64>(&[], 100);
        assert!(choices.is_empty());
    }

    #[test]
    fn cancelled_token_stops_the_dfs_early() {
        let token = CancelToken::new();
        token.cancel();
        let mut gate = token.gate(1);
        let mut scratch = EnumScratch::default();
        let mut emitted = 0usize;
        // Oversubscribed: the full enumeration would emit 8·7 = 56 partial
        // choices; a pre-cancelled stride-1 gate stops at the first check.
        let remaining = vec![60u64; 8];
        let result =
            for_each_choice_cancellable(&remaining, 100, &mut scratch, &mut gate, &mut |_, _| {
                emitted += 1;
            });
        assert_eq!(result, Err(CancelReason::Cancelled));
        assert_eq!(emitted, 0);
    }
}
