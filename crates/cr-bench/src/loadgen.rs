//! Load generation for the socket serving tier (`cr-serve --listen`).
//!
//! The `cr-loadgen` binary and the "Socket serving latency + throughput"
//! table of `BENCH_pipeline.json` share this module: N client threads, each
//! on its own connection, drive a sustained mix of heuristic, exact and
//! simulator requests with Poisson interarrival times at the server, and
//! the per-request wall latencies are folded into p50/p95/p99 percentiles
//! plus an aggregate throughput figure.
//!
//! Traffic is generated from the vendored SplitMix64 [`StdRng`], so a
//! `(seed, clients, requests)` triple always produces the same request
//! byte stream — a load run is reproducible even though its *timings*
//! are not.
//!
//! The [`smoke`] entry point is the CI handshake: it replays the committed
//! golden batch of `crates/cr-service/tests/data/smoke_batch.jsonl` over
//! the socket, asserts the responses are byte-identical to the in-process
//! reference rendering, then requests a graceful drain via the
//! `{"control":"shutdown"}` frame and verifies the server acknowledges and
//! closes cleanly.

use cr_obs::{geometric_bounds, Histogram, HistogramSnapshot};
use cr_service::{wire, SolverService};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The committed golden batch the CI smoke replays (12 mixed requests:
/// one deliberately over budget, one multi-resource, one multi-resource
/// shape mismatch).
pub const SMOKE_BATCH: &str = include_str!("../../cr-service/tests/data/smoke_batch.jsonl");

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends (one flush per request, so every request
    /// has an observable wall latency).
    pub requests_per_client: usize,
    /// Poisson arrival rate per client in requests/second; `0.0` disables
    /// pacing (closed-loop back-to-back requests, the max-throughput mode).
    pub rate_hz: f64,
    /// Seed of the per-client SplitMix64 traffic generators.
    pub seed: u64,
    /// Every `multi_every`-th slot also carries one extra resource layer
    /// (`k = 2`), exercising the multi-resource wire path under load;
    /// `0` (the default) keeps the traffic single-resource and the
    /// request byte stream identical to earlier releases.
    pub multi_every: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 32,
            rate_hz: 200.0,
            seed: 0x10AD_6E17,
            multi_every: 0,
        }
    }
}

/// Most send attempts one request may consume: the first try plus
/// [`MAX_RETRIES`] backed-off retries after `overloaded`/`draining`
/// rejections.
pub const MAX_RETRIES: u32 = 5;

/// Base delay of the jittered exponential backoff (doubles per retry, up
/// to `BACKOFF_BASE_MS << MAX_RETRIES`, each step jittered ±50%).
pub const BACKOFF_BASE_MS: u64 = 10;

/// Aggregated result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that answered `ok`.
    pub ok: usize,
    /// Requests that answered a structured error (solver or transport).
    pub rejected: usize,
    /// Backed-off re-sends after `overloaded`/`draining` rejections.
    pub retries: usize,
    /// Requests still rejected `overloaded`/`draining` after the whole
    /// retry budget (these also count in `rejected`).
    pub retry_exhausted: usize,
    /// Wall time of the whole run (first byte sent to last byte read).
    pub wall_secs: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest single request, milliseconds.
    pub max_ms: f64,
    /// Aggregate completed requests per second across all clients.
    pub requests_per_sec: f64,
}

impl LoadReport {
    /// Total requests that received a response.
    #[must_use]
    pub fn answered(&self) -> usize {
        self.ok + self.rejected
    }
}

/// Bucket bounds of the client-side latency histogram: 10 µs to 120 s in
/// 6.25% geometric steps (~270 buckets).  Latencies land in fixed buckets
/// instead of an unbounded `Vec`, so a long run costs constant memory and
/// the reported percentiles are stable bucket upper bounds (within one
/// 6.25% step of the true nearest-rank value).
#[must_use]
pub fn latency_bounds() -> Vec<u64> {
    geometric_bounds(10_000, 120_000_000_000, 17, 16)
}

/// A nearest-rank percentile of the latency histogram, in milliseconds
/// (the inclusive upper bound of the rank's bucket; the exact maximum for
/// overflow ranks; `0.0` when empty).
fn percentile_ms(snapshot: &HistogramSnapshot, pct: u64) -> f64 {
    snapshot
        .nearest_rank(pct, 100)
        .map_or(0.0, |ns| ns as f64 / 1e6)
}

/// One synthetic request line of the sustained mix: heuristics dominate,
/// with an exact OPT(m) solve every 8th slot and an online simulator
/// request every 5th — the production-shaped blend the serving tier is
/// sized for.  Instances stay small enough that exact requests bound the
/// tail, not the run.  With `multi_every > 0`, every `multi_every`-th slot
/// additionally carries one extra resource layer shaped exactly like its
/// `rows` (the `k = 2` wire shorthand); `0` leaves the stream
/// single-resource and byte-identical to the pre-multi generator.
#[must_use]
pub fn request_line(rng: &mut StdRng, slot: usize, multi_every: usize) -> String {
    let (method, m, n_per) = if slot % 8 == 7 {
        ("OptM", 3usize, 1usize)
    } else if slot % 5 == 4 {
        ("sim:GreedyBalance", 3, 2)
    } else {
        (
            [
                "GreedyBalance",
                "RoundRobin",
                "EqualShare",
                "ProportionalShare",
            ][slot % 4],
            rng.random_range(2usize..=4),
            rng.random_range(2usize..=4),
        )
    };
    let grid = |rng: &mut StdRng| -> String {
        let rows: Vec<String> = (0..m)
            .map(|_| {
                let row: Vec<String> = (0..n_per)
                    .map(|_| rng.random_range(5u64..=100).to_string())
                    .collect();
                format!("[{}]", row.join(","))
            })
            .collect();
        format!("[{}]", rows.join(","))
    };
    let rows = grid(rng);
    if multi_every > 0 && slot % multi_every == multi_every - 1 {
        let layer = grid(rng);
        format!("{{\"method\":\"{method}\",\"rows\":{rows},\"resources\":[{layer}]}}")
    } else {
        format!("{{\"method\":\"{method}\",\"rows\":{rows}}}")
    }
}

/// An exponential interarrival draw (`-ln(u)/rate`) for Poisson arrivals.
fn interarrival(rng: &mut StdRng, rate_hz: f64) -> Duration {
    // 53 uniform mantissa bits in (0, 1]; u = 0 is impossible so ln is finite.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64((-u.ln() / rate_hz).min(1.0))
}

/// The jittered exponential backoff before retry `attempt` (0-based):
/// `BACKOFF_BASE_MS << attempt`, jittered uniformly in ±50% so colliding
/// clients don't re-converge on the overloaded server in lockstep.
fn backoff(rng: &mut StdRng, attempt: u32) -> Duration {
    let base = (BACKOFF_BASE_MS << attempt.min(MAX_RETRIES)) as f64;
    let jitter = 0.5 + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64(base * jitter / 1e3)
}

/// Whether a response line is a transient load-shedding rejection worth
/// backing off and retrying (`overloaded` / `draining`), as opposed to a
/// deterministic solver or parse error.
fn is_transient_rejection(line: &str) -> bool {
    line.contains("\"kind\":\"overloaded\"") || line.contains("\"kind\":\"draining\"")
}

/// Per-client tallies of one load run (latencies go straight into the
/// run's shared histogram, not a per-client buffer).
#[derive(Debug, Default)]
struct ClientTallies {
    answered: usize,
    ok: usize,
    rejected: usize,
    retries: usize,
    retry_exhausted: usize,
}

/// One client thread's closed loop: send a request, await its response
/// line(s), retry shed flushes under a jittered exponential backoff
/// budget, record the latency, sleep out the Poisson gap.
fn client_loop(
    addr: SocketAddr,
    config: &LoadConfig,
    client: usize,
    latency: &Histogram,
) -> std::io::Result<ClientTallies> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(client as u64 + 1)),
    );
    let mut tallies = ClientTallies::default();
    let mut line = String::new();
    for slot in 0..config.requests_per_client {
        if config.rate_hz > 0.0 {
            std::thread::sleep(interarrival(&mut rng, config.rate_hz));
        }
        let request = request_line(&mut rng, slot, config.multi_every);
        let sent = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            writeln!(writer, "{request}\n")?;
            writer.flush()?;
            // One flush → one response; a streamed response is consumed
            // frame by frame until its end marker.
            line.clear();
            reader.read_line(&mut line)?;
            if line.contains("\"frame\":\"head\"") {
                while !line.contains("\"frame\":\"end\"") {
                    line.clear();
                    reader.read_line(&mut line)?;
                }
            }
            if is_transient_rejection(&line) && attempt < MAX_RETRIES {
                tallies.retries += 1;
                std::thread::sleep(backoff(&mut rng, attempt));
                attempt += 1;
                continue;
            }
            break;
        }
        latency.observe(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
        tallies.answered += 1;
        if line.contains("\"error\":null") || line.contains("\"frame\":\"end\"") {
            tallies.ok += 1;
        } else {
            tallies.rejected += 1;
            if is_transient_rejection(&line) {
                tallies.retry_exhausted += 1;
            }
        }
    }
    Ok(tallies)
}

/// Drives one full load run against a serving socket and folds the
/// per-request latencies into a [`LoadReport`].
///
/// # Panics
///
/// Panics if a client thread fails to connect or loses its connection
/// mid-run (the server is expected to outlive the load).
#[must_use]
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let start = Instant::now();
    let latency = Histogram::standalone(&latency_bounds());
    let workers: Vec<std::thread::JoinHandle<ClientTallies>> = (0..config.clients)
        .map(|client| {
            let config = config.clone();
            let latency = latency.clone();
            std::thread::spawn(move || {
                client_loop(addr, &config, client, &latency)
                    .expect("load client lost its connection")
            })
        })
        .collect();
    let mut answered = 0usize;
    let mut ok = 0usize;
    let mut rejected = 0usize;
    let mut retries = 0usize;
    let mut retry_exhausted = 0usize;
    for worker in workers {
        let tallies = worker.join().expect("load client panicked");
        answered += tallies.answered;
        ok += tallies.ok;
        rejected += tallies.rejected;
        retries += tallies.retries;
        retry_exhausted += tallies.retry_exhausted;
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let snapshot = latency.snapshot();
    LoadReport {
        ok,
        rejected,
        retries,
        retry_exhausted,
        wall_secs,
        p50_ms: percentile_ms(&snapshot, 50),
        p95_ms: percentile_ms(&snapshot, 95),
        p99_ms: percentile_ms(&snapshot, 99),
        max_ms: snapshot.max as f64 / 1e6,
        requests_per_sec: answered as f64 / wall_secs.max(1e-9),
    }
}

/// One server-side observability scrape (the `--obs` mode of
/// `cr-loadgen`): the raw `{"control":"stats"}` frame plus the
/// `{"control":"metrics"}` JSONL dump, fetched on a dedicated connection
/// so the scrape never perturbs the load clients' latencies.
#[derive(Debug, Clone)]
pub struct ObsScrape {
    /// The one-line `{"control":"stats",...}` response.
    pub stats: String,
    /// The `{"control":"metrics","metrics":N,"spans":M}` header line.
    pub header: String,
    /// The JSONL body: one line per metric, then one per span path.
    pub lines: Vec<String>,
}

/// Reads one integer field out of a flat JSON control frame.
fn frame_field(line: &str, field: &str) -> Result<usize, String> {
    let needle = format!("\"{field}\":");
    let at = line
        .find(&needle)
        .ok_or_else(|| format!("frame has no `{field}`: {}", line.trim_end()))?;
    let digits: String = line[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|e| format!("frame field `{field}`: {e}"))
}

/// Scrapes the serving tier's observability surface over its own
/// connection: one stats frame, one metrics dump.
///
/// # Errors
///
/// A human-readable description of the first failure (connect, write,
/// short read, malformed header).
pub fn scrape_obs(addr: SocketAddr) -> Result<ObsScrape, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let read_line = |reader: &mut BufReader<TcpStream>| -> Result<String, String> {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read scrape line: {e}"))?;
        if n == 0 {
            return Err("server closed the scrape connection early".to_string());
        }
        Ok(line.trim_end().to_string())
    };
    writeln!(writer, r#"{{"control":"stats"}}"#).map_err(|e| format!("send stats: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let stats = read_line(&mut reader)?;
    writeln!(writer, r#"{{"control":"metrics"}}"#).map_err(|e| format!("send metrics: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let header = read_line(&mut reader)?;
    let body_lines = frame_field(&header, "metrics")? + frame_field(&header, "spans")?;
    let mut lines = Vec::with_capacity(body_lines);
    for _ in 0..body_lines {
        lines.push(read_line(&mut reader)?);
    }
    Ok(ObsScrape {
        stats,
        header,
        lines,
    })
}

/// The CI smoke handshake: replays the committed golden batch over the
/// socket, asserts byte-identity against the in-process reference, then
/// drains the server via the shutdown control frame.
///
/// # Errors
///
/// A human-readable description of the first divergence (connect failure,
/// response mismatch, missing drain acknowledgment, unclean close).
pub fn smoke(addr: SocketAddr) -> Result<(), String> {
    let batch: Vec<String> = SMOKE_BATCH.lines().map(str::to_string).collect();
    let reference = wire::process_batch(&SolverService::with_standard_registry(), &batch, 0);

    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    for line in &batch {
        writeln!(writer, "{line}").map_err(|e| format!("send request: {e}"))?;
    }
    writeln!(writer).map_err(|e| format!("send flush: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    for (i, expected) in reference.iter().enumerate() {
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read response {i}: {e}"))?;
        if line.trim_end() != expected.as_str() {
            return Err(format!(
                "smoke response {i} diverged from the reference:\n  got:  {}\n  want: {expected}",
                line.trim_end()
            ));
        }
    }

    writeln!(writer, r#"{{"control":"shutdown"}}"#).map_err(|e| format!("send shutdown: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;
    line.clear();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read drain ack: {e}"))?;
    if !(line.contains("\"control\":\"shutdown\"") && line.contains("\"draining\":true")) {
        return Err(format!(
            "missing drain acknowledgment, got: {}",
            line.trim_end()
        ));
    }
    line.clear();
    let eof = reader
        .read_line(&mut line)
        .map_err(|e| format!("read post-drain close: {e}"))?;
    if eof != 0 {
        return Err(format!(
            "server kept the connection open after the drain ack: {}",
            line.trim_end()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_are_deterministic_and_parseable() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for slot in 0..50 {
            let line = request_line(&mut a, slot, 0);
            assert_eq!(line, request_line(&mut b, slot, 0));
            wire::parse_request(&line, 0).expect("generated line parses");
        }
    }

    #[test]
    fn multi_resource_traffic_is_flag_gated() {
        // Off by default: no line carries a resources key.
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..24).all(|slot| !request_line(&mut rng, slot, 0).contains("\"resources\"")));

        // On: exactly every third slot carries one extra layer, every line
        // still parses, and the multi lines really are two-resource.
        let mut rng = StdRng::seed_from_u64(3);
        let lines: Vec<String> = (0..24)
            .map(|slot| request_line(&mut rng, slot, 3))
            .collect();
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"resources\"")).count(),
            8
        );
        for line in &lines {
            let parsed = wire::parse_request(line, 0).expect("generated line parses");
            let want = if line.contains("\"resources\"") { 2 } else { 1 };
            assert_eq!(parsed.request.instance.resources(), want, "{line}");
        }
    }

    #[test]
    fn traffic_mix_covers_heuristic_exact_and_sim() {
        let mut rng = StdRng::seed_from_u64(2);
        let lines: Vec<String> = (0..40)
            .map(|slot| request_line(&mut rng, slot, 0))
            .collect();
        assert!(lines.iter().any(|l| l.contains("\"OptM\"")));
        assert!(lines.iter().any(|l| l.contains("\"sim:GreedyBalance\"")));
        assert!(lines.iter().any(|l| l.contains("\"GreedyBalance\"")));
    }

    #[test]
    fn percentiles_are_stable_bucket_bounds() {
        let hist = Histogram::standalone(&latency_bounds());
        // 1..=100 ms in nanoseconds; nearest-rank percentiles come back as
        // the inclusive upper bound of the rank's bucket, so they are
        // deterministic across runs and at most one 6.25% step high.
        for ms in 1..=100u64 {
            hist.observe(ms * 1_000_000);
        }
        let snapshot = hist.snapshot();
        if snapshot.count == 0 {
            // obs-off build: the histogram is compiled out.
            return;
        }
        for (pct, true_ms) in [(50u64, 50.0f64), (95, 95.0), (99, 99.0)] {
            let got = percentile_ms(&snapshot, pct);
            assert!(
                got >= true_ms && got <= true_ms * 17.0 / 16.0,
                "p{pct} = {got} ms outside [{true_ms}, {}]",
                true_ms * 17.0 / 16.0
            );
        }
        // Stability: a second identical histogram reports identical values.
        let again = Histogram::standalone(&latency_bounds());
        for ms in 1..=100u64 {
            again.observe(ms * 1_000_000);
        }
        assert_eq!(again.snapshot(), snapshot);
        let empty = HistogramSnapshot {
            bounds: vec![],
            counts: vec![],
            count: 0,
            sum: 0,
            max: 0,
        };
        assert_eq!(percentile_ms(&empty, 50), 0.0);
    }
}
