//! # crsharing — Scheduling Shared Continuous Resources on Many-Cores
//!
//! Facade crate of the CRSharing reproduction.  It re-exports the workspace
//! crates so that examples, integration tests and downstream users can depend
//! on a single package:
//!
//! * [`core`] (`cr-core`) — problem model, exact rationals, schedules,
//!   scheduling hypergraphs, structural properties and lower bounds;
//! * [`algos`] (`cr-algos`) — RoundRobin, GreedyBalance, the exact algorithms
//!   and baseline heuristics;
//! * [`instances`] (`cr-instances`) — random and adversarial instance
//!   families, the NP-hardness reduction and workload generators;
//! * [`sim`] (`cr-sim`) — the discrete-time many-core shared-bus simulator;
//! * [`viz`] (`cr-viz`) — ASCII/SVG rendering of instances and schedules;
//! * [`service`] (`cr-service`) — the batch solver service behind the
//!   `cr-serve` JSONL binary (see the README's "Serving" section).
//!
//! ## Quickstart
//!
//! ```
//! use crsharing::algos::{GreedyBalance, OptM, Scheduler};
//! use crsharing::core::Instance;
//!
//! let instance = Instance::unit_from_percentages(&[
//!     &[20, 10, 10, 10],
//!     &[50, 55, 90, 55, 10],
//!     &[50, 40, 95],
//! ]);
//!
//! let greedy = GreedyBalance::new().makespan(&instance);
//! let optimal = OptM::new().makespan(&instance);
//! assert!(optimal <= greedy);
//! let m = instance.processors() as f64;
//! assert!(greedy as f64 <= (2.0 - 1.0 / m) * optimal as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cr_algos as algos;
pub use cr_core as core;
pub use cr_instances as instances;
pub use cr_service as service;
pub use cr_sim as sim;
pub use cr_viz as viz;

/// Convenience prelude re-exporting the most frequently used items of all
/// workspace crates.
pub mod prelude {
    pub use cr_algos::prelude::*;
    pub use cr_core::prelude::*;
}
