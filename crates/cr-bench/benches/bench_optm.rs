//! E7 — runtime growth of `OptResAssignment2` (the configuration-domination
//! search of Theorem 6) compared against the undominating brute-force search,
//! for small m and n.  The domination pruning is what makes the algorithm
//! polynomial for fixed m; the gap to brute force illustrates how much work
//! it saves.

use cr_algos::{brute_force_makespan, opt_m_makespan};
use cr_instances::{random_unit_instance, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_opt_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_m");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &(m, n) in &[(2usize, 6usize), (3, 4), (3, 6), (4, 3)] {
        let instance = random_unit_instance(&RandomConfig::uniform(m, n), 23);
        group.bench_with_input(
            BenchmarkId::new("opt_m", format!("m{m}_n{n}")),
            &instance,
            |b, inst| b.iter(|| black_box(opt_m_makespan(black_box(inst)))),
        );
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &(m, n) in &[(2usize, 6usize), (3, 4)] {
        let instance = random_unit_instance(&RandomConfig::uniform(m, n), 23);
        group.bench_with_input(
            BenchmarkId::new("brute_force", format!("m{m}_n{n}")),
            &instance,
            |b, inst| b.iter(|| black_box(brute_force_makespan(black_box(inst)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_opt_m, bench_brute_force);
criterion_main!(benches);
