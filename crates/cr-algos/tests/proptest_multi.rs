//! Property tests for the multi-resource (`k ≥ 2`) generalization.
//!
//! Three contracts:
//!
//! * **`k = 1` identity** — an instance built through the layered
//!   constructor with a single layer routes through the untouched scalar
//!   paths, so every registry method must produce a byte-identical
//!   [`Result`] (outcome *or* error) to the legacy construction, under both
//!   the scaled and the rational engine preference, schedules included;
//! * **cross-engine agreement** — on genuine `k = 2` instances the scaled
//!   per-layer grids and the exact rational arithmetic must report the same
//!   makespan for OPT(m), OptTwo and brute force (all three share one
//!   generic search, so agreement exercises the grids, not the class);
//! * **zero-layer neutrality** — an all-zero extra layer adds no
//!   constraints, so the exact multi optimum equals the scalar optimum.

use cr_algos::solver::{registry, EnginePreference, SolveRequest};
use cr_algos::{opt_m_makespan, opt_two_makespan};
use cr_core::{Instance, Ratio};
use proptest::prelude::*;

/// Percent rows snapped onto the grid `1/den` (0% and 100% included).
fn layer_from(den: u64, rows: &[Vec<u64>]) -> Vec<Vec<Ratio>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|&pct| Ratio::from_parts(pct * den / 100, den))
                .collect()
        })
        .collect()
}

/// Every offline registry key, exact and polynomial alike.
const ALL_METHODS: [&str; 10] = [
    "GreedyBalance",
    "RoundRobin",
    "EqualShare",
    "ProportionalShare",
    "LargestRequirementFirst",
    "SmallestRequirementFirst",
    "OptTwo",
    "OptM",
    "BruteForce",
    "Bounds",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_layer_instances_are_byte_identical_to_the_scalar_path(
        den in 1u64..=24,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 2..=3),
    ) {
        let layer = layer_from(den, &rows);
        let legacy = Instance::unit_from_requirements(layer.clone());
        let layered = Instance::multi_unit_from_requirements(vec![layer])
            .expect("one layer is always consistent");
        prop_assert_eq!(layered.resources(), 1);
        let reg = registry();
        for method in ALL_METHODS {
            for engine in [EnginePreference::Scaled, EnginePreference::Rational] {
                let solve = |inst: &Instance| {
                    reg.solve(
                        &SolveRequest::new(method, inst.clone())
                            .with_engine(engine)
                            .with_schedule(),
                    )
                };
                let (a, b) = (solve(&layered), solve(&legacy));
                prop_assert!(
                    a == b,
                    "{method}/{engine:?} diverged between constructors: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn multi_exact_engines_agree_across_grids(
        den in 1u64..=12,
        base in prop::collection::vec(prop::collection::vec(0u64..=100, 2..=2), 2..=3),
        extra_pcts in prop::collection::vec(0u64..=100, 6..=6),
    ) {
        let m = base.len();
        let extra: Vec<Vec<u64>> = (0..m).map(|i| extra_pcts[2 * i..2 * i + 2].to_vec()).collect();
        let inst = Instance::multi_unit_from_requirements(vec![
            layer_from(den, &base),
            layer_from(den, &extra),
        ])
        .expect("layers share the 2-job grid");
        let reg = registry();
        let methods: &[&str] = if m == 2 { &["OptM", "BruteForce", "OptTwo"] } else { &["OptM", "BruteForce"] };
        let mut first: Option<usize> = None;
        for &method in methods {
            for engine in [EnginePreference::Scaled, EnginePreference::Rational] {
                let value = reg
                    .solve(&SolveRequest::new(method, inst.clone()).with_engine(engine))
                    .unwrap_or_else(|e| panic!("{method}/{engine:?}: {e}"))
                    .makespan
                    .expect("exact methods report makespans");
                match first {
                    None => first = Some(value),
                    Some(expected) => prop_assert!(
                        value == expected,
                        "{method}/{engine:?} diverged: {value} vs {expected}"
                    ),
                }
            }
        }
    }

    #[test]
    fn zero_extra_layer_never_changes_the_optimum(
        den in 1u64..=12,
        rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 2..=2),
    ) {
        let layer = layer_from(den, &rows);
        let zeros: Vec<Vec<Ratio>> = layer
            .iter()
            .map(|row| vec![Ratio::ZERO; row.len()])
            .collect();
        let scalar = Instance::unit_from_requirements(layer.clone());
        let multi = Instance::multi_unit_from_requirements(vec![layer, zeros])
            .expect("the zero layer mirrors the base grid");
        let value = registry()
            .solve(&SolveRequest::new("OptM", multi))
            .unwrap()
            .makespan
            .unwrap();
        prop_assert_eq!(value, opt_m_makespan(&scalar));
        prop_assert_eq!(value, opt_two_makespan(&scalar));
    }
}
