//! Property-based integration tests for the structural results of Section 4:
//! the properties of GreedyBalance schedules (balanced, non-wasting,
//! progressive), Propositions 1 and 2, Lemma 2, the Lemma 5/6 lower bounds
//! and the Lemma 1 normalization.

mod common;

use common::unit_instance;
use crsharing::algos::{
    EqualShare, GreedyBalance, ProportionalShare, RoundRobin, Scheduler, SmallestRequirementFirst,
};
use crsharing::core::properties::{
    is_balanced, is_non_wasting, is_progressive, proposition1_holds, proposition2_holds,
    PropertyReport,
};
use crsharing::core::{bounds, transform, Component, SchedulingGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GreedyBalance produces non-wasting, progressive, balanced schedules —
    /// the premise of Theorem 7.
    #[test]
    fn greedy_balance_schedules_are_balanced(instance in unit_instance(5, 5)) {
        let schedule = GreedyBalance::new().schedule(&instance);
        let trace = schedule.trace(&instance).expect("feasible");
        prop_assert!(is_non_wasting(&trace));
        prop_assert!(is_progressive(&trace));
        prop_assert!(is_balanced(&trace));
    }

    /// Propositions 1 and 2 hold on every balanced schedule produced by
    /// GreedyBalance.
    #[test]
    fn propositions_hold_for_balanced_schedules(instance in unit_instance(4, 5)) {
        let schedule = GreedyBalance::new().schedule(&instance);
        let trace = schedule.trace(&instance).expect("feasible");
        let totals: Vec<usize> = (0..instance.processors()).map(|i| instance.jobs_on(i)).collect();
        prop_assert!(proposition1_holds(&trace, &totals));
        prop_assert!(proposition2_holds(&trace, &totals));
    }

    /// Observation 2 and Lemma 2 hold for the scheduling graph of a balanced,
    /// non-wasting, progressive schedule.
    #[test]
    fn scheduling_graph_structure(instance in unit_instance(4, 5)) {
        let schedule = GreedyBalance::new().schedule(&instance);
        let trace = schedule.trace(&instance).expect("feasible");
        let graph = SchedulingGraph::build(&instance, &trace);
        prop_assert!(graph.components_are_consecutive());
        prop_assert!(graph.satisfies_lemma2());
        // Every job appears in exactly one component.
        let total_nodes: usize = graph.components().iter().map(Component::num_nodes).sum();
        prop_assert_eq!(total_nodes, instance.total_jobs());
        // Edges partition the time steps.
        let total_edges: usize = graph.components().iter().map(Component::num_edges).sum();
        prop_assert_eq!(total_edges, trace.makespan());
    }

    /// Lemmas 5 and 6 really are lower bounds: they never exceed the makespan
    /// of the optimal-ish schedules we can compute (here: the GreedyBalance
    /// makespan is an upper bound on OPT, so the bounds must not exceed it).
    #[test]
    fn lower_bounds_do_not_exceed_any_feasible_makespan(instance in unit_instance(4, 4)) {
        let schedule = GreedyBalance::new().schedule(&instance);
        let trace = schedule.trace(&instance).expect("feasible");
        let graph = SchedulingGraph::build(&instance, &trace);
        let makespan = trace.makespan();
        prop_assert!(bounds::component_bound(&graph) <= makespan);
        prop_assert!(bounds::class_bound_steps(&graph, instance.processors()) <= makespan);
        prop_assert!(bounds::trivial_lower_bound(&instance) <= makespan);
    }

    /// Lemma 1 (constructive form): normalizing any schedule produced by the
    /// baseline heuristics yields a non-wasting, progressive, nested schedule
    /// without increasing the makespan.
    #[test]
    fn normalization_repairs_heuristic_schedules(instance in unit_instance(4, 4)) {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(EqualShare::new()),
            Box::new(ProportionalShare::new()),
            Box::new(RoundRobin::new()),
            Box::new(SmallestRequirementFirst::new()),
        ];
        for scheduler in schedulers {
            let schedule = scheduler.schedule(&instance);
            let original = schedule.makespan(&instance).expect("feasible");
            let normalized = transform::normalize(&instance, &schedule);
            let trace = normalized.trace(&instance).expect("normalized schedule is feasible");
            let report = PropertyReport::analyze(&trace);
            prop_assert!(report.is_normalized(),
                "normalization of {} left violations: {:?}", scheduler.name(), report.violations);
            prop_assert!(trace.makespan() <= original,
                "normalization increased the makespan for {}: {} -> {}",
                scheduler.name(), original, trace.makespan());
        }
    }

    /// The makespan reported by a trace is invariant under appending idle
    /// steps and is consistent with every job's completion step.
    #[test]
    fn trace_consistency(instance in unit_instance(3, 4)) {
        let schedule = GreedyBalance::new().schedule(&instance);
        let trace = schedule.trace(&instance).expect("feasible");
        let max_completion = instance
            .iter_jobs()
            .map(|(id, _)| trace.completion_step(id).expect("all jobs complete") + 1)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(trace.makespan(), max_completion);
        for (id, _) in instance.iter_jobs() {
            let start = trace.start_step(id).expect("started");
            let end = trace.completion_step(id).expect("completed");
            prop_assert!(start <= end);
            if id.index > 0 {
                let prev = trace
                    .completion_step(crsharing::core::JobId::new(id.processor, id.index - 1))
                    .expect("completed");
                prop_assert!(start > prev, "job {} started before its predecessor finished", id);
            }
        }
    }
}
