//! Shared helper for the scaled (integer-unit) scheduling loops.
//!
//! The production paths of [`GreedyBalance`](crate::GreedyBalance),
//! [`RoundRobin`](crate::RoundRobin) and the priority heuristics all follow
//! the same step pattern: compute a priority order over the active
//! processors, then hand each one its full step demand until the unit pool
//! runs out.  This module hosts that inner step so the algorithms only
//! differ in how they order (or filter) the processors.

use cr_core::ScaledScheduleBuilder;

/// Serves the processors of `order` in sequence, granting each its full
/// step demand (in units) until the pool is exhausted, and pushes the
/// resulting step.
pub(crate) fn serve_units_in_order(builder: &mut ScaledScheduleBuilder<'_>, order: &[usize]) {
    let mut shares = vec![0u64; builder.processors()];
    let mut left = builder.capacity();
    for &i in order {
        if left == 0 {
            break;
        }
        let give = builder.step_demand_units(i).min(left);
        shares[i] = give;
        left -= give;
    }
    builder.push_step(shares);
}
