//! The JSONL wire protocol of the `cr-serve` binary.
//!
//! One JSON object per line in, one per line out, batch-order stable.
//!
//! # Request
//!
//! ```json
//! {"id": 1, "method": "OptM", "engine": "auto", "want_schedule": false,
//!  "budget": {"max_rounds": 8}, "rows": [[60, 40], [40, 60]]}
//! ```
//!
//! * `method` (required) — a registry key (`"GreedyBalance"`, `"OptM"`,
//!   `"Bounds"`, `"sim:GreedyBalance"`, …).
//! * The instance, one of:
//!   * `rows` — per-processor requirement lists in integer percent (the
//!     paper's figure notation), unit-size jobs;
//!   * `instance` — the full serialized [`Instance`] (exact rationals,
//!     arbitrary volumes), as produced by serde.
//! * `id` (optional) — echoed in the response; defaults to the 0-based
//!   position of the line in the stream.
//! * `engine` (optional) — `"auto"` (default) | `"scaled"` | `"rational"`.
//! * `budget` (optional) — `{"max_steps": N, "max_rounds": N}`, both
//!   optional.
//! * `want_schedule` (optional, default `false`) — include the full
//!   schedule in the response.
//! * `arrivals` (optional) — per-processor arrival steps (online `sim:*`
//!   methods only).
//!
//! # Response
//!
//! ```json
//! {"id": 1, "method": "OptM", "ok": {"makespan": 3, "engine": "scaled",
//!  "fallbacks": [], "steps": 0, "rounds": 3, "lower_bounds": {...},
//!  "schedule": null}, "error": null}
//! ```
//!
//! Exactly one of `ok` / `error` is non-null.  `error` carries a stable
//! snake_case `kind` (see `SolveError::kind`) plus a human-readable
//! `message`; a line that fails to parse gets `kind: "bad_request"`.

use crate::SolverService;
use cr_algos::solver::{Budget, EnginePreference, SolveError, SolveOutcome, SolveRequest};
use cr_core::{Instance, Job, Ratio};
use serde::{Deserialize, Serialize, Value};

/// One parsed request line: the wire id plus the solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Echoed in the response.
    pub id: u64,
    /// The request to dispatch.
    pub request: SolveRequest,
}

fn field_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => u64::deserialize(v)
            .map(Some)
            .map_err(|e| format!("field `{key}`: {e}")),
    }
}

fn field_usize(value: &Value, key: &str) -> Result<Option<usize>, String> {
    Ok(field_u64(value, key)?.map(|v| usize::try_from(v).expect("u64 fits usize")))
}

/// Rebuilds a deserialized instance through the validating constructors, so
/// malformed wire input (zero denominators, out-of-range requirements,
/// non-positive volumes) is rejected at parse time instead of panicking
/// inside a solver.
fn sanitize_instance(instance: &Instance) -> Result<Instance, String> {
    let mut rows: Vec<Vec<Job>> = Vec::with_capacity(instance.processors());
    for i in 0..instance.processors() {
        let mut row = Vec::with_capacity(instance.jobs_on(i));
        for job in instance.processor_jobs(i) {
            // The derived Deserialize fills Ratio's raw fields unchecked;
            // only strictly positive denominators and non-extreme
            // numerators are guaranteed to re-enter Ratio::new without
            // panicking (our own serializer only emits normalized,
            // positive-denominator rationals, so this rejects nothing
            // round-tripped).
            for (what, ratio) in [("requirement", job.requirement), ("volume", job.volume)] {
                if ratio.denom() <= 0 {
                    return Err(format!("job {what} has a non-positive denominator"));
                }
                if ratio.numer() == i128::MIN {
                    return Err(format!("job {what} numerator out of range"));
                }
            }
            row.push(Job::new(
                Ratio::new(job.requirement.numer(), job.requirement.denom()),
                Ratio::new(job.volume.numer(), job.volume.denom()),
            ));
        }
        rows.push(row);
    }
    Instance::new(rows).map_err(|e| e.to_string())
}

/// Parses the instance part of a request object (`rows` shorthand or full
/// `instance`).
fn parse_instance(value: &Value) -> Result<Instance, String> {
    if let Some(rows_value) = value.get("rows") {
        let rows: Vec<Vec<i64>> =
            Vec::deserialize(rows_value).map_err(|e| format!("field `rows`: {e}"))?;
        let mut jobs: Vec<Vec<Job>> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut out = Vec::with_capacity(row.len());
            for pct in row {
                if !(0..=100).contains(&pct) {
                    return Err(format!("field `rows`: percentage {pct} outside [0, 100]"));
                }
                out.push(Job::unit(Ratio::new(i128::from(pct), 100)));
            }
            jobs.push(out);
        }
        return Instance::new(jobs).map_err(|e| e.to_string());
    }
    if let Some(instance_value) = value.get("instance") {
        let instance =
            Instance::deserialize(instance_value).map_err(|e| format!("field `instance`: {e}"))?;
        return sanitize_instance(&instance);
    }
    Err("request needs an instance: either `rows` (percent shorthand) or `instance`".to_string())
}

/// Parses one request line.  `default_id` is used when the line carries no
/// `id` of its own.
///
/// # Errors
///
/// A human-readable message describing the malformed field; the serve loop
/// reports it as a `bad_request` response in the line's slot.
pub fn parse_request(line: &str, default_id: u64) -> Result<WireRequest, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let method = match value.get("method") {
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err("field `method` must be a string".to_string()),
        None => return Err("missing field `method`".to_string()),
    };
    let instance = parse_instance(&value)?;
    let engine = match value.get("engine") {
        None | Some(Value::Null) => EnginePreference::Auto,
        Some(Value::String(s)) => match s.as_str() {
            "auto" => EnginePreference::Auto,
            "scaled" => EnginePreference::Scaled,
            "rational" => EnginePreference::Rational,
            other => return Err(format!("unknown engine preference `{other}`")),
        },
        Some(_) => return Err("field `engine` must be a string".to_string()),
    };
    let budget = match value.get("budget") {
        None | Some(Value::Null) => Budget::UNLIMITED,
        Some(b) => Budget {
            max_steps: field_usize(b, "max_steps")?,
            max_rounds: field_usize(b, "max_rounds")?,
        },
    };
    let want_schedule = match value.get("want_schedule") {
        None | Some(Value::Null) => false,
        Some(v) => bool::deserialize(v).map_err(|e| format!("field `want_schedule`: {e}"))?,
    };
    let arrivals = match value.get("arrivals") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            Vec::<u64>::deserialize(v)
                .map_err(|e| format!("field `arrivals`: {e}"))?
                .into_iter()
                .map(|a| usize::try_from(a).expect("u64 fits usize"))
                .collect(),
        ),
    };
    let id = field_u64(&value, "id")?.unwrap_or(default_id);
    let mut request = SolveRequest::new(method, instance)
        .with_engine(engine)
        .with_budget(budget);
    request.want_schedule = want_schedule;
    request.arrivals = arrivals;
    Ok(WireRequest { id, request })
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opt_usize(value: Option<usize>) -> Value {
    value.map_or(Value::Null, |v| v.serialize())
}

fn outcome_value(outcome: &SolveOutcome) -> Value {
    let lb = &outcome.lower_bounds;
    obj(vec![
        ("makespan", opt_usize(outcome.makespan)),
        ("engine", Value::String(outcome.engine.as_str().to_string())),
        ("fallbacks", outcome.fallbacks.serialize()),
        ("steps", outcome.steps.serialize()),
        ("rounds", outcome.rounds.serialize()),
        (
            "lower_bounds",
            obj(vec![
                ("workload", lb.workload.serialize()),
                ("chain", lb.chain.serialize()),
                ("volume_chain", lb.volume_chain.serialize()),
                ("trivial", lb.trivial.serialize()),
                ("best", opt_usize(lb.best)),
            ]),
        ),
        (
            "schedule",
            outcome
                .schedule
                .as_ref()
                .map_or(Value::Null, Serialize::serialize),
        ),
    ])
}

fn error_value(kind: &str, message: &str) -> Value {
    obj(vec![
        ("kind", Value::String(kind.to_string())),
        ("message", Value::String(message.to_string())),
    ])
}

fn render_response(id: u64, method: &str, ok: Value, error: Value) -> String {
    serde_json::to_string(&obj(vec![
        ("id", id.serialize()),
        ("method", Value::String(method.to_string())),
        ("ok", ok),
        ("error", error),
    ]))
    .expect("response serialization is infallible")
}

/// Renders one solve result as a single-line JSON response.
#[must_use]
pub fn response_line(id: u64, method: &str, result: &Result<SolveOutcome, SolveError>) -> String {
    match result {
        Ok(outcome) => render_response(id, method, outcome_value(outcome), Value::Null),
        Err(err) => render_response(
            id,
            method,
            Value::Null,
            error_value(err.kind(), &err.to_string()),
        ),
    }
}

/// Renders a parse failure as a single-line JSON response.
#[must_use]
pub fn bad_request_line(id: u64, message: &str) -> String {
    render_response(id, "", Value::Null, error_value("bad_request", message))
}

/// Processes one batch of JSONL request lines end to end: parse, fan out
/// through `service`, render — one response line per request line, in input
/// order.  Lines default their `id` to `first_id + position`.
#[must_use]
pub fn process_batch(service: &SolverService, lines: &[String], first_id: u64) -> Vec<String> {
    let parsed: Vec<Result<WireRequest, String>> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| parse_request(line, first_id + i as u64))
        .collect();
    let requests: Vec<SolveRequest> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|w| w.request.clone()))
        .collect();
    let mut results = service.solve_batch(&requests).into_iter();
    parsed
        .iter()
        .enumerate()
        .map(|(i, entry)| match entry {
            Ok(wire) => {
                let result = results.next().expect("one result per parsed request");
                response_line(wire.id, &wire.request.method, &result)
            }
            Err(message) => bad_request_line(first_id + i as u64, message),
        })
        .collect()
}
