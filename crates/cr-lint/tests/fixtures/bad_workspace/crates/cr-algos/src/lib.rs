//! Fixture crate root with no lint header at all — `crate_hygiene` must
//! flag the missing `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.

pub mod scaled_engine;
pub mod solver;
