//! E3 — regenerates Figure 3 / Theorem 3: on the adversarial two-processor
//! family, RoundRobin needs 2n steps while the optimum is n + 1, so the
//! approximation ratio tends to 2.  On random instances the ratio stays well
//! below 2 (the bound is a worst case, not typical behaviour).
//!
//! The grid comes from the shared builders in `cr_bench::grids` (the same
//! sweep the `experiments` binary runs) and fans out through the rayon
//! pipeline.

#![forbid(unsafe_code)]

use cr_algos::opt_two_makespan;
use cr_bench::grids::{fig3_cells, FIG3_SIZES};
use cr_bench::pipeline::{Algorithm, Cell, Family, Reference, Runner};
use cr_instances::{round_robin_worst_case, round_robin_worst_case_opt, RequirementProfile};

fn main() {
    println!("E3 / Figure 3 — RoundRobin worst-case family (ratio → 2)\n");

    // The optimum is n + 1 analytically; verify with the exact DP while it
    // is cheap.
    for &n in FIG3_SIZES.iter().filter(|&&n| n <= 250) {
        let dp = opt_two_makespan(&round_robin_worst_case(n));
        assert_eq!(dp, round_robin_worst_case_opt(n), "Figure 3a optimum check");
    }

    let runner = Runner::default();
    println!(
        "{}",
        runner
            .run_table("Adversarial family (Theorem 3)", &fig3_cells(&FIG3_SIZES))
            .to_markdown()
    );

    // Context: on random two-processor instances RoundRobin is far from its
    // worst case.
    let random_cells: Vec<Cell> = (0..5)
        .map(|rep| {
            Cell::new(
                "fig3-random",
                format!("uniform m=2 n=40 rep={rep}"),
                Algorithm::RoundRobin,
                Family::RandomUnit {
                    m: 2,
                    n: 40,
                    profile: RequirementProfile::Uniform,
                },
                Reference::OptTwo,
            )
        })
        .collect();
    println!(
        "{}",
        runner
            .run_table("Random two-processor instances", &random_cells)
            .to_markdown()
    );
    println!("paper: worst-case ratio exactly 2 (Theorem 3); the family's ratio 2n/(n+1) → 2.");
}
