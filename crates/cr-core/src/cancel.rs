//! Cooperative cancellation for long-running searches.
//!
//! The exact engines in `cr-algos` and the step loop in `cr-sim` can run
//! for an unbounded wall-clock time on adversarial instances (the paper's
//! §6 families are *designed* to blow up search effort).  A [`CancelToken`]
//! carries the two signals that bound a request's lifetime:
//!
//! * a **deadline** — an absolute [`Instant`] derived from the request's
//!   `max_wall_ms` budget or the serving tier's `deadline_ms` field;
//! * an **external cancel flag** — flipped by the serving tier when the
//!   requesting connection dies mid-solve or the server shuts down, so the
//!   doomed work stops burning a rayon worker.
//!
//! Tokens form a tree: [`CancelToken::child_with_deadline_ms`] derives a
//! per-request token from a per-flush parent, so cancelling the parent
//! cancels every child while each child keeps its own deadline.
//!
//! Checking is *cooperative*: the search loops call [`CancelGate::tick`]
//! every iteration, and the gate only consults the clock every `stride`
//! ticks, so the hot paths stay unmeasurably slower.  The contract is that
//! every loop checks often enough that cancellation is observed within
//! [`CHECK_INTERVAL_MS`] of the deadline passing.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The guaranteed cancellation granularity, in milliseconds: every
/// cancellable loop checks its token at least this often, so a request
/// with `deadline_ms: D` returns within roughly `D + CHECK_INTERVAL_MS`.
pub const CHECK_INTERVAL_MS: u64 = 50;

/// Why a cancellable computation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The token's wall-clock deadline passed.
    DeadlineExceeded,
    /// The token (or an ancestor) was cancelled externally — the requesting
    /// connection died or the server is shutting down.
    Cancelled,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            CancelReason::Cancelled => write!(f, "cancelled externally"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn reason(&self) -> Option<CancelReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(CancelReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelReason::DeadlineExceeded);
            }
        }
        self.parent.as_ref().and_then(|p| p.reason())
    }
}

/// A shared cancellation signal: an optional absolute deadline plus an
/// externally flippable cancel flag (see the module docs).
///
/// Cloning is cheap (one `Arc` bump) and clones observe the same signal.
/// The default token ([`CancelToken::never`]) never fires and its checks
/// are a single branch, so unconditional threading costs nothing.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires (checks reduce to one branch).
    #[must_use]
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A token with no deadline that fires only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A token that fires `timeout` from now (or earlier, via `cancel`).
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: None,
            })),
        }
    }

    /// [`CancelToken::after`] with a millisecond budget — the shape of the
    /// `max_wall_ms` / `deadline_ms` knobs on the solve surface.
    #[must_use]
    pub fn after_ms(ms: u64) -> Self {
        CancelToken::after(Duration::from_millis(ms))
    }

    /// Derives a child token: it fires when this token fires *or* when its
    /// own `deadline_ms` budget (if any) runs out.
    ///
    /// With no budget and a never parent the child is again
    /// [`CancelToken::never`], so the derivation is free on the default
    /// path.
    #[must_use]
    pub fn child_with_deadline_ms(&self, deadline_ms: Option<u64>) -> Self {
        match (deadline_ms, &self.inner) {
            (None, None) => CancelToken::never(),
            (None, Some(_)) => self.clone(),
            (Some(ms), parent) => CancelToken {
                inner: Some(Arc::new(Inner {
                    cancelled: AtomicBool::new(false),
                    deadline: Some(Instant::now() + Duration::from_millis(ms)),
                    parent: parent.clone(),
                })),
            },
        }
    }

    /// Flips the external cancel flag; every clone and child observes it.
    /// A no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this token can ever fire.
    #[must_use]
    pub fn is_never(&self) -> bool {
        self.inner.is_none()
    }

    /// The firing reason, if the token has fired.
    #[must_use]
    pub fn reason(&self) -> Option<CancelReason> {
        self.inner.as_ref().and_then(|inner| inner.reason())
    }

    /// Whether the token has fired (deadline passed or cancelled).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// `Err(reason)` once the token fires — the shape the search loops
    /// thread outward with `?`.
    ///
    /// # Errors
    ///
    /// The [`CancelReason`] once the deadline passed or `cancel` was called.
    pub fn check(&self) -> Result<(), CancelReason> {
        match self.reason() {
            None => Ok(()),
            Some(reason) => Err(reason),
        }
    }

    /// A strided checker over this token (see [`CancelGate`]).
    #[must_use]
    pub fn gate(&self, stride: u32) -> CancelGate {
        CancelGate::new(self, stride)
    }
}

/// Amortizes token checks over a hot loop: [`CancelGate::tick`] is a
/// counter bump on most calls and only consults the token (one atomic load
/// plus possibly a clock read) every `stride` ticks.
///
/// `stride` is rounded up to a power of two.  Pick it so the loop body
/// times `stride` stays well under [`CHECK_INTERVAL_MS`].
#[derive(Debug)]
pub struct CancelGate {
    token: CancelToken,
    mask: u32,
    ticks: u32,
}

impl CancelGate {
    /// A gate over `token` checking every `stride` ticks (rounded up to a
    /// power of two; `stride` 0 and 1 both check every tick).
    #[must_use]
    pub fn new(token: &CancelToken, stride: u32) -> Self {
        CancelGate {
            token: token.clone(),
            mask: stride.next_power_of_two().saturating_sub(1),
            ticks: 0,
        }
    }

    /// Counts one loop iteration; every `stride` calls, checks the token.
    ///
    /// # Errors
    ///
    /// The [`CancelReason`] once the underlying token fires.
    #[inline]
    pub fn tick(&mut self) -> Result<(), CancelReason> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & self.mask == 0 {
            self.token.check()
        } else {
            Ok(())
        }
    }

    /// Checks the token immediately, ignoring the stride.
    ///
    /// # Errors
    ///
    /// The [`CancelReason`] once the underlying token fires.
    pub fn check_now(&self) -> Result<(), CancelReason> {
        self.token.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let token = CancelToken::never();
        assert!(token.is_never());
        token.cancel(); // no-op
        assert!(!token.is_cancelled());
        assert_eq!(token.check(), Ok(()));
        let mut gate = token.gate(64);
        for _ in 0..1000 {
            assert_eq!(gate.tick(), Ok(()));
        }
    }

    #[test]
    fn external_cancel_fires_clones_and_children() {
        let parent = CancelToken::new();
        let clone = parent.clone();
        let child = parent.child_with_deadline_ms(Some(60_000));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert_eq!(clone.check(), Err(CancelReason::Cancelled));
        assert_eq!(child.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_fires_with_the_deadline_reason() {
        let token = CancelToken::after(Duration::from_millis(0));
        assert_eq!(token.check(), Err(CancelReason::DeadlineExceeded));
        // An explicit cancel takes precedence over the deadline reason.
        let token = CancelToken::after(Duration::from_millis(0));
        token.cancel();
        assert_eq!(token.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn child_deadline_is_independent_of_the_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline_ms(Some(0));
        assert_eq!(child.check(), Err(CancelReason::DeadlineExceeded));
        assert_eq!(parent.check(), Ok(()), "child deadlines never flow up");
    }

    #[test]
    fn child_derivation_is_free_on_the_default_path() {
        let never = CancelToken::never();
        assert!(never.child_with_deadline_ms(None).is_never());
        let parent = CancelToken::new();
        assert!(!parent.child_with_deadline_ms(None).is_never());
    }

    #[test]
    fn gate_checks_on_the_stride_boundary() {
        let token = CancelToken::new();
        let mut gate = token.gate(4);
        token.cancel();
        // Ticks 1..=3 are counter bumps; tick 4 hits the stride and checks.
        assert_eq!(gate.tick(), Ok(()));
        assert_eq!(gate.tick(), Ok(()));
        assert_eq!(gate.tick(), Ok(()));
        assert_eq!(gate.tick(), Err(CancelReason::Cancelled));
        assert_eq!(gate.check_now(), Err(CancelReason::Cancelled));
    }
}
