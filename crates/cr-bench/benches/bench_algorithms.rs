//! E11 — runtime scaling of the polynomial-time schedulers (GreedyBalance,
//! RoundRobin and the baseline heuristics) on random instances of growing
//! size.  The paper claims linear-time behaviour for GreedyBalance and
//! RoundRobin; the criterion groups below make the scaling visible.

use cr_algos::solver::{SolveRequest, POLY_METHODS};
use cr_bench::pipeline::shared_service;
use cr_instances::{random_unit_instance, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    // The request is built once and dispatched through the warm service, so
    // an iteration measures the scheduler itself — not a fresh per-call
    // instance clone + scaled conversion.
    let service = shared_service();
    for &(m, n) in &[(4usize, 16usize), (4, 64), (8, 64), (16, 128)] {
        let cfg = RandomConfig::uniform(m, n);
        let instance = random_unit_instance(&cfg, 42);
        for method in POLY_METHODS {
            let request = SolveRequest::new(method, instance.clone());
            group.bench_with_input(
                BenchmarkId::new(method, format!("m{m}_n{n}")),
                &request,
                |b, request| {
                    b.iter(|| black_box(service.solve(black_box(request)).unwrap().makespan));
                },
            );
        }
    }
    group.finish();
}

fn bench_schedule_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_validation");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let cfg = RandomConfig::uniform(8, 128);
    let instance = random_unit_instance(&cfg, 7);
    let schedule = cr_algos::Scheduler::schedule(&cr_algos::GreedyBalance::new(), &instance);
    group.bench_function("greedy_m8_n128", |b| {
        b.iter(|| black_box(schedule.trace(black_box(&instance)).unwrap().makespan()));
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_schedule_validation);
criterion_main!(benches);
