//! Fixture solver vocabulary.

/// Stand-in for the real error enum.
pub struct SolveError;

impl SolveError {
    /// Every kind the fixture solver emits.
    pub const ALL_KINDS: [&'static str; 2] = ["infeasible", "deadline_exceeded"];
}
