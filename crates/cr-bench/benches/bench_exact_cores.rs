//! Scaled-integer vs. rational cores of the exact solvers (ISSUE-2).
//!
//! Each group benchmarks one solver twice on the same instance: through the
//! public entry point (the scaled engine) and through the retained
//! `*_rational` reference path.  The `bench_exact` binary produces the
//! committed `BENCH_exact.json` from the same comparison at a coarser grain.

use cr_algos::{
    brute_force_makespan, brute_force_makespan_rational, opt_m_makespan, opt_m_makespan_rational,
    opt_two_makespan, opt_two_makespan_rational,
};
use cr_instances::{random_unit_instance, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_opt_two_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_two_cores");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[128usize, 512] {
        let instance = random_unit_instance(&RandomConfig::uniform(2, n), 11);
        group.bench_with_input(BenchmarkId::new("scaled", n), &instance, |b, inst| {
            b.iter(|| black_box(opt_two_makespan(black_box(inst))));
        });
        group.bench_with_input(BenchmarkId::new("rational", n), &instance, |b, inst| {
            b.iter(|| black_box(opt_two_makespan_rational(black_box(inst))));
        });
    }
    group.finish();
}

fn bench_opt_m_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_m_cores");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &(m, n) in &[(3usize, 4usize), (4, 3)] {
        let instance = random_unit_instance(&RandomConfig::uniform(m, n), 23);
        let id = format!("m{m}_n{n}");
        group.bench_with_input(BenchmarkId::new("scaled", &id), &instance, |b, inst| {
            b.iter(|| black_box(opt_m_makespan(black_box(inst))));
        });
        group.bench_with_input(BenchmarkId::new("rational", &id), &instance, |b, inst| {
            b.iter(|| black_box(opt_m_makespan_rational(black_box(inst))));
        });
    }
    group.finish();
}

fn bench_brute_force_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force_cores");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let instance = random_unit_instance(&RandomConfig::uniform(3, 4), 23);
    group.bench_with_input(BenchmarkId::new("scaled", "m3_n4"), &instance, |b, inst| {
        b.iter(|| black_box(brute_force_makespan(black_box(inst))));
    });
    group.bench_with_input(
        BenchmarkId::new("rational", "m3_n4"),
        &instance,
        |b, inst| b.iter(|| black_box(brute_force_makespan_rational(black_box(inst)))),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_opt_two_cores,
    bench_opt_m_cores,
    bench_brute_force_cores
);
criterion_main!(benches);
