//! The RoundRobin algorithm (Section 4.2 of the paper).
//!
//! RoundRobin operates in `n` phases, where `n` is the maximum number of jobs
//! on any processor.  During phase `j` it only works on the `j`-th job of
//! every processor that has one, assigning the resource arbitrarily (here: in
//! processor order) to the jobs of the phase that are still unfinished.  A
//! phase may waste resource in its final step because the next phase's jobs
//! are not started early.
//!
//! Theorem 3 shows that this simple algorithm is a 2-approximation and that
//! the factor 2 is tight (the tight family is provided by
//! `cr-instances::worst_case::round_robin_family`).

use crate::scaled_sched::serve_units_in_order;
use crate::traits::Scheduler;
use cr_core::{Instance, Ratio, ScaledScheduleBuilder, Schedule, ScheduleBuilder};

/// The phase-based RoundRobin 2-approximation.
///
/// The production path runs on the scaled-integer grid
/// ([`ScaledScheduleBuilder`]); [`RoundRobin::schedule_rational`] is the
/// retained exact-[`Ratio`] reference (identical output), which also serves
/// as the fallback for instances whose unit grid overflows `u64`.
///
/// # Examples
///
/// ```
/// use cr_algos::{RoundRobin, Scheduler};
/// use cr_core::Instance;
///
/// // Phase 1 needs ⌈0.6 + 0.6⌉ = 2 steps, phase 2 needs ⌈0.4 + 0.4⌉ = 1.
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]);
/// assert_eq!(RoundRobin::new().makespan(&inst), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin
    }

    /// The exact-rational reference implementation of
    /// [`Scheduler::schedule`] (identical output).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        let m = instance.processors();
        let n = instance.max_chain_length();
        let mut builder = ScheduleBuilder::new(instance);

        for phase in 0..n {
            // Processors participating in this phase: those whose active job
            // is exactly the phase-th job (processors with shorter chains have
            // already run out of jobs).
            loop {
                let participants: Vec<usize> = (0..m)
                    .filter(|&i| {
                        builder
                            .active_job(i)
                            .map(|id| id.index == phase)
                            .unwrap_or(false)
                    })
                    .collect();
                if participants.is_empty() {
                    break;
                }
                let mut shares = vec![Ratio::ZERO; m];
                let mut left = Ratio::ONE;
                for i in participants {
                    if left.is_zero() {
                        break;
                    }
                    let give = builder.step_demand(i).min(left);
                    shares[i] = give;
                    left -= give;
                }
                builder.push_step(shares);
            }
        }
        builder.finish()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        let Some(mut builder) = ScaledScheduleBuilder::try_new(instance) else {
            return self.schedule_rational(instance);
        };
        let m = instance.processors();
        for phase in 0..instance.max_chain_length() {
            loop {
                let participants: Vec<usize> = (0..m)
                    .filter(|&i| {
                        builder
                            .active_job(i)
                            .map(|id| id.index == phase)
                            .unwrap_or(false)
                    })
                    .collect();
                if participants.is_empty() {
                    break;
                }
                serve_units_in_order(&mut builder, &participants);
            }
        }
        builder.finish()
    }
}

/// Returns the number of steps RoundRobin needs for phase `j` (zero-based):
/// `⌈Σ_{i ∈ M_{j+1}} r_ij · p_ij⌉`, as used in the proof of Theorem 3.
///
/// A phase whose jobs have zero total workload still needs one step per
/// involved job chain position (every job occupies at least one step).
#[must_use]
pub fn phase_length(instance: &Instance, phase: usize) -> usize {
    let machines = instance.machines_with_job(phase);
    if machines.is_empty() {
        return 0;
    }
    let workload: Ratio = machines
        .iter()
        .map(|&i| instance.processor_jobs(i)[phase].workload())
        .sum();
    let steps = usize::try_from(workload.ceil().max(0)).unwrap_or(0);
    steps.max(1)
}

/// The analytical upper bound `Σ_j ⌈Σ_{i ∈ M_j} r_ij⌉` on the RoundRobin
/// makespan from the proof of Theorem 3.
#[must_use]
pub fn round_robin_upper_bound(instance: &Instance) -> usize {
    (0..instance.max_chain_length())
        .map(|j| phase_length(instance, j))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::bounds;

    #[test]
    fn phase_structure_matches_analysis() {
        let inst = Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]);
        assert_eq!(phase_length(&inst, 0), 2);
        assert_eq!(phase_length(&inst, 1), 1);
        assert_eq!(round_robin_upper_bound(&inst), 3);
        let makespan = RoundRobin::new().makespan(&inst);
        assert_eq!(makespan, 3);
    }

    #[test]
    fn makespan_never_exceeds_analytical_bound() {
        let instances = vec![
            Instance::unit_from_percentages(&[
                &[20, 10, 10, 10],
                &[50, 55, 90, 55, 10],
                &[50, 40, 95],
            ]),
            Instance::unit_from_percentages(&[&[100, 100], &[100, 100], &[100, 100]]),
            Instance::unit_from_percentages(&[&[33, 66, 99], &[99, 66, 33]]),
        ];
        for inst in instances {
            let makespan = RoundRobin::new().makespan(&inst);
            assert!(makespan <= round_robin_upper_bound(&inst));
            // Theorem 3 upper bound: RR ≤ n + Σ workload ≤ 2·OPT.
            let bound = inst.max_chain_length() + bounds::workload_bound_steps(&inst);
            assert!(makespan <= bound);
        }
    }

    #[test]
    fn never_starts_next_phase_early() {
        // Phase 0: total 1.2 → two steps, the second wasting 0.8.
        // Phase 1: total 0.2 → one step.
        let inst = Instance::unit_from_percentages(&[&[60, 10], &[60, 10]]);
        let schedule = RoundRobin::new().schedule(&inst);
        assert_eq!(schedule.num_steps(), 3);
        // In step 1 (second step of phase 0) only processor 1's first job is
        // still unfinished; nothing from phase 1 runs.
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.completion_step(cr_core::JobId::new(0, 0)), Some(0));
        assert_eq!(trace.completion_step(cr_core::JobId::new(1, 0)), Some(1));
        assert_eq!(trace.completion_step(cr_core::JobId::new(0, 1)), Some(2));
        assert_eq!(trace.completion_step(cr_core::JobId::new(1, 1)), Some(2));
    }

    #[test]
    fn within_factor_two_of_workload_bound() {
        let inst = Instance::unit_from_percentages(&[
            &[80, 20, 60, 40, 30],
            &[70, 30, 50, 50, 90],
            &[10, 90, 25, 75, 45],
            &[55, 45, 35, 65, 20],
        ]);
        let makespan = RoundRobin::new().makespan(&inst) as f64;
        let opt_lb = bounds::trivial_lower_bound(&inst) as f64;
        assert!(makespan / opt_lb <= 2.0 + 1e-9);
    }

    #[test]
    fn handles_unequal_chain_lengths() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50, 50, 50]]);
        let makespan = RoundRobin::new().makespan(&inst);
        assert_eq!(makespan, 3);
    }

    #[test]
    fn zero_requirement_jobs_complete_in_their_phase() {
        let inst = Instance::unit_from_percentages(&[&[0, 50], &[100, 0]]);
        let makespan = RoundRobin::new().makespan(&inst);
        // Phase 0: ⌈0 + 1⌉ = 1 step; phase 1: ⌈0.5⌉ = 1 step.
        assert_eq!(makespan, 2);
    }
}
