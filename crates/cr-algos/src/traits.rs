//! The [`Scheduler`] abstraction shared by all algorithms in this crate.

use crate::solver::SolveError;
use cr_core::{Instance, Schedule};

/// An offline CRSharing scheduler: given a full problem instance it produces
/// a feasible resource-assignment schedule.
///
/// Every algorithm of the paper (RoundRobin, GreedyBalance, the exact
/// algorithms) and every baseline heuristic implements this trait, which lets
/// the experiment harness sweep over algorithms generically.  For the
/// request/response surface (engine preferences, budgets, structured
/// errors) see [`crate::solver`] — every scheduler also implements
/// [`crate::solver::Solver`].
pub trait Scheduler {
    /// A short, stable, human-readable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Computes a feasible schedule for `instance`.
    ///
    /// Implementations must return a schedule that completes every job and
    /// never overuses the resource; this is enforced by the
    /// `cr_core::ScheduleBuilder` they are built on.
    fn schedule(&self, instance: &Instance) -> Schedule;

    /// The makespan of the schedule this algorithm produces, validated
    /// against the instance.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the produced schedule fails
    /// validation (a bug in the scheduler implementation, surfaced as a
    /// structured error instead of a panic).
    fn try_makespan(&self, instance: &Instance) -> Result<usize, SolveError> {
        let schedule = self.schedule(instance);
        schedule.makespan(instance).map_err(SolveError::from)
    }

    /// Convenience: the makespan of the schedule this algorithm produces.
    ///
    /// A thin wrapper over the fallible path, kept for call sites (tests,
    /// benchmarks, examples) where an infeasible schedule is unrecoverable
    /// anyway; prefer [`Scheduler::try_makespan`] — or the full
    /// [`crate::solver`] surface — where errors should be handled.
    ///
    /// # Panics
    ///
    /// Panics if the produced schedule is infeasible.
    fn makespan(&self, instance: &Instance) -> usize {
        self.try_makespan(instance)
            .expect("scheduler produced an infeasible schedule")
    }
}

/// A boxed scheduler, convenient for heterogeneous algorithm line-ups in the
/// benchmark harness.
pub type BoxedScheduler = Box<dyn Scheduler + Send + Sync>;

/// Returns the full line-up of polynomial-time schedulers implemented in this
/// crate (the exact exponential/DP algorithms are excluded because they do
/// not scale to arbitrary instances).
#[deprecated(
    since = "0.1.0",
    note = "use cr_algos::solver::registry() — the string-keyed solver registry with \
            engine preferences, budgets and structured errors"
)]
#[must_use]
pub fn standard_line_up() -> Vec<BoxedScheduler> {
    vec![
        Box::new(crate::greedy_balance::GreedyBalance::new()),
        Box::new(crate::round_robin::RoundRobin::new()),
        Box::new(crate::heuristics::EqualShare::new()),
        Box::new(crate::heuristics::ProportionalShare::new()),
        Box::new(crate::heuristics::LargestRequirementFirst::new()),
        Box::new(crate::heuristics::SmallestRequirementFirst::new()),
    ]
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use cr_core::Ratio;

    #[test]
    fn line_up_contains_paper_algorithms() {
        let names: Vec<&str> = standard_line_up().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"GreedyBalance"));
        assert!(names.contains(&"RoundRobin"));
        assert!(names.len() >= 4);
    }

    #[test]
    fn all_line_up_schedulers_produce_feasible_schedules() {
        let inst = Instance::unit_from_percentages(&[&[60, 30, 10], &[50, 50], &[90]]);
        for s in standard_line_up() {
            let schedule = s.schedule(&inst);
            let trace = schedule.trace(&inst).unwrap();
            assert!(trace.makespan() >= 2, "{} too fast", s.name());
            assert!(
                Ratio::from_integer(trace.makespan() as i64) >= inst.total_workload(),
                "{} beats Observation 1",
                s.name()
            );
        }
    }

    #[test]
    fn try_makespan_matches_the_panicking_wrapper() {
        let inst = Instance::unit_from_percentages(&[&[60, 30, 10], &[50, 50], &[90]]);
        for s in standard_line_up() {
            assert_eq!(s.try_makespan(&inst).unwrap(), s.makespan(&inst));
        }
    }
}
