//! Scaled-integer view of an instance's resource requirements.
//!
//! The exact solvers spend essentially all of their time comparing and
//! summing [`Ratio`] requirements: every `Ratio` addition runs Euclid's gcd
//! on `i128` operands, and every comparison cross-multiplies.  For a *fixed*
//! instance none of that generality is needed — all requirements live on the
//! common grid `1/D`, where `D` is the least common multiple of their
//! denominators (bounded, for every instance family shipped in this
//! repository, by a few million — see the `rational` module docs).
//!
//! [`ScaledInstance`] precomputes `D` once and re-expresses every requirement
//! as a plain `u64` number of *units* with resource capacity `D`.  Sums,
//! "does it exceed the resource?" tests and leftover computations then become
//! single integer operations with no gcd anywhere.  The conversion is exact
//! in both directions: [`ScaledInstance::to_ratio`] returns the original
//! requirement value bit-for-bit (same reduced fraction), which is what lets
//! the solver cores run on units internally while the public API keeps
//! speaking exact [`Ratio`]s.
//!
//! Construction is fallible ([`ScaledInstance::try_new`]): if the LCM blows
//! past the overflow-safe bound (so that sums of `m` requirements might not
//! fit in `u64`), callers fall back to the rational-arithmetic path.

use crate::instance::Instance;
use crate::rational::Ratio;

/// An instance's requirements re-expressed as integer units on the common
/// grid `1/capacity`.
///
/// Rows are stored in one flat buffer (CSR-style) so iterating a processor's
/// chain is a contiguous slice scan.
///
/// # Examples
///
/// ```
/// use cr_core::{Instance, Ratio, ScaledInstance};
///
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[50]]);
/// let scaled = ScaledInstance::try_new(&inst).unwrap();
/// // 60%, 40% and 50% share the grid 1/5 after reduction (3/5, 2/5, 1/2 → lcm 10).
/// assert_eq!(scaled.capacity(), 10);
/// assert_eq!(scaled.row(0), &[6, 4]);
/// assert_eq!(scaled.row(1), &[5]);
/// assert_eq!(scaled.to_ratio(6), Ratio::from_percent(60));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaledInstance {
    /// The shared resource capacity `D` (the requirement denominators' LCM).
    capacity: u64,
    /// Row start offsets into `units`; length `processors + 1`.
    offsets: Vec<u32>,
    /// All requirements in units, processor-major.
    units: Vec<u64>,
}

/// Greatest common divisor (Euclid) on `u64`.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl ScaledInstance {
    /// Builds the scaled view, or `None` when the denominators' LCM `D` is so
    /// large that `(m + 1) · D` — the headroom needed so any sum of per-step
    /// remaining requirements plus a carried leftover fits in `u64` — would
    /// overflow.  Callers treat `None` as "use the rational path".
    #[must_use]
    pub fn try_new(instance: &Instance) -> Option<Self> {
        let m = instance.processors();
        // LCM of all requirement denominators.  Denominators are positive and
        // requirements lie in [0, 1], so they fit u64.
        let mut capacity: u64 = 1;
        for (_, job) in instance.iter_jobs() {
            let den = u64::try_from(job.requirement.denom()).ok()?;
            let g = gcd(capacity, den);
            capacity = capacity.checked_mul(den / g)?;
            // Keep headroom for sums of m requirements plus one leftover.
            capacity.checked_mul(m as u64 + 1)?;
        }
        let mut offsets = Vec::with_capacity(m + 1);
        let mut units = Vec::with_capacity(instance.total_jobs());
        offsets.push(0u32);
        for i in 0..m {
            for job in instance.processor_jobs(i) {
                let num = u64::try_from(job.requirement.numer()).ok()?;
                let den = u64::try_from(job.requirement.denom()).ok()?;
                // num ≤ den divides capacity, so num · (capacity / den) ≤ capacity.
                units.push(num * (capacity / den));
            }
            offsets.push(u32::try_from(units.len()).ok()?);
        }
        Some(ScaledInstance {
            capacity,
            offsets,
            units,
        })
    }

    /// The resource capacity `D`: a full time step hands out exactly
    /// `capacity` units.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of jobs on processor `i`.
    #[must_use]
    pub fn jobs_on(&self, processor: usize) -> usize {
        (self.offsets[processor + 1] - self.offsets[processor]) as usize
    }

    /// Total number of jobs over all processors.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.units.len()
    }

    /// Requirements of processor `i` in units, in chain order.
    #[must_use]
    pub fn row(&self, processor: usize) -> &[u64] {
        &self.units[self.offsets[processor] as usize..self.offsets[processor + 1] as usize]
    }

    /// Requirement of job `(processor, index)` in units.
    #[must_use]
    pub fn unit_req(&self, processor: usize, index: usize) -> u64 {
        self.units[self.offsets[processor] as usize + index]
    }

    /// Converts a unit count back to the exact rational share
    /// `units / capacity` (reduced — round-trips the original requirement).
    #[must_use]
    pub fn to_ratio(&self, units: u64) -> Ratio {
        Ratio::new(i128::from(units), i128::from(self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::rational::ratio;

    #[test]
    fn lcm_and_units_are_exact() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 3), ratio(1, 4)])
            .processor([ratio(5, 6)])
            .build();
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.capacity(), 12);
        assert_eq!(scaled.row(0), &[4, 3]);
        assert_eq!(scaled.row(1), &[10]);
        assert_eq!(scaled.processors(), 2);
        assert_eq!(scaled.total_jobs(), 3);
        assert_eq!(scaled.jobs_on(0), 2);
        assert_eq!(scaled.unit_req(1, 0), 10);
    }

    #[test]
    fn round_trips_every_requirement() {
        let inst = Instance::unit_from_percentages(&[&[20, 10, 0, 100], &[55, 90], &[33]]);
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        for i in 0..inst.processors() {
            for (j, job) in inst.processor_jobs(i).iter().enumerate() {
                assert_eq!(scaled.to_ratio(scaled.unit_req(i, j)), job.requirement);
            }
        }
    }

    #[test]
    fn empty_processors_give_empty_rows() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2)])
            .empty_processor()
            .build();
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.jobs_on(1), 0);
        assert!(scaled.row(1).is_empty());
    }

    #[test]
    fn zero_and_full_requirements() {
        let inst = Instance::unit_from_percentages(&[&[0, 100], &[100, 0]]);
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert_eq!(scaled.capacity(), 1);
        assert_eq!(scaled.row(0), &[0, 1]);
        assert_eq!(scaled.to_ratio(0), Ratio::ZERO);
        assert_eq!(scaled.to_ratio(1), Ratio::ONE);
    }

    #[test]
    fn overflowing_lcm_is_rejected() {
        // Denominators are pairwise-coprime large primes: the LCM exceeds the
        // u64 headroom bound and construction must decline, not panic.
        let primes: [i128; 4] = [4_294_967_291, 4_294_967_279, 4_294_967_231, 4_294_967_197];
        let inst = InstanceBuilder::new()
            .processor(primes.map(|p| ratio(1, p)))
            .build();
        assert!(ScaledInstance::try_new(&inst).is_none());
    }
}
