//! The scaled-integer engine behind the exact solvers.
//!
//! `opt_two`, `opt_m` and `brute_force` all expose `Ratio`-based public APIs
//! but delegate their hot search loops to this module, which works on a
//! [`ScaledInstance`]: requirements as plain `u64` units with resource
//! capacity `D` (the denominators' LCM).  Compared to the retained rational
//! reference paths this removes
//!
//! * every gcd: sums, capacity tests and leftover computations are single
//!   integer ops;
//! * the `Config { Vec<usize>, Vec<Ratio> }` search key: configurations are
//!   packed into one flat `Rc<[u64]>` of `2m` words (`completed` counts, then
//!   `spent` units) and deduplicated through an `FxHashMap` probed with a
//!   borrowed slice, so duplicate successors allocate nothing;
//! * per-call successor `Vec`s: [`for_each_successor`] streams successors
//!   through a callback, filling caller-provided [`SuccScratch`] buffers.
//!
//! The engine is internal; its correctness contract is "identical makespans
//! to the rational reference solvers", enforced by unit tests here and by the
//! `proptest_scaled` cross-check suite.

use cr_core::{Instance, Ratio, ScaledInstance, Schedule, ScheduleBuilder};
use rustc_hash::FxHashMap;
use std::rc::Rc;

/// A packed configuration: `2m` words, `[completed_0, …, completed_{m-1},
/// spent_0, …, spent_{m-1}]` with `spent` in units.
pub(crate) type PackedConfig = Rc<[u64]>;

/// The initial configuration: nothing completed, nothing spent.
pub(crate) fn initial_config(m: usize) -> PackedConfig {
    Rc::from(vec![0u64; 2 * m])
}

/// Whether every processor has completed all of its jobs.
pub(crate) fn is_final(scaled: &ScaledInstance, config: &[u64]) -> bool {
    (0..scaled.processors()).all(|i| config[i] as usize >= scaled.jobs_on(i))
}

/// `true` if `a` dominates `b` (component-wise at least as far, in the
/// Lemma 4 order: more jobs completed, or equally many and at least as much
/// spent on the frontier job).
pub(crate) fn dominates(m: usize, a: &[u64], b: &[u64]) -> bool {
    (0..m).all(|i| a[i] > b[i] || (a[i] == b[i] && a[m + i] >= b[m + i]))
}

/// The decision producing a successor: which of the parent's *active*
/// processors complete (bitmask over the active list, in index order) and
/// which processor, if any, receives the leftover units without completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScaledChoice {
    /// Bitmask over the parent configuration's active-processor list.
    pub finished_mask: u32,
    /// Processor granted the leftover, with the amount in units.
    pub partial: Option<(usize, u64)>,
}

/// Reusable scratch buffers for successor generation (one per search, not
/// one per expansion).
#[derive(Debug, Default)]
pub(crate) struct SuccScratch {
    active: Vec<usize>,
    remaining: Vec<u64>,
    tmp: Vec<u64>,
}

/// Writes the successor reached from `config` by `choice` into `tmp`.
fn build_successor(
    tmp: &mut Vec<u64>,
    config: &[u64],
    active: &[usize],
    m: usize,
    mask: u32,
    partial: Option<(usize, u64)>,
) {
    tmp.clear();
    tmp.extend_from_slice(config);
    for (bit, &i) in active.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            tmp[i] += 1;
            tmp[m + i] = 0;
        }
    }
    if let Some((p, amount)) = partial {
        tmp[m + p] += amount;
    }
}

/// Streams all successor configurations of `config` reachable in one
/// normalized (non-wasting, progressive) time step to `emit`.  The slice
/// handed to `emit` is `scratch.tmp` — callers that keep a successor must
/// copy it out (typically only after a memo-table probe misses).
///
/// Mirrors the rational `opt_m::successors` step enumeration exactly.
pub(crate) fn for_each_successor(
    scaled: &ScaledInstance,
    config: &[u64],
    scratch: &mut SuccScratch,
    mut emit: impl FnMut(&[u64], ScaledChoice),
) {
    let m = scaled.processors();
    let SuccScratch {
        active,
        remaining,
        tmp,
    } = scratch;
    active.clear();
    remaining.clear();
    for i in 0..m {
        let done = config[i] as usize;
        if done < scaled.jobs_on(i) {
            active.push(i);
            remaining.push(scaled.unit_req(i, done) - config[m + i]);
        }
    }
    if active.is_empty() {
        return;
    }
    let k = active.len();
    assert!(
        k < 32,
        "configuration search supports at most 31 simultaneously active processors"
    );
    let cap = scaled.capacity();
    let total: u64 = remaining.iter().sum();

    // Non-wasting: if everything fits, all active jobs finish.
    if total <= cap {
        let mask = (1u32 << k) - 1;
        build_successor(tmp, config, active, m, mask, None);
        emit(
            tmp,
            ScaledChoice {
                finished_mask: mask,
                partial: None,
            },
        );
        return;
    }

    // Enumerate non-empty subsets of the active processors whose remaining
    // requirements fit into the resource.
    for mask in 1u32..(1u32 << k) {
        let mut sum = 0u64;
        for (bit, &r) in remaining.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                sum += r;
            }
        }
        if sum > cap {
            continue;
        }
        let leftover = cap - sum;
        if leftover == 0 {
            build_successor(tmp, config, active, m, mask, None);
            emit(
                tmp,
                ScaledChoice {
                    finished_mask: mask,
                    partial: None,
                },
            );
            continue;
        }
        // Non-wasting: the leftover must go to exactly one remaining active
        // job that cannot be completed with it (otherwise a larger subset
        // covers the case).
        for (bit, &proc_idx) in active.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                continue;
            }
            if remaining[bit] > leftover {
                let partial = Some((proc_idx, leftover));
                build_successor(tmp, config, active, m, mask, partial);
                emit(
                    tmp,
                    ScaledChoice {
                        finished_mask: mask,
                        partial,
                    },
                );
            }
        }
    }
}

/// One node of the round-by-round configuration search.
#[derive(Debug, Clone)]
pub(crate) struct ScaledNode {
    /// The configuration this node represents.
    pub config: PackedConfig,
    /// Index of the parent node in the previous round (`u32::MAX` for the
    /// initial node).
    pub parent: u32,
    /// Decision that produced this node from its parent.
    pub choice: ScaledChoice,
}

/// Runs the Algorithm 2 configuration search on the scaled instance and
/// returns, per round, the surviving (deduplicated, non-dominated) nodes.
/// The search stops after the first round containing a final configuration.
pub(crate) fn run_search(scaled: &ScaledInstance) -> Vec<Vec<ScaledNode>> {
    let m = scaled.processors();
    let initial = initial_config(m);
    let mut rounds: Vec<Vec<ScaledNode>> = vec![vec![ScaledNode {
        config: initial.clone(),
        parent: u32::MAX,
        choice: ScaledChoice {
            finished_mask: 0,
            partial: None,
        },
    }]];
    if is_final(scaled, &initial) {
        return rounds;
    }

    let mut scratch = SuccScratch::default();
    let max_rounds = scaled.total_jobs() + 1;
    for _round in 0..max_rounds {
        let prev = rounds.last().expect("at least the initial round");
        let mut seen: FxHashMap<PackedConfig, u32> = FxHashMap::default();
        let mut next: Vec<ScaledNode> = Vec::new();
        for (parent_idx, node) in prev.iter().enumerate() {
            for_each_successor(scaled, &node.config, &mut scratch, |tmp, choice| {
                // Exact duplicate: keep the first representative.  Probing
                // with the borrowed scratch slice means duplicates cost no
                // allocation at all.
                if seen.contains_key(tmp) {
                    return;
                }
                let config: PackedConfig = Rc::from(tmp);
                seen.insert(
                    config.clone(),
                    u32::try_from(next.len()).expect("round size fits u32"),
                );
                next.push(ScaledNode {
                    config,
                    parent: u32::try_from(parent_idx).expect("round size fits u32"),
                    choice,
                });
            });
        }

        // Remove dominated configurations (Lemma 4).  The surviving set is
        // the unique maximal antichain of the domination order, so it can be
        // computed with one forward pass over candidates sorted by
        // (Σ completed, Σ spent) descending: `a` dominates `b` implies
        // Σc(a) ≥ Σc(b), and on equality Σs(a) ≥ Σs(b), so every dominator
        // precedes what it dominates and only the kept prefix must be
        // checked — O(candidates · survivors) integer slice compares instead
        // of O(candidates²).
        let mut order: Vec<(u64, u64, u32)> = next
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let sum_completed: u64 = node.config[..m].iter().sum();
                let sum_spent: u64 = node.config[m..].iter().sum();
                (
                    sum_completed,
                    sum_spent,
                    u32::try_from(idx).expect("round size fits u32"),
                )
            })
            .collect();
        order.sort_unstable_by(|a, b| b.cmp(a));
        let mut kept: Vec<u32> = Vec::with_capacity(order.len());
        for &(_, _, idx) in &order {
            let candidate = &next[idx as usize].config;
            if !kept
                .iter()
                .any(|&k| dominates(m, &next[k as usize].config, candidate))
            {
                kept.push(idx);
            }
        }
        let filtered: Vec<ScaledNode> = kept
            .into_iter()
            .map(|idx| next[idx as usize].clone())
            .collect();

        let done = filtered.iter().any(|n| is_final(scaled, &n.config));
        rounds.push(filtered);
        if done {
            break;
        }
    }
    rounds
}

/// The optimal makespan from a finished configuration search.
pub(crate) fn search_makespan(scaled: &ScaledInstance, rounds: &[Vec<ScaledNode>]) -> usize {
    if is_final(scaled, &rounds[0][0].config) {
        return 0;
    }
    let last = rounds.len() - 1;
    assert!(
        rounds[last].iter().any(|n| is_final(scaled, &n.config)),
        "configuration search ended without reaching a final configuration"
    );
    last
}

/// Reconstructs an optimal schedule from a finished configuration search by
/// back-tracing the winner and replaying the per-step decisions through the
/// exact `Ratio`-based [`ScheduleBuilder`] (the scaled units convert back
/// losslessly via [`ScaledInstance::to_ratio`]).
pub(crate) fn search_schedule(
    instance: &Instance,
    scaled: &ScaledInstance,
    rounds: &[Vec<ScaledNode>],
) -> Schedule {
    let last = rounds.len() - 1;
    if last == 0 {
        return Schedule::empty();
    }
    let winner = rounds[last]
        .iter()
        .position(|n| is_final(scaled, &n.config))
        .expect("search ended on a final configuration");

    // Walk back through the rounds, collecting (parent index, choice).
    let mut path: Vec<(usize, ScaledChoice)> = Vec::with_capacity(last);
    let mut round = last;
    let mut idx = winner;
    while round > 0 {
        let node = &rounds[round][idx];
        idx = node.parent as usize;
        path.push((idx, node.choice));
        round -= 1;
    }
    path.reverse();

    // Replay the decisions into an explicit resource assignment.  The
    // finished mask indexes the *parent's* active-processor list, which is
    // recomputed here from the parent configuration.
    let m = scaled.processors();
    let mut builder = ScheduleBuilder::new(instance);
    for (step, &(parent_idx, choice)) in path.iter().enumerate() {
        let parent = &rounds[step][parent_idx].config;
        let mut shares = vec![Ratio::ZERO; m];
        let mut bit = 0u32;
        for i in 0..m {
            if (parent[i] as usize) < scaled.jobs_on(i) {
                if choice.finished_mask & (1 << bit) != 0 {
                    shares[i] = builder.remaining_workload(i);
                }
                bit += 1;
            }
        }
        if let Some((p, amount)) = choice.partial {
            shares[p] = scaled.to_ratio(amount);
        }
        builder.push_step(shares);
    }
    builder.finish()
}

/// Memoized exhaustive search (the brute-force reference) on the scaled
/// instance.  Returns `(optimal makespan, memoized states, expansions)`.
pub(crate) fn brute_force(scaled: &ScaledInstance) -> (usize, usize, usize) {
    let mut memo: FxHashMap<PackedConfig, usize> = FxHashMap::default();
    let mut scratch = SuccScratch::default();
    let mut expansions = 0usize;
    let initial = initial_config(scaled.processors());
    let best = brute_force_dfs(scaled, &initial, &mut memo, &mut scratch, &mut expansions);
    (best, memo.len(), expansions)
}

fn brute_force_dfs(
    scaled: &ScaledInstance,
    config: &PackedConfig,
    memo: &mut FxHashMap<PackedConfig, usize>,
    scratch: &mut SuccScratch,
    expansions: &mut usize,
) -> usize {
    if is_final(scaled, config) {
        return 0;
    }
    if let Some(&v) = memo.get(config) {
        return v;
    }
    *expansions += 1;
    // Collect successors first (the scratch buffers are reused by the
    // recursive calls), then recurse.
    let mut successors: Vec<PackedConfig> = Vec::new();
    for_each_successor(scaled, config, scratch, |tmp, _choice| {
        successors.push(Rc::from(tmp));
    });
    let mut best = usize::MAX;
    for next in &successors {
        let sub = brute_force_dfs(scaled, next, memo, scratch, expansions);
        if sub != usize::MAX {
            best = best.min(sub + 1);
        }
    }
    memo.insert(config.clone(), best);
    best
}

/// Decision per DP step of the two-processor dynamic program, stored as one
/// byte in the flat table.
pub(crate) const DP_NONE: u8 = 0;
/// Both frontier jobs finish in this step.
pub(crate) const DP_BOTH: u8 = 1;
/// Only processor 0's frontier job finishes.
pub(crate) const DP_FIRST: u8 = 2;
/// Only processor 1's frontier job finishes.
pub(crate) const DP_SECOND: u8 = 3;

const UNREACHED: u32 = u32::MAX;

/// One cell of the flat two-processor DP table.
#[derive(Debug, Clone, Copy)]
struct FlatCell {
    /// Earliest step count reaching this cell (`UNREACHED` if not yet).
    t: u32,
    /// Smallest achievable frontier-remainder sum at time `t`, in units.
    r: u64,
    /// Decision taken on the best path into this cell.
    decision: u8,
}

/// The Algorithm 1 dynamic program on a flat `(n1+1)·(n2+1)` table of
/// integer cells (no hashing, no rational arithmetic, contiguous memory).
#[derive(Debug)]
pub(crate) struct ScaledDpTable {
    cells: Vec<FlatCell>,
    n1: usize,
    n2: usize,
}

impl ScaledDpTable {
    /// Runs the dense DP for a two-processor scaled instance.
    pub(crate) fn compute(scaled: &ScaledInstance) -> Self {
        assert_eq!(scaled.processors(), 2, "scaled DP needs two processors");
        let n1 = scaled.jobs_on(0);
        let n2 = scaled.jobs_on(1);
        let cap = scaled.capacity();
        let row1 = scaled.row(0);
        let row2 = scaled.row(1);
        let req1 = |c: usize| -> u64 { row1.get(c).copied().unwrap_or(0) };
        let req2 = |c: usize| -> u64 { row2.get(c).copied().unwrap_or(0) };

        let stride = n2 + 1;
        let mut cells = vec![
            FlatCell {
                t: UNREACHED,
                r: 0,
                decision: DP_NONE,
            };
            (n1 + 1) * stride
        ];
        cells[0] = FlatCell {
            t: 0,
            r: req1(0) + req2(0),
            decision: DP_NONE,
        };

        // Row-major order visits every predecessor before its successors:
        // all three transitions strictly increase (c1, c2) lexicographically.
        for c1 in 0..=n1 {
            for c2 in 0..=n2 {
                let cell = cells[c1 * stride + c2];
                if cell.t == UNREACHED || (c1 == n1 && c2 == n2) {
                    continue;
                }
                let (t, r) = (cell.t + 1, cell.r);
                if c1 < n1 && c2 == n2 {
                    relax(
                        &mut cells[(c1 + 1) * stride + c2],
                        t,
                        req1(c1 + 1),
                        DP_FIRST,
                    );
                } else if c1 == n1 {
                    relax(&mut cells[c1 * stride + c2 + 1], t, req2(c2 + 1), DP_SECOND);
                } else if r <= cap {
                    relax(
                        &mut cells[(c1 + 1) * stride + c2 + 1],
                        t,
                        req1(c1 + 1) + req2(c2 + 1),
                        DP_BOTH,
                    );
                } else {
                    let carried = r - cap;
                    relax(
                        &mut cells[(c1 + 1) * stride + c2],
                        t,
                        req1(c1 + 1) + carried,
                        DP_FIRST,
                    );
                    relax(
                        &mut cells[c1 * stride + c2 + 1],
                        t,
                        carried + req2(c2 + 1),
                        DP_SECOND,
                    );
                }
            }
        }
        ScaledDpTable { cells, n1, n2 }
    }

    /// The optimal makespan (value of the final cell).
    pub(crate) fn makespan(&self) -> usize {
        let cell = &self.cells[self.n1 * (self.n2 + 1) + self.n2];
        assert!(cell.t != UNREACHED, "final DP cell is always reachable");
        cell.t as usize
    }

    /// Back-traces the decisions from the final cell to the origin, in
    /// forward (replay) order.
    pub(crate) fn decisions(&self) -> Vec<u8> {
        let stride = self.n2 + 1;
        let mut decisions = Vec::with_capacity(self.makespan());
        let (mut c1, mut c2) = (self.n1, self.n2);
        loop {
            let cell = &self.cells[c1 * stride + c2];
            match cell.decision {
                DP_NONE => break,
                DP_BOTH => {
                    c1 -= 1;
                    c2 -= 1;
                }
                DP_FIRST => c1 -= 1,
                DP_SECOND => c2 -= 1,
                other => unreachable!("invalid DP decision byte {other}"),
            }
            decisions.push(cell.decision);
        }
        assert_eq!((c1, c2), (0, 0), "back-trace must reach the origin");
        decisions.reverse();
        decisions
    }
}

#[inline]
fn relax(cell: &mut FlatCell, t: u32, r: u64, decision: u8) {
    if cell.t == UNREACHED || t < cell.t || (t == cell.t && r < cell.r) {
        *cell = FlatCell { t, r, decision };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::InstanceBuilder;

    fn scaled(rows: &[&[i64]]) -> ScaledInstance {
        ScaledInstance::try_new(&Instance::unit_from_percentages(rows)).unwrap()
    }

    #[test]
    fn successor_streaming_matches_manual_enumeration() {
        let s = scaled(&[&[60, 40], &[60, 40]]);
        let init = initial_config(2);
        let mut scratch = SuccScratch::default();
        let mut seen = Vec::new();
        for_each_successor(&s, &init, &mut scratch, |cfg, choice| {
            seen.push((cfg.to_vec(), choice));
        });
        // 60 + 60 > 100: either frontier may finish, the other carries 40.
        assert_eq!(seen.len(), 2);
        for (cfg, choice) in &seen {
            assert_eq!(choice.finished_mask.count_ones(), 1);
            let (p, amount) = choice.partial.unwrap();
            assert_eq!(s.to_ratio(amount), Ratio::from_percent(40));
            assert_eq!(cfg[2 + p], amount);
        }
    }

    #[test]
    fn all_fit_step_finishes_everything() {
        let s = scaled(&[&[30], &[30], &[40]]);
        let init = initial_config(3);
        let mut scratch = SuccScratch::default();
        let mut count = 0;
        for_each_successor(&s, &init, &mut scratch, |cfg, choice| {
            count += 1;
            assert_eq!(choice.finished_mask, 0b111);
            assert!(choice.partial.is_none());
            assert!(is_final(&s, cfg));
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn domination_is_reflexive_and_ordered() {
        // completed = [2, 1] / spent = [0, 30] dominates [1, 1] / [90, 10].
        let a = [2u64, 1, 0, 30];
        let b = [1u64, 1, 90, 10];
        assert!(dominates(2, &a, &a));
        assert!(dominates(2, &a, &b));
        assert!(!dominates(2, &b, &a));
    }

    #[test]
    fn search_solves_known_instances() {
        let s = scaled(&[&[100], &[100], &[100]]);
        assert_eq!(search_makespan(&s, &run_search(&s)), 3);
        let s = scaled(&[&[50, 20], &[30, 30], &[20, 50]]);
        assert_eq!(search_makespan(&s, &run_search(&s)), 2);
        let s = scaled(&[&[50, 50, 50, 50], &[100], &[100]]);
        assert_eq!(search_makespan(&s, &run_search(&s)), 4);
    }

    #[test]
    fn empty_instance_is_final_immediately() {
        let inst = InstanceBuilder::new()
            .empty_processor()
            .empty_processor()
            .build();
        let s = ScaledInstance::try_new(&inst).unwrap();
        let rounds = run_search(&s);
        assert_eq!(search_makespan(&s, &rounds), 0);
        assert_eq!(search_schedule(&inst, &s, &rounds).num_steps(), 0);
    }

    #[test]
    fn flat_dp_matches_search_on_two_processors() {
        for rows in [
            &[&[60i64, 40][..], &[60, 40][..]][..],
            &[&[100, 1, 100][..], &[1, 100, 1][..]][..],
            &[&[55, 45, 35][..], &[65, 75, 85][..]][..],
        ] {
            let s = scaled(rows);
            let dp = ScaledDpTable::compute(&s);
            assert_eq!(dp.makespan(), search_makespan(&s, &run_search(&s)));
            assert_eq!(dp.decisions().len(), dp.makespan());
        }
    }

    #[test]
    fn brute_force_agrees_with_search() {
        for rows in [
            &[&[50i64, 20][..], &[30, 30][..], &[20, 50][..]][..],
            &[&[90, 5][..], &[80, 15][..], &[70, 25][..]][..],
        ] {
            let s = scaled(rows);
            let (best, states, expansions) = brute_force(&s);
            assert_eq!(best, search_makespan(&s, &run_search(&s)));
            assert!(states > 0);
            assert!(expansions > 0);
        }
    }
}
