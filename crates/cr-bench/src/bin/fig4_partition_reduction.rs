//! E4 — regenerates Figure 4 / Theorem 4 / Corollary 1: the Partition
//! reduction maps YES-instances to CRSharing instances of optimal makespan 4
//! and NO-instances to makespan ≥ 5.

use cr_algos::{brute_force_makespan, GreedyBalance, RoundRobin, Scheduler};
use cr_bench::{markdown_table, ExperimentRow};
use cr_instances::reduction::{
    is_yes_instance, partition_to_crsharing, solve_partition, yes_certificate_schedule,
    PartitionReduction,
};

fn main() {
    println!("E4 / Figure 4 — Partition ≤ₚ CRSharing (Theorem 4, Corollary 1)\n");

    let cases: Vec<Vec<u64>> = vec![
        vec![2, 2, 3, 3],
        vec![2, 3, 4, 5, 6],
        vec![4, 4, 4, 4],
        vec![2, 2, 3, 5],
        vec![3, 3, 3, 5],
        vec![1, 2, 4, 5],
    ];

    let mut rows = Vec::new();
    for values in &cases {
        let yes = is_yes_instance(values);
        let reduction = partition_to_crsharing(values);
        let opt = brute_force_makespan(&reduction.instance);
        let expected = if yes {
            PartitionReduction::YES_MAKESPAN
        } else {
            PartitionReduction::NO_MAKESPAN
        };
        if yes {
            assert_eq!(opt, expected, "YES-instances must have makespan exactly 4");
            // The Figure 4a certificate schedule achieves the optimum.
            let membership = solve_partition(values).expect("YES instance");
            let certificate = yes_certificate_schedule(&reduction, &membership);
            assert_eq!(certificate.makespan(&reduction.instance).unwrap(), 4);
        } else {
            assert!(opt >= expected, "NO-instances must need at least 5 steps");
        }
        let label = format!("{values:?} ({})", if yes { "YES" } else { "NO" });
        rows.push(ExperimentRow::new(
            label.clone(),
            "brute-force optimum",
            &reduction.instance,
            opt,
            expected,
            true,
        ));
        rows.push(ExperimentRow::new(
            label.clone(),
            "GreedyBalance",
            &reduction.instance,
            GreedyBalance::new().makespan(&reduction.instance),
            opt,
            true,
        ));
        rows.push(ExperimentRow::new(
            label,
            "RoundRobin",
            &reduction.instance,
            RoundRobin::new().makespan(&reduction.instance),
            opt,
            true,
        ));
    }
    println!("{}", markdown_table("Reduced instances", &rows));
    println!(
        "paper: YES ⟺ optimal makespan 4, NO ⟹ ≥ 5; hence no polynomial algorithm can\n\
         approximate CRSharing within a factor better than 5/4 unless P = NP (Corollary 1)."
    );
}
