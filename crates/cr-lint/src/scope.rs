//! Lightweight scope analysis over the token stream: which tokens live in
//! test code, and which live inside a function whose doc comment carries a
//! `# Panics` contract.
//!
//! The tracker is a single forward pass maintaining a brace-scope stack.
//! Between two statement boundaries it accumulates *pending* item context —
//! attributes (`#[cfg(test)]`, `#[test]`), doc comments, and the `mod`/`fn`
//! keywords — and folds that context into the scope opened by the next
//! `{`. This is exactly enough structure to answer the two questions the
//! rules ask, without building a syntax tree:
//!
//! * **test code**: inside a `#[cfg(test)]`-attributed item (typically
//!   `mod tests`) or a `#[test]` function. `#[cfg(not(test))]` and other
//!   negated forms do *not* count as test code.
//! * **documented panics**: inside a `fn` whose immediately preceding doc
//!   comment run contains a `# Panics` section — the rustdoc convention
//!   this repository uses for deliberate, contract-level panics.

use crate::lexer::{Token, TokenKind};

/// Per-token context produced by [`analyze`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Ctx {
    /// Brace nesting depth (0 = file level).
    pub depth: u32,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Inside a `fn` documented with a `# Panics` section.
    pub in_panics_doc_fn: bool,
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    test: bool,
    panics_fn: bool,
}

/// Pending item context accumulated since the last statement boundary.
#[derive(Debug, Default)]
struct Pending {
    attr_test: bool,
    doc_panics: bool,
    saw_fn: bool,
}

/// Computes one [`Ctx`] per token of `tokens`.
#[must_use]
pub fn analyze(tokens: &[Token]) -> Vec<Ctx> {
    let mut ctx = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = vec![Scope {
        test: false,
        panics_fn: false,
    }];
    let mut pending = Pending::default();

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        let top = *stack.last().expect("root scope never pops");

        // Doc comments feed the `# Panics` detector; they are context
        // tokens themselves.
        if tok.is_comment() {
            let text = &tok.text;
            let is_doc =
                text.starts_with("///") || text.starts_with("//!") || text.starts_with("/**");
            if is_doc && text.contains("# Panics") {
                pending.doc_panics = true;
            }
            ctx.push(current(&stack, top));
            i += 1;
            continue;
        }

        // Attributes: `#[ … ]` — scan the bracketed group for `test`
        // (rejecting negated `not(test)` forms wholesale).
        if tok.is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut words: Vec<&str> = Vec::new();
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident {
                    words.push(t.text.as_str());
                }
                j += 1;
            }
            if words.contains(&"test") && !words.contains(&"not") {
                pending.attr_test = true;
            }
            for _ in i..=j.min(tokens.len() - 1) {
                ctx.push(current(&stack, top));
            }
            i = j + 1;
            continue;
        }

        match tok.kind {
            TokenKind::Ident if tok.text == "fn" => {
                pending.saw_fn = true;
                ctx.push(current(&stack, top));
            }
            TokenKind::Punct('{') => {
                stack.push(Scope {
                    test: top.test || pending.attr_test,
                    panics_fn: top.panics_fn || (pending.saw_fn && pending.doc_panics),
                });
                pending = Pending::default();
                // The brace belongs to the scope it opens.
                let new_top = *stack.last().expect("just pushed");
                ctx.push(Ctx {
                    depth: stack.len() as u32 - 1,
                    in_test: new_top.test,
                    in_panics_doc_fn: new_top.panics_fn,
                });
            }
            TokenKind::Punct('}') => {
                ctx.push(current(&stack, top));
                if stack.len() > 1 {
                    stack.pop();
                }
                pending = Pending::default();
            }
            TokenKind::Punct(';') => {
                ctx.push(current(&stack, top));
                pending = Pending::default();
            }
            _ => ctx.push(current(&stack, top)),
        }
        i += 1;
    }
    ctx
}

fn current(stack: &[Scope], top: Scope) -> Ctx {
    Ctx {
        depth: stack.len() as u32 - 1,
        in_test: top.test,
        in_panics_doc_fn: top.panics_fn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str, word: &str) -> Ctx {
        let tokens = lex(src);
        let ctx = analyze(&tokens);
        let idx = tokens
            .iter()
            .position(|t| t.is_ident(word))
            .unwrap_or_else(|| panic!("no token `{word}`"));
        ctx[idx]
    }

    #[test]
    fn cfg_test_mod_marks_contents() {
        let src = "fn prod() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }";
        assert!(!ctx_of(src, "a").in_test);
        assert!(ctx_of(src, "b").in_test);
    }

    #[test]
    fn test_attr_fn_marks_contents() {
        let src = "#[test]\nfn t() { probe(); }\nfn prod() { other(); }";
        assert!(ctx_of(src, "probe").in_test);
        assert!(!ctx_of(src, "other").in_test);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nmod shipping { fn f() { probe(); } }";
        assert!(!ctx_of(src, "probe").in_test);
    }

    #[test]
    fn panics_doc_marks_fn_body() {
        let src = "/// Does things.\n///\n/// # Panics\n/// When x.\nfn f() { probe(); }\nfn g() { other(); }";
        assert!(ctx_of(src, "probe").in_panics_doc_fn);
        assert!(!ctx_of(src, "other").in_panics_doc_fn);
    }

    #[test]
    fn semicolon_clears_pending_attrs() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { probe(); }";
        assert!(!ctx_of(src, "probe").in_test);
    }
}
