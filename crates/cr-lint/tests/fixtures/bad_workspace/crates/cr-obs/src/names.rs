//! Fixture metric and span vocabulary with deliberate catalog drift:
//! `optm.rounds` is declared here but missing from the catalog, and the
//! catalog promises a `ghost.metric` that does not exist.

/// Every fixture metric name, as plain literals for `vocab_sync`.
pub const METRIC_NAMES: [&str; 2] = ["optm.rounds", "serve.batches"];

/// Every fixture span name, as plain literals for `vocab_sync`.
pub const SPAN_NAMES: [&str; 1] = ["sim.run"];
