//! The scaled-integer engine behind the exact solvers.
//!
//! `opt_two`, `opt_m` and `brute_force` all expose `Ratio`-based public APIs
//! but delegate their hot search loops to this module, which works on a
//! [`ScaledInstance`]: requirements as plain `u64` units with resource
//! capacity `D` (the denominators' LCM).  Compared to the retained rational
//! reference paths this removes
//!
//! * every gcd: sums, capacity tests and leftover computations are single
//!   integer ops;
//! * the `Config { Vec<usize>, Vec<Ratio> }` search key: configurations are
//!   packed into one flat `Arc<[u64]>` of `2m` words (`completed` counts,
//!   then `spent` units) and deduplicated through an `FxHashSet` probed with
//!   a borrowed slice, so duplicate successors allocate nothing;
//! * per-call successor `Vec`s: [`for_each_successor`] streams successors
//!   through a callback, filling caller-provided [`SuccScratch`] buffers.
//!
//! Successor generation runs on the width-independent pruned DFS enumerator
//! shared with the rational search ([`crate::subset_enum`]), so any number
//! of simultaneously active processors is supported — the pre-ISSUE-4
//! engine asserted `k < 32` because it scanned `1u32 << k` subset masks.
//!
//! [`run_search`] expands each round in parallel: the previous round's
//! nodes are fanned out with rayon in contiguous chunks, each chunk
//! produces a locally deduplicated shard, and the shards are merged in
//! chunk order — exactly the order a serial scan would have produced — so
//! parallel runs are byte-identical to serial ones (the same determinism
//! contract the experiment pipeline documents).  A round that outgrows the
//! `u32` parent-index headroom surfaces as a structured [`SearchError`]
//! instead of a panic; callers fall back to the rational reference search.
//!
//! The engine is internal; its correctness contract is "identical makespans
//! to the rational reference solvers", enforced by unit tests here and by
//! the `proptest_scaled` cross-check suite.

use crate::subset_enum::{for_each_choice_cancellable, EnumScratch, CHOICE_CHECK_STRIDE};
use cr_core::{
    CancelGate, CancelReason, CancelToken, Instance, Ratio, ScaledInstance, Schedule,
    ScheduleBuilder,
};
use rayon::prelude::*;
use rustc_hash::FxHashSet;
use std::fmt;
use std::sync::Arc;

/// A packed configuration: `2m` words, `[completed_0, …, completed_{m-1},
/// spent_0, …, spent_{m-1}]` with `spent` in units.
///
/// `Arc` (not `Rc`) so round expansion can fan configurations out across
/// rayon workers.
pub(crate) type PackedConfig = Arc<[u64]>;

/// Structured failure of the configuration search.  The search is total for
/// every realistic instance; this exists so the single capacity limit left
/// in the engine — parent back-pointers are `u32` — degrades into a
/// recoverable error (callers fall back to the rational search) instead of
/// a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// A search round holds more nodes than `u32` parent indices can
    /// address.
    RoundTooLarge {
        /// The 0-based round whose node count overflowed.
        round: usize,
        /// Its node count.
        nodes: usize,
    },
    /// The search's [`CancelToken`] fired (deadline passed or the request
    /// was cancelled externally) and the loops stopped cooperatively.
    Cancelled {
        /// Why the token fired.
        reason: CancelReason,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::RoundTooLarge { round, nodes } => write!(
                f,
                "configuration-search round {round} holds {nodes} nodes, \
                 exceeding the u32 parent-index headroom"
            ),
            SearchError::Cancelled { reason } => {
                write!(f, "configuration search stopped: {reason}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// The initial configuration: nothing completed, nothing spent.
pub(crate) fn initial_config(m: usize) -> PackedConfig {
    Arc::from(vec![0u64; 2 * m])
}

/// Whether every processor has completed all of its jobs.
pub(crate) fn is_final(scaled: &ScaledInstance, config: &[u64]) -> bool {
    (0..scaled.processors()).all(|i| config[i] as usize >= scaled.jobs_on(i))
}

/// `true` if `a` dominates `b` (component-wise at least as far, in the
/// Lemma 4 order: more jobs completed, or equally many and at least as much
/// spent on the frontier job).
pub(crate) fn dominates(m: usize, a: &[u64], b: &[u64]) -> bool {
    (0..m).all(|i| a[i] > b[i] || (a[i] == b[i] && a[m + i] >= b[m + i]))
}

/// The decision producing a successor: which of the parent's active
/// processors complete and which processor, if any, receives the leftover
/// units without completing.  Width-independent (any number of active
/// processors) and cheap to clone across rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScaledChoice {
    /// Processors whose frontier job completes in this step.
    pub finished: Arc<[u32]>,
    /// Processor granted the leftover, with the amount in units.
    pub partial: Option<(u32, u64)>,
}

impl ScaledChoice {
    fn initial() -> Self {
        ScaledChoice {
            finished: Arc::from([]),
            partial: None,
        }
    }
}

/// Reusable scratch buffers for successor generation (one per search chunk,
/// not one per expansion).
#[derive(Debug, Default)]
pub(crate) struct SuccScratch {
    active: Vec<usize>,
    remaining: Vec<u64>,
    tmp: Vec<u64>,
    finished_procs: Vec<u32>,
    choices: EnumScratch,
}

/// Streams all successor configurations of `config` reachable in one
/// normalized (non-wasting, progressive) time step to `emit`, together with
/// the finished processors and the partial receiver of each step decision.
/// The slices handed to `emit` live in `scratch` — callers that keep a
/// successor must copy them out (typically only after a memo-table probe
/// misses).
///
/// Runs on the shared pruned DFS enumerator (`crate::subset_enum`), so the
/// active-processor count is unbounded and unit sums are overflow-checked.
/// Mirrors the rational `opt_m::successors` step enumeration exactly.
#[cfg(test)]
pub(crate) fn for_each_successor(
    scaled: &ScaledInstance,
    config: &[u64],
    scratch: &mut SuccScratch,
    emit: impl FnMut(&[u64], &[u32], Option<(u32, u64)>),
) {
    let mut gate = CancelToken::never().gate(CHOICE_CHECK_STRIDE);
    for_each_successor_cancellable(scaled, config, scratch, &mut gate, emit)
        .expect("a never token cannot fire");
}

/// [`for_each_successor`] with cooperative cancellation: the underlying
/// choice DFS consults `gate`, so even a single configuration with an
/// exponentially large choice space stops promptly.  Successors already
/// emitted before the cut are not unwound.
pub(crate) fn for_each_successor_cancellable(
    scaled: &ScaledInstance,
    config: &[u64],
    scratch: &mut SuccScratch,
    gate: &mut CancelGate,
    mut emit: impl FnMut(&[u64], &[u32], Option<(u32, u64)>),
) -> Result<(), CancelReason> {
    let m = scaled.processors();
    let SuccScratch {
        active,
        remaining,
        tmp,
        finished_procs,
        choices,
    } = scratch;
    active.clear();
    remaining.clear();
    // lint: allow(cancel_coverage) — bounded: one pass over the m processors per expansion; the choice enumeration below is gated
    for i in 0..m {
        let done = config[i] as usize;
        if done < scaled.jobs_on(i) {
            active.push(i);
            remaining.push(scaled.unit_req(i, done) - config[m + i]);
        }
    }
    if active.is_empty() {
        return Ok(());
    }
    for_each_choice_cancellable(
        remaining,
        scaled.capacity(),
        choices,
        gate,
        &mut |finished, partial| {
            tmp.clear();
            tmp.extend_from_slice(config);
            finished_procs.clear();
            // lint: allow(cancel_coverage) — bounded: `finished` is a subset of the <= m active processors
            for &entry in finished {
                let p = active[entry as usize];
                // Processor indices fit u32: ScaledInstance stores u32 offsets.
                // lint: allow(panic_hygiene) — processor indices stay below m, which ScaledInstance already stores as u32 offsets
                finished_procs.push(u32::try_from(p).expect("processor index fits u32"));
                tmp[p] += 1;
                tmp[m + p] = 0;
            }
            let partial = partial.map(|(entry, amount)| {
                let p = active[entry as usize];
                // spent + leftover stays below the frontier requirement ≤ D.
                tmp[m + p] += amount;
                // lint: allow(panic_hygiene) — processor indices stay below m, which ScaledInstance already stores as u32 offsets
                (u32::try_from(p).expect("processor index fits u32"), amount)
            });
            emit(tmp, finished_procs, partial);
        },
    )
}

/// One node of the round-by-round configuration search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScaledNode {
    /// The configuration this node represents.
    pub config: PackedConfig,
    /// Index of the parent node in the previous round (`u32::MAX` for the
    /// initial node).
    pub parent: u32,
    /// Decision that produced this node from its parent.
    pub choice: ScaledChoice,
}

/// Expands one contiguous chunk of the previous round into its successor
/// shard: nodes in parent order, locally deduplicated (first representative
/// wins, matching what a serial scan of the same chunk keeps).
fn expand_chunk(
    scaled: &ScaledInstance,
    base: u32,
    nodes: &[ScaledNode],
    scratch: &mut SuccScratch,
    token: &CancelToken,
) -> Result<Vec<ScaledNode>, CancelReason> {
    let mut gate = token.gate(CHOICE_CHECK_STRIDE);
    let mut local_seen: FxHashSet<PackedConfig> = FxHashSet::default();
    let mut out: Vec<ScaledNode> = Vec::new();
    for (offset, node) in nodes.iter().enumerate() {
        // lint: allow(panic_hygiene) — round sizes were checked against the u32 parent-index headroom when the round was admitted
        let parent = base + u32::try_from(offset).expect("chunk offset fits u32");
        for_each_successor_cancellable(
            scaled,
            &node.config,
            scratch,
            &mut gate,
            |tmp, finished, partial| {
                // Exact duplicate within the shard: keep the first
                // representative.  Probing with the borrowed scratch slice means
                // duplicates cost no allocation at all.
                if local_seen.contains(tmp) {
                    return;
                }
                let config: PackedConfig = Arc::from(tmp);
                local_seen.insert(config.clone());
                out.push(ScaledNode {
                    config,
                    parent,
                    choice: ScaledChoice {
                        finished: Arc::from(finished),
                        partial,
                    },
                });
            },
        )?;
    }
    Ok(out)
}

/// Runs the Algorithm 2 configuration search on the scaled instance and
/// returns, per round, the surviving (deduplicated, non-dominated) nodes.
/// The search stops after the first round containing a final configuration.
///
/// Round expansion is rayon-parallel with byte-identical output to a serial
/// run (see the module docs); [`run_search_chunked`] exposes the chunk size
/// so tests can pin both extremes.
///
/// # Errors
///
/// [`SearchError::RoundTooLarge`] when a round outgrows the `u32`
/// parent-index headroom; callers fall back to the rational search.
pub(crate) fn run_search(scaled: &ScaledInstance) -> Result<Vec<Vec<ScaledNode>>, SearchError> {
    run_search_chunked(scaled, None)
}

/// [`run_search`] with a hard round cap (the solver layer's `max_rounds`
/// budget; `Ok(None)` when the cap is reached before a final configuration
/// appears, so a deliberately over-budget request costs at most `cap`
/// rounds) and cooperative cancellation: every long loop of the search
/// (round expansion, the choice DFS, the dominance filter) consults
/// `token`, so the search stops within one check interval of the token
/// firing, surfacing [`SearchError::Cancelled`].
pub(crate) fn run_search_cancellable(
    scaled: &ScaledInstance,
    round_cap: Option<usize>,
    token: &CancelToken,
) -> Result<Option<Vec<Vec<ScaledNode>>>, SearchError> {
    run_search_impl(scaled, None, round_cap, token)
}

/// [`run_search`] with an explicit expansion chunk size (`None` derives one
/// chunk per rayon worker).  Output is independent of the chunk size — the
/// determinism property tests compare per-node chunks against a single
/// serial chunk.
pub(crate) fn run_search_chunked(
    scaled: &ScaledInstance,
    chunk_size: Option<usize>,
) -> Result<Vec<Vec<ScaledNode>>, SearchError> {
    run_search_impl(scaled, chunk_size, None, &CancelToken::never())
        // lint: allow(panic_hygiene) — with no round cap the search only reports None when capped, and a never-token cannot fire
        .map(|rounds| rounds.expect("uncapped search always reaches a final configuration"))
}

/// How many dominance-filter candidates pass between token checks: one
/// candidate costs a kept-prefix scan of slice compares (microseconds on
/// the largest observed rounds), so this stride checks far more often than
/// the [`cr_core::cancel::CHECK_INTERVAL_MS`] contract requires.
const FILTER_CHECK_STRIDE: u32 = 64;

/// The configuration search with all knobs: expansion chunk size, round
/// cap and cancellation.  `Ok(None)` is only produced when `round_cap` cuts
/// the search off.
fn run_search_impl(
    scaled: &ScaledInstance,
    chunk_size: Option<usize>,
    round_cap: Option<usize>,
    token: &CancelToken,
) -> Result<Option<Vec<Vec<ScaledNode>>>, SearchError> {
    let _search_span = cr_obs::Span::enter(cr_obs::names::SPAN_OPTM_SEARCH);
    let cancelled = |reason: CancelReason| SearchError::Cancelled { reason };
    let m = scaled.processors();
    let initial = initial_config(m);
    let mut rounds: Vec<Vec<ScaledNode>> = vec![vec![ScaledNode {
        config: initial.clone(),
        parent: u32::MAX,
        choice: ScaledChoice::initial(),
    }]];
    if is_final(scaled, &initial) {
        return Ok(Some(rounds));
    }

    // Below this round size the fan-out cannot win: the vendored rayon
    // spawns one OS thread per chunk, which costs more than expanding a
    // few hundred nodes serially (and the search may nest under the
    // experiment pipeline's own worker fan-out).  An explicit `chunk_size`
    // bypasses the cutoff so the determinism tests can force tiny chunks.
    const MIN_PARALLEL_ROUND: usize = 256;

    let mut serial_scratch = SuccScratch::default();
    let max_rounds = scaled.total_jobs() + 1;
    let round_limit = round_cap.map_or(max_rounds, |cap| cap.min(max_rounds));
    let mut found_final = false;
    for _round in 0..round_limit {
        token.check().map_err(cancelled)?;
        let _round_span = cr_obs::Span::enter(cr_obs::names::SPAN_OPTM_ROUND);
        crate::obs::optm_rounds().inc();
        // Invariant: `prev` was size-checked against the u32 parent-index
        // headroom when it was produced (the initial round has one node).
        // lint: allow(panic_hygiene) — `rounds` is seeded with the initial round before this loop
        let prev = rounds.last().expect("at least the initial round");
        let chunk = chunk_size
            .unwrap_or_else(|| prev.len().div_ceil(rayon::current_num_threads()))
            .max(1);

        let serial =
            chunk >= prev.len() || (chunk_size.is_none() && prev.len() < MIN_PARALLEL_ROUND);
        let next: Vec<ScaledNode> = if serial {
            // One chunk: its local dedup already is the global dedup, so the
            // merge (and the parallel plumbing) would be pure overhead.
            // Small instances take this path on every round.
            expand_chunk(scaled, 0, prev, &mut serial_scratch, token).map_err(cancelled)?
        } else {
            // Fan the round out chunk-wise; each shard arrives locally
            // deduped and in parent order, and the chunks come back in
            // input order, so the sequential merge below sees successors in
            // exactly the order a serial scan would produce them.
            let chunks: Vec<(u32, &[ScaledNode])> = prev
                .chunks(chunk)
                .enumerate()
                .map(|(ci, slice)| {
                    (
                        // lint: allow(panic_hygiene) — round sizes were checked against the u32 parent-index headroom when the round was admitted
                        u32::try_from(ci * chunk).expect("round size fits u32"),
                        slice,
                    )
                })
                .collect();
            let shards: Vec<Result<Vec<ScaledNode>, CancelReason>> = chunks
                .par_iter()
                .map(|&(base, slice)| {
                    let mut scratch = SuccScratch::default();
                    expand_chunk(scaled, base, slice, &mut scratch, token)
                })
                .collect();

            let mut seen: FxHashSet<PackedConfig> = FxHashSet::default();
            let mut merged: Vec<ScaledNode> = Vec::new();
            for shard in shards {
                // A cancelled shard aborts the whole round: the other shards
                // observed the same token and bailed within one stride.
                for node in shard.map_err(cancelled)? {
                    // Cross-shard duplicate: the first shard (lowest parent
                    // index) keeps its representative, as in a serial scan.
                    if seen.contains(&*node.config) {
                        continue;
                    }
                    seen.insert(node.config.clone());
                    merged.push(node);
                }
            }
            merged
        };

        // The structured-error gate: this merged round becomes the next
        // round's parent space, so its size must fit the u32 back-pointers
        // *before* anything indexes it.  (The dominance filter below only
        // shrinks it.)
        if u32::try_from(next.len()).is_err() {
            return Err(SearchError::RoundTooLarge {
                round: rounds.len(),
                nodes: next.len(),
            });
        }

        // Remove dominated configurations (Lemma 4).  The surviving set is
        // the unique maximal antichain of the domination order, so it can be
        // computed with one forward pass over candidates sorted by
        // (Σ completed, Σ spent) descending: `a` dominates `b` implies
        // Σc(a) ≥ Σc(b), and on equality Σs(a) ≥ Σs(b), so every dominator
        // precedes what it dominates and only the kept prefix must be
        // checked — O(candidates · survivors) integer slice compares instead
        // of O(candidates²).  Spent sums are accumulated in u128: with the
        // relaxed 2·D capacity headroom an m-fold unit sum may exceed u64.
        let mut order: Vec<(u64, u128, u32)> = next
            .iter()
            .enumerate()
            .map(|(idx, node)| {
                let sum_completed: u64 = node.config[..m].iter().sum();
                let sum_spent: u128 = node.config[m..].iter().map(|&s| u128::from(s)).sum();
                (
                    sum_completed,
                    sum_spent,
                    // lint: allow(panic_hygiene) — the surrounding round was size-checked against u32 headroom, so `idx` fits
                    u32::try_from(idx).expect("round size gated above"),
                )
            })
            .collect();
        order.sort_unstable_by(|a, b| b.cmp(a));
        let mut kept: Vec<u32> = Vec::with_capacity(order.len());
        let mut filter_gate = token.gate(FILTER_CHECK_STRIDE);
        for &(_, _, idx) in &order {
            filter_gate.tick().map_err(cancelled)?;
            let candidate = &next[idx as usize].config;
            if !kept
                .iter()
                .any(|&k| dominates(m, &next[k as usize].config, candidate))
            {
                kept.push(idx);
            }
        }
        let filtered: Vec<ScaledNode> = kept
            .into_iter()
            .map(|idx| next[idx as usize].clone())
            .collect();
        crate::obs::optm_round_candidates().add(crate::obs::delta(next.len()));
        crate::obs::optm_round_survivors().add(crate::obs::delta(filtered.len()));

        let done = filtered.iter().any(|n| is_final(scaled, &n.config));
        rounds.push(filtered);
        if done {
            found_final = true;
            break;
        }
    }
    if found_final {
        Ok(Some(rounds))
    } else {
        // Only a round cap can leave the search unfinished: the uncapped
        // limit of `total_jobs + 1` rounds always suffices (every normalized
        // step completes at least one job).
        debug_assert!(round_cap.is_some(), "uncapped search must terminate");
        Ok(None)
    }
}

/// The optimal makespan from a finished configuration search.
pub(crate) fn search_makespan(scaled: &ScaledInstance, rounds: &[Vec<ScaledNode>]) -> usize {
    if is_final(scaled, &rounds[0][0].config) {
        return 0;
    }
    let last = rounds.len() - 1;
    assert!(
        rounds[last].iter().any(|n| is_final(scaled, &n.config)),
        "configuration search ended without reaching a final configuration"
    );
    last
}

/// Reconstructs an optimal schedule from a finished configuration search by
/// back-tracing the winner and replaying the per-step decisions through the
/// exact `Ratio`-based [`ScheduleBuilder`] (the scaled units convert back
/// losslessly via [`ScaledInstance::to_ratio`]).
pub(crate) fn search_schedule(
    instance: &Instance,
    scaled: &ScaledInstance,
    rounds: &[Vec<ScaledNode>],
) -> Schedule {
    let last = rounds.len() - 1;
    if last == 0 {
        return Schedule::empty();
    }
    let winner = rounds[last]
        .iter()
        .position(|n| is_final(scaled, &n.config))
        // lint: allow(panic_hygiene) — `last` is set only once its round contains a final configuration
        .expect("search ended on a final configuration");

    // Walk back through the rounds, collecting the per-step decisions.  The
    // choices carry explicit processor indices, so no parent configuration
    // needs to be re-derived during replay.
    let mut choices: Vec<ScaledChoice> = Vec::with_capacity(last);
    let mut idx = winner;
    // lint: allow(cancel_coverage) — bounded: the back-trace visits one node per round of the already-gated search
    for round in (1..=last).rev() {
        let node = &rounds[round][idx];
        choices.push(node.choice.clone());
        idx = node.parent as usize;
    }
    choices.reverse();

    let m = scaled.processors();
    let mut builder = ScheduleBuilder::new(instance);
    // lint: allow(cancel_coverage) — bounded: replays one already-gated search round per step
    for choice in choices {
        let mut shares = vec![Ratio::ZERO; m];
        // lint: allow(cancel_coverage) — bounded: a choice finishes at most m processors
        for &p in choice.finished.iter() {
            shares[p as usize] = builder.remaining_workload(p as usize);
        }
        if let Some((p, amount)) = choice.partial {
            shares[p as usize] = scaled.to_ratio(amount);
        }
        builder.push_step(shares);
    }
    builder.finish()
}

/// Memoized exhaustive search (the brute-force reference) on the scaled
/// instance.  Returns `(optimal makespan, memoized states, expansions)`.
#[cfg(test)]
pub(crate) fn brute_force(scaled: &ScaledInstance) -> (usize, usize, usize) {
    brute_force_cancellable(scaled, &CancelToken::never()).expect("a never token cannot fire")
}

/// [`brute_force`] with cooperative cancellation: the memoized DFS consults
/// `token` on every expansion (and inside the choice enumeration), so even
/// an exponential search stops within one check stride of the token firing.
pub(crate) fn brute_force_cancellable(
    scaled: &ScaledInstance,
    token: &CancelToken,
) -> Result<(usize, usize, usize), CancelReason> {
    token.check()?;
    let mut memo: rustc_hash::FxHashMap<PackedConfig, usize> = rustc_hash::FxHashMap::default();
    let mut scratch = SuccScratch::default();
    let mut expansions = 0usize;
    let mut gate = token.gate(CHOICE_CHECK_STRIDE);
    let initial = initial_config(scaled.processors());
    let best = brute_force_dfs(
        scaled,
        &initial,
        &mut memo,
        &mut scratch,
        &mut gate,
        &mut expansions,
    )?;
    Ok((best, memo.len(), expansions))
}

fn brute_force_dfs(
    scaled: &ScaledInstance,
    config: &PackedConfig,
    memo: &mut rustc_hash::FxHashMap<PackedConfig, usize>,
    scratch: &mut SuccScratch,
    gate: &mut CancelGate,
    expansions: &mut usize,
) -> Result<usize, CancelReason> {
    if is_final(scaled, config) {
        return Ok(0);
    }
    if let Some(&v) = memo.get(config) {
        return Ok(v);
    }
    gate.tick()?;
    *expansions += 1;
    // Collect successors first (the scratch buffers are reused by the
    // recursive calls), then recurse.
    let mut successors: Vec<PackedConfig> = Vec::new();
    for_each_successor_cancellable(scaled, config, scratch, gate, |tmp, _finished, _partial| {
        successors.push(Arc::from(tmp));
    })?;
    let mut best = usize::MAX;
    for next in &successors {
        let sub = brute_force_dfs(scaled, next, memo, scratch, gate, expansions)?;
        if sub != usize::MAX {
            best = best.min(sub + 1);
        }
    }
    memo.insert(config.clone(), best);
    Ok(best)
}

/// Decision per DP step of the two-processor dynamic program, stored as one
/// byte in the flat table.
pub(crate) const DP_NONE: u8 = 0;
/// Both frontier jobs finish in this step.
pub(crate) const DP_BOTH: u8 = 1;
/// Only processor 0's frontier job finishes.
pub(crate) const DP_FIRST: u8 = 2;
/// Only processor 1's frontier job finishes.
pub(crate) const DP_SECOND: u8 = 3;

const UNREACHED: u32 = u32::MAX;

/// One cell of the flat two-processor DP table.
#[derive(Debug, Clone, Copy)]
struct FlatCell {
    /// Earliest step count reaching this cell (`UNREACHED` if not yet).
    t: u32,
    /// Smallest achievable frontier-remainder sum at time `t`, in units.
    /// Bounded by `2·D` (one requirement plus one carried leftover) — the
    /// exact headroom [`ScaledInstance::try_new`] reserves.
    r: u64,
    /// Decision taken on the best path into this cell.
    decision: u8,
}

/// The Algorithm 1 dynamic program on a flat `(n1+1)·(n2+1)` table of
/// integer cells (no hashing, no rational arithmetic, contiguous memory).
#[derive(Debug)]
pub(crate) struct ScaledDpTable {
    cells: Vec<FlatCell>,
    n1: usize,
    n2: usize,
}

/// How many DP cells between token checks: cells are a handful of integer
/// ops each, so the gate overhead must be amortized further than the
/// successor filter's stride.
const DP_CHECK_STRIDE: u32 = 4096;

impl ScaledDpTable {
    /// Runs the dense DP for a two-processor scaled instance.
    pub(crate) fn compute(scaled: &ScaledInstance) -> Self {
        Self::compute_cancellable(scaled, &CancelToken::never())
            // lint: allow(panic_hygiene) — a never-token cannot fire
            .expect("never-token cannot fire")
    }

    /// [`Self::compute`] under a [`CancelToken`]: the `O(n1·n2)` cell loop
    /// polls the token every [`DP_CHECK_STRIDE`] cells and stops
    /// cooperatively once it fires.
    pub(crate) fn compute_cancellable(
        scaled: &ScaledInstance,
        token: &CancelToken,
    ) -> Result<Self, CancelReason> {
        assert_eq!(scaled.processors(), 2, "scaled DP needs two processors");
        let _dp_span = cr_obs::Span::enter(cr_obs::names::SPAN_OPT_TWO_DP);
        let n1 = scaled.jobs_on(0);
        let n2 = scaled.jobs_on(1);
        let cap = scaled.capacity();
        let row1 = scaled.row(0);
        let row2 = scaled.row(1);
        let req1 = |c: usize| -> u64 { row1.get(c).copied().unwrap_or(0) };
        let req2 = |c: usize| -> u64 { row2.get(c).copied().unwrap_or(0) };

        let stride = n2 + 1;
        let mut cells = vec![
            FlatCell {
                t: UNREACHED,
                r: 0,
                decision: DP_NONE,
            };
            (n1 + 1) * stride
        ];
        cells[0] = FlatCell {
            t: 0,
            r: req1(0) + req2(0),
            decision: DP_NONE,
        };

        // Row-major order visits every predecessor before its successors:
        // all three transitions strictly increase (c1, c2) lexicographically.
        let mut gate = token.gate(DP_CHECK_STRIDE);
        for c1 in 0..=n1 {
            for c2 in 0..=n2 {
                gate.tick()?;
                let cell = cells[c1 * stride + c2];
                if cell.t == UNREACHED || (c1 == n1 && c2 == n2) {
                    continue;
                }
                let (t, r) = (cell.t + 1, cell.r);
                if c1 < n1 && c2 == n2 {
                    relax(
                        &mut cells[(c1 + 1) * stride + c2],
                        t,
                        req1(c1 + 1),
                        DP_FIRST,
                    );
                } else if c1 == n1 {
                    relax(&mut cells[c1 * stride + c2 + 1], t, req2(c2 + 1), DP_SECOND);
                } else if r <= cap {
                    relax(
                        &mut cells[(c1 + 1) * stride + c2 + 1],
                        t,
                        req1(c1 + 1) + req2(c2 + 1),
                        DP_BOTH,
                    );
                } else {
                    let carried = r - cap;
                    relax(
                        &mut cells[(c1 + 1) * stride + c2],
                        t,
                        req1(c1 + 1) + carried,
                        DP_FIRST,
                    );
                    relax(
                        &mut cells[c1 * stride + c2 + 1],
                        t,
                        carried + req2(c2 + 1),
                        DP_SECOND,
                    );
                }
            }
        }
        Ok(ScaledDpTable { cells, n1, n2 })
    }

    /// The optimal makespan (value of the final cell).
    pub(crate) fn makespan(&self) -> usize {
        let cell = &self.cells[self.n1 * (self.n2 + 1) + self.n2];
        assert!(cell.t != UNREACHED, "final DP cell is always reachable");
        cell.t as usize
    }

    /// Back-traces the decisions from the final cell to the origin, in
    /// forward (replay) order.
    pub(crate) fn decisions(&self) -> Vec<u8> {
        let stride = self.n2 + 1;
        let mut decisions = Vec::with_capacity(self.makespan());
        let (mut c1, mut c2) = (self.n1, self.n2);
        // lint: allow(cancel_coverage) — back-trace: every step decrements
        // c1+c2, so at most n1+n2 iterations after the (gated) DP filled.
        loop {
            let cell = &self.cells[c1 * stride + c2];
            match cell.decision {
                DP_NONE => break,
                DP_BOTH => {
                    c1 -= 1;
                    c2 -= 1;
                }
                DP_FIRST => c1 -= 1,
                DP_SECOND => c2 -= 1,
                // lint: allow(panic_hygiene) — relax() only ever writes the
                // four DP_* constants into the decision byte
                other => unreachable!("invalid DP decision byte {other}"),
            }
            decisions.push(cell.decision);
        }
        assert_eq!((c1, c2), (0, 0), "back-trace must reach the origin");
        decisions.reverse();
        decisions
    }
}

#[inline]
fn relax(cell: &mut FlatCell, t: u32, r: u64, decision: u8) {
    if cell.t == UNREACHED || t < cell.t || (t == cell.t && r < cell.r) {
        *cell = FlatCell { t, r, decision };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::InstanceBuilder;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn scaled(rows: &[&[i64]]) -> ScaledInstance {
        ScaledInstance::try_new(&Instance::unit_from_percentages(rows)).unwrap()
    }

    /// One successor as a comparable value: configuration, sorted finished
    /// processors, partial receiver.
    type ChoiceKey = (Vec<u64>, Vec<u32>, Option<(u32, u64)>);

    fn enumerator_choices(s: &ScaledInstance, config: &[u64]) -> BTreeSet<ChoiceKey> {
        let mut scratch = SuccScratch::default();
        let mut out = BTreeSet::new();
        for_each_successor(s, config, &mut scratch, |cfg, finished, partial| {
            let mut finished = finished.to_vec();
            finished.sort_unstable();
            assert!(
                out.insert((cfg.to_vec(), finished, partial)),
                "the enumerator must not emit a choice twice"
            );
        });
        out
    }

    /// The reference `2^k` bitmask scan (the pre-ISSUE-4 algorithm),
    /// normalized to the Lemma 4 rule that zero-remaining frontiers always
    /// complete (the variants that skip them are strictly dominated and the
    /// pruned enumerator no longer emits them).  Only valid for `k ≤ 31`.
    fn mask_scan_choices(s: &ScaledInstance, config: &[u64]) -> BTreeSet<ChoiceKey> {
        let m = s.processors();
        let mut active = Vec::new();
        let mut remaining = Vec::new();
        for i in 0..m {
            let done = config[i] as usize;
            if done < s.jobs_on(i) {
                active.push(i);
                remaining.push(s.unit_req(i, done) - config[m + i]);
            }
        }
        let mut out = BTreeSet::new();
        if active.is_empty() {
            return out;
        }
        let k = active.len();
        assert!(k < 32, "the reference mask scan is limited to 31 actives");
        let cap = s.capacity();
        let build = |mask: u32, partial: Option<(u32, u64)>| -> ChoiceKey {
            let mut cfg = config.to_vec();
            let mut finished = Vec::new();
            for (bit, &p) in active.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    cfg[p] += 1;
                    cfg[m + p] = 0;
                    finished.push(u32::try_from(p).unwrap());
                }
            }
            if let Some((p, amount)) = partial {
                cfg[m + p as usize] += amount;
            }
            finished.sort_unstable();
            (cfg, finished, partial)
        };
        let total: u128 = remaining.iter().map(|&r| u128::from(r)).sum();
        if total <= u128::from(cap) {
            out.insert(build((1u32 << k) - 1, None));
            return out;
        }
        for mask in 1u32..(1u32 << k) {
            // Normalization: every zero-remaining frontier completes.
            if remaining
                .iter()
                .enumerate()
                .any(|(bit, &r)| r == 0 && mask & (1 << bit) == 0)
            {
                continue;
            }
            let sum: u128 = remaining
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &r)| u128::from(r))
                .sum();
            if sum > u128::from(cap) {
                continue;
            }
            let leftover = cap - u64::try_from(sum).unwrap();
            if leftover == 0 {
                out.insert(build(mask, None));
                continue;
            }
            for (bit, &p) in active.iter().enumerate() {
                if mask & (1 << bit) == 0 && remaining[bit] > leftover {
                    out.insert(build(mask, Some((u32::try_from(p).unwrap(), leftover))));
                }
            }
        }
        out
    }

    #[test]
    fn successor_streaming_matches_manual_enumeration() {
        let s = scaled(&[&[60, 40], &[60, 40]]);
        let init = initial_config(2);
        let mut scratch = SuccScratch::default();
        let mut seen = Vec::new();
        for_each_successor(&s, &init, &mut scratch, |cfg, finished, partial| {
            seen.push((cfg.to_vec(), finished.to_vec(), partial));
        });
        // 60 + 60 > 100: either frontier may finish, the other carries 40.
        assert_eq!(seen.len(), 2);
        for (cfg, finished, partial) in &seen {
            assert_eq!(finished.len(), 1);
            let (p, amount) = partial.unwrap();
            assert_eq!(s.to_ratio(amount), Ratio::from_percent(40));
            assert_eq!(cfg[2 + p as usize], amount);
            assert_ne!(finished[0], p);
        }
    }

    #[test]
    fn all_fit_step_finishes_everything() {
        let s = scaled(&[&[30], &[30], &[40]]);
        let init = initial_config(3);
        let mut scratch = SuccScratch::default();
        let mut count = 0;
        for_each_successor(&s, &init, &mut scratch, |cfg, finished, partial| {
            count += 1;
            assert_eq!(finished, &[0, 1, 2]);
            assert!(partial.is_none());
            assert!(is_final(&s, cfg));
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn wide_active_sets_no_longer_assert() {
        // 40 active processors: 4 oversubscribed heavies plus 36 free
        // (zero-requirement) frontiers.  The pre-ISSUE-4 engine asserted
        // `k < 32` here.
        let mut rows: Vec<&[i64]> = Vec::new();
        for _ in 0..4 {
            rows.push(&[90]);
        }
        for _ in 0..36 {
            rows.push(&[0]);
        }
        let s = scaled(&rows);
        let init = initial_config(40);
        let mut scratch = SuccScratch::default();
        let mut count = 0;
        for_each_successor(&s, &init, &mut scratch, |_cfg, finished, partial| {
            count += 1;
            // The 36 free frontiers complete in every choice, exactly one
            // heavy completes, and another heavy carries the leftover.
            assert_eq!(finished.len(), 37);
            assert!(partial.is_some());
        });
        assert_eq!(count, 4 * 3);
    }

    #[test]
    fn near_max_capacity_sums_are_checked_not_wrapped() {
        // Largest prime below 2^63: the capacity consumes all but one bit of
        // u64, so the three-fold remaining sum overflows and must be treated
        // as oversubscribed (pre-ISSUE-4: silent wraparound in release).
        let p: i128 = 9_223_372_036_854_775_783;
        let inst = InstanceBuilder::new()
            .processor([Ratio::new(p - 1, p)])
            .processor([Ratio::new(p - 1, p)])
            .processor([Ratio::new(p - 1, p)])
            .build();
        let s = ScaledInstance::try_new(&inst).expect("2·D headroom admits capacities up to 2^63");
        assert_eq!(s.capacity(), 9_223_372_036_854_775_783u64);
        let rounds = run_search(&s).unwrap();
        // One job finishes per step; the one-unit leftover barely helps.
        assert_eq!(search_makespan(&s, &rounds), 3);
        let schedule = search_schedule(&inst, &s, &rounds);
        assert_eq!(schedule.makespan(&inst).unwrap(), 3);
    }

    #[test]
    fn domination_is_reflexive_and_ordered() {
        // completed = [2, 1] / spent = [0, 30] dominates [1, 1] / [90, 10].
        let a = [2u64, 1, 0, 30];
        let b = [1u64, 1, 90, 10];
        assert!(dominates(2, &a, &a));
        assert!(dominates(2, &a, &b));
        assert!(!dominates(2, &b, &a));
    }

    #[test]
    fn search_solves_known_instances() {
        let s = scaled(&[&[100], &[100], &[100]]);
        assert_eq!(search_makespan(&s, &run_search(&s).unwrap()), 3);
        let s = scaled(&[&[50, 20], &[30, 30], &[20, 50]]);
        assert_eq!(search_makespan(&s, &run_search(&s).unwrap()), 2);
        let s = scaled(&[&[50, 50, 50, 50], &[100], &[100]]);
        assert_eq!(search_makespan(&s, &run_search(&s).unwrap()), 4);
    }

    #[test]
    fn empty_instance_is_final_immediately() {
        let inst = InstanceBuilder::new()
            .empty_processor()
            .empty_processor()
            .build();
        let s = ScaledInstance::try_new(&inst).unwrap();
        let rounds = run_search(&s).unwrap();
        assert_eq!(search_makespan(&s, &rounds), 0);
        assert_eq!(search_schedule(&inst, &s, &rounds).num_steps(), 0);
    }

    #[test]
    fn flat_dp_matches_search_on_two_processors() {
        for rows in [
            &[&[60i64, 40][..], &[60, 40][..]][..],
            &[&[100, 1, 100][..], &[1, 100, 1][..]][..],
            &[&[55, 45, 35][..], &[65, 75, 85][..]][..],
        ] {
            let s = scaled(rows);
            let dp = ScaledDpTable::compute(&s);
            assert_eq!(dp.makespan(), search_makespan(&s, &run_search(&s).unwrap()));
            assert_eq!(dp.decisions().len(), dp.makespan());
        }
    }

    #[test]
    fn brute_force_agrees_with_search() {
        for rows in [
            &[&[50i64, 20][..], &[30, 30][..], &[20, 50][..]][..],
            &[&[90, 5][..], &[80, 15][..], &[70, 25][..]][..],
        ] {
            let s = scaled(rows);
            let (best, states, expansions) = brute_force(&s);
            assert_eq!(best, search_makespan(&s, &run_search(&s).unwrap()));
            assert!(states > 0);
            assert!(expansions > 0);
        }
    }

    #[test]
    fn cancelled_search_surfaces_a_structured_error() {
        let s = scaled(&[&[100], &[100], &[100]]);
        let token = CancelToken::new();
        token.cancel();
        let err = run_search_cancellable(&s, None, &token).unwrap_err();
        assert_eq!(
            err,
            SearchError::Cancelled {
                reason: CancelReason::Cancelled
            }
        );
        assert!(err.to_string().contains("cancelled externally"));
        let err = brute_force_cancellable(&s, &token).unwrap_err();
        assert_eq!(err, CancelReason::Cancelled);
        // An unfired token changes nothing: same rounds as the plain entry.
        let live = CancelToken::new();
        let cancellable = run_search_cancellable(&s, None, &live).unwrap().unwrap();
        assert_eq!(cancellable, run_search(&s).unwrap());
    }

    #[test]
    fn search_error_displays_the_offending_round() {
        let err = SearchError::RoundTooLarge {
            round: 7,
            nodes: 5_000_000_000,
        };
        assert!(err.to_string().contains("round 7"));
        assert!(err.to_string().contains("5000000000"));
    }

    fn percent_instance(den: u64, rows: &[Vec<u64>]) -> Instance {
        let reqs = rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&pct| Ratio::from_parts(pct * den / 100, den))
                    .collect()
            })
            .collect();
        Instance::unit_from_requirements(reqs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pruned DFS enumerator emits exactly the successor set of the
        /// reference mask scan for active widths up to k = 12, on the
        /// initial configuration and on a sample of first-round successors.
        #[test]
        fn enumerator_matches_reference_mask_scan(
            den in 1u64..=24,
            rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=2), 1..=12),
        ) {
            let inst = percent_instance(den, &rows);
            let s = ScaledInstance::try_new(&inst).expect("small denominators always scale");
            let init = initial_config(s.processors());
            prop_assert_eq!(enumerator_choices(&s, &init), mask_scan_choices(&s, &init));
            // Wide oversubscribed frontiers can have hundreds of first-round
            // successors; re-checking a prefix keeps the reference 2^k scan
            // affordable while still covering non-initial spent states.
            for (config, _, _) in enumerator_choices(&s, &init).into_iter().take(16) {
                prop_assert_eq!(
                    enumerator_choices(&s, &config),
                    mask_scan_choices(&s, &config)
                );
            }
        }

        /// Parallel round expansion is byte-identical to serial: every chunk
        /// granularity produces the same rounds (nodes, parents, choices)
        /// and therefore the same reconstructed schedule.
        #[test]
        fn parallel_search_is_bit_identical_to_serial(
            den in 1u64..=24,
            rows in prop::collection::vec(prop::collection::vec(0u64..=100, 1..=3), 2..=4),
        ) {
            let inst = percent_instance(den, &rows);
            let s = ScaledInstance::try_new(&inst).expect("small denominators always scale");
            let serial = run_search_chunked(&s, Some(usize::MAX)).unwrap();
            for chunk in [1usize, 2, 3] {
                let parallel = run_search_chunked(&s, Some(chunk)).unwrap();
                prop_assert_eq!(&parallel, &serial);
            }
            let default = run_search(&s).unwrap();
            prop_assert_eq!(&default, &serial);
            prop_assert_eq!(
                search_schedule(&inst, &s, &default),
                search_schedule(&inst, &s, &serial)
            );
        }
    }
}
