//! **crate_hygiene** — every crate root and binary root opts into the
//! workspace safety net: `#![forbid(unsafe_code)]` at the top of the file
//! (library roots additionally `#![warn(missing_docs)]`), and every crate
//! manifest inherits the workspace lint set via `[lints] workspace = true`.
//! A crate that forgets the header silently opts out of the deny set the
//! rest of the workspace builds under.

use crate::diag::Diagnostic;
use crate::lexer::Token;

/// Rule name.
pub const RULE: &str = "crate_hygiene";

/// Whether the token stream contains the inner attribute
/// `#![outer(inner)]` (e.g. `forbid` / `unsafe_code`).
#[must_use]
pub fn has_inner_attr(tokens: &[Token], outer: &str, inner: &str) -> bool {
    tokens.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(outer)
            && w[4].is_punct('(')
            && w[5].is_ident(inner)
            && w[6].is_punct(')')
    })
}

/// Checks one crate/binary root file.
pub fn check_root(path: &str, tokens: &[Token], is_lib: bool, diags: &mut Vec<Diagnostic>) {
    let tokens: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
    if !has_inner_attr(&tokens, "forbid", "unsafe_code") {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE,
            message: "crate root is missing the standard lint header: add \
                      `#![forbid(unsafe_code)]`"
                .to_string(),
        });
    }
    if is_lib && !has_inner_attr(&tokens, "warn", "missing_docs") {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE,
            message: "library root is missing `#![warn(missing_docs)]` (the workspace \
                      documents every public item)"
                .to_string(),
        });
    }
}

/// Checks one crate manifest for `[lints] workspace = true`.
pub fn check_manifest(path: &str, manifest: &str, diags: &mut Vec<Diagnostic>) {
    let mut in_lints = false;
    let mut inherits = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.replace(' ', "") == "workspace=true" {
            inherits = true;
        }
    }
    if !inherits {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            rule: RULE,
            message: "crate manifest does not inherit the workspace lint set: add \
                      `[lints]\\nworkspace = true`"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn full_header_passes() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        let mut diags = Vec::new();
        check_root("lib.rs", &lex(src), true, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn missing_forbid_is_flagged() {
        let mut diags = Vec::new();
        check_root("main.rs", &lex("fn main() {}"), false, &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn bins_do_not_need_missing_docs() {
        let mut diags = Vec::new();
        check_root(
            "main.rs",
            &lex("#![forbid(unsafe_code)]\nfn main() {}"),
            false,
            &mut diags,
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn libs_need_missing_docs_too() {
        let mut diags = Vec::new();
        check_root(
            "lib.rs",
            &lex("#![forbid(unsafe_code)]\npub fn f() {}"),
            true,
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("missing_docs"));
    }

    #[test]
    fn manifest_lint_inheritance() {
        let mut diags = Vec::new();
        check_manifest(
            "Cargo.toml",
            "[package]\nname = \"x\"\n[lints]\nworkspace = true\n",
            &mut diags,
        );
        assert!(diags.is_empty());
        check_manifest("Cargo.toml", "[package]\nname = \"x\"\n", &mut diags);
        assert_eq!(diags.len(), 1);
    }
}
