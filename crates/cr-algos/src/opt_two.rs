//! `OptResAssignment` — the exact `O(n₁ · n₂)` dynamic program for **two**
//! processors (Algorithm 1, Theorem 5 of the paper).
//!
//! The dynamic program fills a table indexed by the pair `(c₁, c₂)` of job
//! counts already completed on the two processors.  Each cell stores the
//! earliest time step `t` by which this can be achieved together with the
//! smallest possible sum `r` of remaining requirements of the two frontier
//! jobs at that time (Lemma 3 shows this pair of values is all that matters).
//! Cells are processed diagonal by diagonal (`c₁ + c₂` increasing), exactly
//! as in the paper's pseudo code; a sparse variant that only visits reachable
//! cells (the priority-queue implementation sketched after Theorem 5) is
//! provided as [`opt_two_makespan_sparse`].
//!
//! In every time step of a normalized optimal schedule at least one frontier
//! job completes (Lemma 1), which leaves exactly three transitions:
//!
//! * the remaining requirements of both frontier jobs sum to at most 1 —
//!   finish both;
//! * otherwise finish only the first processor's frontier job and give the
//!   leftover resource to the second processor's frontier job;
//! * or vice versa.
//!
//! The hot path runs the dense DP on a flat integer table over a
//! [`ScaledInstance`] (see the internal `scaled_engine` module); the original
//! `Ratio`-based table is retained as [`opt_two_makespan_rational`] for
//! cross-checking and as the overflow fallback.  The DP's cell values —
//! one frontier requirement plus one carried leftover, each at most the
//! capacity `D` — are exactly what the `2·D` headroom of
//! [`ScaledInstance::try_new`] reserves.

use crate::scaled_engine::{ScaledDpTable, DP_BOTH, DP_FIRST, DP_SECOND};
use crate::traits::Scheduler;
use cr_core::{
    CancelReason, CancelToken, Instance, Ratio, ScaledInstance, Schedule, ScheduleBuilder,
};
use rustc_hash::FxHashMap;

/// How many rational DP cells between token checks (each cell does a few
/// `Ratio` comparisons, so the stride can be generous).
const DP_CHECK_STRIDE: u32 = 1024;

/// Which jobs complete in a time step of the reconstructed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Both frontier jobs finish in this step.
    AdvanceBoth,
    /// Only processor 0's frontier job finishes; the leftover goes to
    /// processor 1's frontier job.
    FinishFirst,
    /// Only processor 1's frontier job finishes; the leftover goes to
    /// processor 0's frontier job.
    FinishSecond,
}

/// Value stored per DP cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellValue {
    /// Earliest step count by which the cell's job sets can be completed.
    t: usize,
    /// Smallest achievable sum of remaining frontier requirements at time `t`.
    r: Ratio,
    /// Decision taken in the last step on the best path into this cell.
    decision: Option<Decision>,
}

/// Exact two-processor solver.
///
/// # Examples
///
/// ```
/// use cr_algos::{OptTwo, Scheduler};
/// use cr_core::Instance;
///
/// // The columns (60, 40) and (40, 60) each sum to exactly the full
/// // resource, so an optimal schedule finishes one column per step.
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[40, 60]]);
/// assert_eq!(OptTwo::new().makespan(&inst), 2);
///
/// // Swapping the second processor's jobs makes the first column overflow;
/// // three steps become necessary.
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]);
/// assert_eq!(OptTwo::new().makespan(&inst), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OptTwo;

impl OptTwo {
    /// Creates the solver.
    #[must_use]
    pub fn new() -> Self {
        OptTwo
    }
}

/// Requirement of the `c`-th job (zero-based) on processor `i`, or zero when
/// the chain is exhausted (the paper's dummy 0-entry).
fn req_or_zero(instance: &Instance, processor: usize, c: usize) -> Ratio {
    if c < instance.jobs_on(processor) {
        instance.processor_jobs(processor)[c].requirement
    } else {
        Ratio::ZERO
    }
}

fn assert_two_unit_processors(instance: &Instance) {
    assert_eq!(
        instance.processors(),
        2,
        "OptTwo only handles instances with exactly two processors"
    );
    assert!(
        instance.is_unit_size(),
        "OptTwo requires unit-size jobs (the setting of Theorem 5)"
    );
}

/// Runs the dense dynamic program and returns the full table.
fn run_dp(instance: &Instance) -> Vec<Vec<Option<CellValue>>> {
    run_dp_cancellable(instance, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("never-token cannot fire")
}

/// [`run_dp`] under a [`CancelToken`]: the `O(n1·n2)` diagonal sweep polls
/// the token every [`DP_CHECK_STRIDE`] cells and stops cooperatively once
/// it fires.
fn run_dp_cancellable(
    instance: &Instance,
    token: &CancelToken,
) -> Result<Vec<Vec<Option<CellValue>>>, CancelReason> {
    let n1 = instance.jobs_on(0);
    let n2 = instance.jobs_on(1);
    let mut table: Vec<Vec<Option<CellValue>>> = vec![vec![None; n2 + 1]; n1 + 1];
    table[0][0] = Some(CellValue {
        t: 0,
        r: req_or_zero(instance, 0, 0) + req_or_zero(instance, 1, 0),
        decision: None,
    });

    let relax = |table: &mut Vec<Vec<Option<CellValue>>>,
                 c1: usize,
                 c2: usize,
                 t: usize,
                 r: Ratio,
                 decision: Decision| {
        let better = match &table[c1][c2] {
            None => true,
            Some(old) => t < old.t || (t == old.t && r < old.r),
        };
        if better {
            table[c1][c2] = Some(CellValue {
                t,
                r,
                decision: Some(decision),
            });
        }
    };

    let mut gate = token.gate(DP_CHECK_STRIDE);
    for diag in 0..=(n1 + n2) {
        let lo = diag.saturating_sub(n2);
        for c1 in lo..=diag.min(n1) {
            gate.tick()?;
            let c2 = diag - c1;
            let Some(cell) = table[c1][c2] else { continue };
            let (t, r) = (cell.t, cell.r);

            if c1 == n1 && c2 == n2 {
                continue;
            }
            if c1 < n1 && c2 == n2 {
                let r_next = req_or_zero(instance, 0, c1 + 1);
                relax(&mut table, c1 + 1, c2, t + 1, r_next, Decision::FinishFirst);
                continue;
            }
            if c1 == n1 && c2 < n2 {
                let r_next = req_or_zero(instance, 1, c2 + 1);
                relax(
                    &mut table,
                    c1,
                    c2 + 1,
                    t + 1,
                    r_next,
                    Decision::FinishSecond,
                );
                continue;
            }

            // Both processors still have a frontier job.
            if r <= Ratio::ONE {
                let r_next = req_or_zero(instance, 0, c1 + 1) + req_or_zero(instance, 1, c2 + 1);
                relax(
                    &mut table,
                    c1 + 1,
                    c2 + 1,
                    t + 1,
                    r_next,
                    Decision::AdvanceBoth,
                );
            } else {
                let carried = r - Ratio::ONE;
                relax(
                    &mut table,
                    c1 + 1,
                    c2,
                    t + 1,
                    req_or_zero(instance, 0, c1 + 1) + carried,
                    Decision::FinishFirst,
                );
                relax(
                    &mut table,
                    c1,
                    c2 + 1,
                    t + 1,
                    carried + req_or_zero(instance, 1, c2 + 1),
                    Decision::FinishSecond,
                );
            }
        }
    }
    Ok(table)
}

/// The optimal makespan for a two-processor unit-size instance, computed by
/// the dense dynamic program of Algorithm 1.
///
/// Runs on the flat scaled-integer table whenever the instance's requirement
/// denominators admit a `u64` LCM, falling back to the rational table
/// otherwise.
///
/// # Panics
///
/// Panics if the instance does not have exactly two processors or contains
/// non-unit job sizes.
#[must_use]
pub fn opt_two_makespan(instance: &Instance) -> usize {
    assert_two_unit_processors(instance);
    match ScaledInstance::try_new(instance) {
        Some(scaled) => ScaledDpTable::compute(&scaled).makespan(),
        None => opt_two_makespan_rational(instance),
    }
}

/// The original `Ratio`-arithmetic dense dynamic program (reference path).
///
/// Kept so property tests can cross-check the scaled table and as the
/// fallback for instances whose denominator LCM overflows `u64`.
///
/// # Panics
///
/// Panics if the instance does not have exactly two processors or contains
/// non-unit job sizes.
#[must_use]
pub fn opt_two_makespan_rational(instance: &Instance) -> usize {
    assert_two_unit_processors(instance);
    let table = run_dp(instance);
    table[instance.jobs_on(0)][instance.jobs_on(1)]
        .expect("final DP cell is always reachable")
        .t
}

/// Sparse variant of [`opt_two_makespan`]: cells are held in a hash map and
/// only reachable cells are expanded, mirroring the priority-queue
/// implementation discussed after Theorem 5.  Produces the same value as the
/// dense dynamic program.
#[must_use]
pub fn opt_two_makespan_sparse(instance: &Instance) -> usize {
    assert_two_unit_processors(instance);
    let n1 = instance.jobs_on(0);
    let n2 = instance.jobs_on(1);

    let mut cells: FxHashMap<(usize, usize), (usize, Ratio)> = FxHashMap::default();
    cells.insert(
        (0, 0),
        (0, req_or_zero(instance, 0, 0) + req_or_zero(instance, 1, 0)),
    );

    let relax = |cells: &mut FxHashMap<(usize, usize), (usize, Ratio)>,
                 key: (usize, usize),
                 t: usize,
                 r: Ratio| {
        let better = match cells.get(&key) {
            None => true,
            Some(&(ot, or)) => t < ot || (t == ot && r < or),
        };
        if better {
            cells.insert(key, (t, r));
        }
    };

    for diag in 0..=(n1 + n2) {
        let keys: Vec<(usize, usize)> = cells
            .keys()
            .copied()
            .filter(|&(c1, c2)| c1 + c2 == diag)
            .collect();
        for (c1, c2) in keys {
            let (t, r) = cells[&(c1, c2)];
            if c1 == n1 && c2 == n2 {
                continue;
            }
            if c1 < n1 && c2 == n2 {
                relax(
                    &mut cells,
                    (c1 + 1, c2),
                    t + 1,
                    req_or_zero(instance, 0, c1 + 1),
                );
            } else if c1 == n1 && c2 < n2 {
                relax(
                    &mut cells,
                    (c1, c2 + 1),
                    t + 1,
                    req_or_zero(instance, 1, c2 + 1),
                );
            } else if r <= Ratio::ONE {
                relax(
                    &mut cells,
                    (c1 + 1, c2 + 1),
                    t + 1,
                    req_or_zero(instance, 0, c1 + 1) + req_or_zero(instance, 1, c2 + 1),
                );
            } else {
                let carried = r - Ratio::ONE;
                relax(
                    &mut cells,
                    (c1 + 1, c2),
                    t + 1,
                    req_or_zero(instance, 0, c1 + 1) + carried,
                );
                relax(
                    &mut cells,
                    (c1, c2 + 1),
                    t + 1,
                    carried + req_or_zero(instance, 1, c2 + 1),
                );
            }
        }
    }
    cells[&(n1, n2)].0
}

/// Back-traces the scaled DP table into the forward decision sequence (the
/// hot path of [`OptTwo::schedule`]).
pub(crate) fn scaled_decisions(scaled: &ScaledInstance) -> Vec<Decision> {
    scaled_decisions_cancellable(scaled, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("never-token cannot fire")
}

/// [`scaled_decisions`] under a [`CancelToken`] (the DP fill polls it; the
/// back-trace itself is `O(n1 + n2)`).
pub(crate) fn scaled_decisions_cancellable(
    scaled: &ScaledInstance,
    token: &CancelToken,
) -> Result<Vec<Decision>, CancelReason> {
    Ok(ScaledDpTable::compute_cancellable(scaled, token)?
        .decisions()
        .into_iter()
        .map(|byte| match byte {
            DP_BOTH => Decision::AdvanceBoth,
            DP_FIRST => Decision::FinishFirst,
            DP_SECOND => Decision::FinishSecond,
            // lint: allow(panic_hygiene) — ScaledDpTable::decisions only
            // emits the three decision constants matched above
            other => unreachable!("invalid DP decision byte {other}"),
        })
        .collect())
}

/// Replays a DP decision sequence into an explicit resource assignment,
/// tracking the exact remaining requirement of both frontier jobs.
pub(crate) fn replay_decisions(instance: &Instance, decisions: Vec<Decision>) -> Schedule {
    let mut builder = ScheduleBuilder::new(instance);
    for decision in decisions {
        let v0 = builder.remaining_workload(0);
        let v1 = builder.remaining_workload(1);
        let shares = match decision {
            Decision::AdvanceBoth => {
                debug_assert!(v0 + v1 <= Ratio::ONE);
                vec![v0, v1]
            }
            Decision::FinishFirst => {
                let leftover = (Ratio::ONE - v0).min(v1).max(Ratio::ZERO);
                vec![v0, leftover]
            }
            Decision::FinishSecond => {
                let leftover = (Ratio::ONE - v1).min(v0).max(Ratio::ZERO);
                vec![leftover, v1]
            }
        };
        builder.push_step(shares);
    }
    builder.finish()
}

/// Back-traces the rational DP table into the forward decision sequence
/// (reference / fallback path of [`OptTwo::schedule`]).
pub(crate) fn rational_decisions(instance: &Instance) -> Vec<Decision> {
    rational_decisions_cancellable(instance, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("never-token cannot fire")
}

/// [`rational_decisions`] under a [`CancelToken`] (the DP fill polls it;
/// the back-trace itself is `O(n1 + n2)`).
pub(crate) fn rational_decisions_cancellable(
    instance: &Instance,
    token: &CancelToken,
) -> Result<Vec<Decision>, CancelReason> {
    let n1 = instance.jobs_on(0);
    let n2 = instance.jobs_on(1);
    let table = run_dp_cancellable(instance, token)?;
    let mut decisions = Vec::new();
    let (mut c1, mut c2) = (n1, n2);
    while let Some(cell) = table[c1][c2] {
        let Some(decision) = cell.decision else { break };
        decisions.push(decision);
        match decision {
            Decision::AdvanceBoth => {
                c1 -= 1;
                c2 -= 1;
            }
            Decision::FinishFirst => c1 -= 1,
            Decision::FinishSecond => c2 -= 1,
        }
    }
    assert_eq!((c1, c2), (0, 0), "back-trace must reach the origin");
    decisions.reverse();
    Ok(decisions)
}

impl Scheduler for OptTwo {
    fn name(&self) -> &'static str {
        "OptResAssignment(m=2)"
    }

    /// Runs the dynamic program and reconstructs an optimal schedule by
    /// back-tracing the table and replaying the per-step decisions.
    fn schedule(&self, instance: &Instance) -> Schedule {
        assert_two_unit_processors(instance);
        let decisions = match ScaledInstance::try_new(instance) {
            Some(scaled) => scaled_decisions(&scaled),
            None => rational_decisions(instance),
        };
        replay_decisions(instance, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::bounds;
    use cr_core::InstanceBuilder;

    #[test]
    fn trivial_instances() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50]]);
        assert_eq!(opt_two_makespan(&inst), 1);
        let inst = Instance::unit_from_percentages(&[&[100], &[100]]);
        assert_eq!(opt_two_makespan(&inst), 2);
        let inst = Instance::unit_from_percentages(&[&[100, 100], &[100]]);
        assert_eq!(opt_two_makespan(&inst), 3);
    }

    #[test]
    fn empty_chain_on_one_processor() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::from_percent(40), Ratio::from_percent(90)])
            .empty_processor()
            .build();
        assert_eq!(opt_two_makespan(&inst), 2);
        assert_eq!(opt_two_makespan_sparse(&inst), 2);
        let schedule = OptTwo::new().schedule(&inst);
        assert_eq!(schedule.makespan(&inst).unwrap(), 2);
    }

    #[test]
    fn round_robin_worst_case_is_solved_optimally() {
        // The Theorem 3 lower-bound family for n = 4: r1j = j/4, r2j = 1 + 1/4 − j/4.
        let reqs1: Vec<Ratio> = (1..=4).map(|j| Ratio::new(j, 4)).collect();
        let reqs2: Vec<Ratio> = (1..=4)
            .map(|j| Ratio::new(5, 4) - Ratio::new(j, 4))
            .collect();
        let inst = InstanceBuilder::new()
            .processor(reqs1)
            .processor(reqs2)
            .build();
        // OPT finishes it in n + 1 = 5 steps (Figure 3a).
        assert_eq!(opt_two_makespan(&inst), 5);
        assert_eq!(opt_two_makespan_sparse(&inst), 5);
        let schedule = OptTwo::new().schedule(&inst);
        assert_eq!(schedule.makespan(&inst).unwrap(), 5);
    }

    #[test]
    fn schedule_matches_dp_value_and_lower_bounds() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]),
            Instance::unit_from_percentages(&[&[100, 1, 100, 1], &[1, 100, 1, 100]]),
            Instance::unit_from_percentages(&[&[55, 45, 35, 25], &[65, 75, 85, 95]]),
        ];
        for inst in instances {
            let dp = opt_two_makespan(&inst);
            let sparse = opt_two_makespan_sparse(&inst);
            assert_eq!(dp, sparse);
            let schedule = OptTwo::new().schedule(&inst);
            assert_eq!(schedule.makespan(&inst).unwrap(), dp);
            assert!(dp >= bounds::trivial_lower_bound(&inst));
        }
    }

    #[test]
    fn scaled_and_rational_paths_agree() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]),
            Instance::unit_from_percentages(&[&[100, 1, 100, 1], &[1, 100, 1, 100]]),
            Instance::unit_from_percentages(&[&[0, 50, 100], &[100, 50, 0]]),
            Instance::unit_from_percentages(&[&[55, 45, 35, 25], &[65, 75, 85, 95]]),
        ];
        for inst in instances {
            let scaled = opt_two_makespan(&inst);
            assert_eq!(scaled, opt_two_makespan_rational(&inst), "{inst}");
            assert_eq!(
                OptTwo::new().schedule(&inst).makespan(&inst).unwrap(),
                scaled
            );
        }
    }

    #[test]
    fn dp_sweeps_poll_cancellation_mid_table() {
        // Deterministic mid-sweep check: a pre-cancelled token on a table
        // larger than the poll stride must stop both DP engines inside the
        // cell loop (neither back-trace entry point re-checks up front).
        let reqs: Vec<i64> = (0..120).map(|j| 1 + j % 97).collect();
        let chain: Vec<&[i64]> = vec![&reqs, &reqs];
        let inst = Instance::unit_from_percentages(&chain);
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert!(rational_decisions_cancellable(&inst, &cancelled).is_err());
        let scaled = ScaledInstance::try_new(&inst).unwrap();
        assert!(scaled_decisions_cancellable(&scaled, &cancelled).is_err());
        // A never-token reproduces the ungated result.
        assert_eq!(
            rational_decisions_cancellable(&inst, &CancelToken::never()).unwrap(),
            rational_decisions(&inst)
        );
    }

    #[test]
    #[should_panic(expected = "exactly two processors")]
    fn rejects_three_processors() {
        let inst = Instance::unit_from_percentages(&[&[50], &[50], &[50]]);
        let _ = opt_two_makespan(&inst);
    }

    #[test]
    fn dominates_greedy_balance() {
        use crate::greedy_balance::GreedyBalance;
        let instances = vec![
            Instance::unit_from_percentages(&[&[90, 10, 90, 10], &[10, 90, 10, 90]]),
            Instance::unit_from_percentages(&[&[75, 50, 25], &[25, 50, 75]]),
        ];
        for inst in instances {
            assert!(opt_two_makespan(&inst) <= GreedyBalance::new().makespan(&inst));
        }
    }
}
