//! The GreedyBalance algorithm (Section 8.3 of the paper).
//!
//! In every time step GreedyBalance serves the active jobs in order of
//! *decreasing number of remaining jobs* on their processor, breaking ties in
//! favour of the *larger remaining resource requirement*, and gives each job
//! in this order as much of the remaining resource as it can still use.
//!
//! The resulting schedules are non-wasting, progressive and **balanced**
//! (Definition 5), and therefore achieve the worst-case approximation ratio
//! of exactly `2 − 1/m` proven in Theorems 7 and 8.

use crate::scaled_sched::serve_units_in_order;
use crate::traits::Scheduler;
use cr_core::{Instance, Ratio, ScaledScheduleBuilder, Schedule, ScheduleBuilder};

/// The `(2 − 1/m)`-approximation algorithm of the paper.
///
/// The production path runs on the scaled-integer grid
/// ([`ScaledScheduleBuilder`]); [`GreedyBalance::schedule_rational`] is the
/// retained exact-[`Ratio`] reference (identical output), which also serves
/// as the fallback for instances whose unit grid overflows `u64`.
///
/// # Examples
///
/// ```
/// use cr_algos::{GreedyBalance, Scheduler};
/// use cr_core::Instance;
///
/// let inst = Instance::unit_from_percentages(&[&[50, 50], &[100]]);
/// let makespan = GreedyBalance::new().makespan(&inst);
/// assert_eq!(makespan, 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBalance;

impl GreedyBalance {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        GreedyBalance
    }

    /// Computes the priority order of active processors for the next step of
    /// `builder`: more remaining jobs first, larger remaining requirement of
    /// the active job second, processor index last (for determinism).
    fn priority_order(builder: &ScheduleBuilder<'_>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..builder.processors())
            .filter(|&i| builder.is_active(i))
            .collect();
        order.sort_by(|&a, &b| {
            builder
                .unfinished_jobs(b)
                .cmp(&builder.unfinished_jobs(a))
                .then_with(|| {
                    builder
                        .remaining_workload(b)
                        .cmp(&builder.remaining_workload(a))
                })
                .then_with(|| a.cmp(&b))
        });
        order
    }

    /// The same priority order computed on the scaled builder (unit
    /// comparisons instead of rational cross-multiplications).
    fn scaled_priority_order(builder: &ScaledScheduleBuilder<'_>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..builder.processors())
            .filter(|&i| builder.is_active(i))
            .collect();
        order.sort_by(|&a, &b| {
            builder
                .unfinished_jobs(b)
                .cmp(&builder.unfinished_jobs(a))
                .then_with(|| {
                    builder
                        .remaining_workload_units(b)
                        .cmp(&builder.remaining_workload_units(a))
                })
                .then_with(|| a.cmp(&b))
        });
        order
    }

    /// The exact-rational reference implementation of
    /// [`Scheduler::schedule`] (identical output).
    #[must_use]
    pub fn schedule_rational(&self, instance: &Instance) -> Schedule {
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(instance);
        while !builder.all_done() {
            let order = Self::priority_order(&builder);
            let mut shares = vec![Ratio::ZERO; m];
            let mut left = Ratio::ONE;
            for i in order {
                if left.is_zero() {
                    break;
                }
                let give = builder.step_demand(i).min(left);
                shares[i] = give;
                left -= give;
            }
            builder.push_step(shares);
        }
        builder.finish()
    }
}

impl Scheduler for GreedyBalance {
    fn name(&self) -> &'static str {
        "GreedyBalance"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        let Some(mut builder) = ScaledScheduleBuilder::try_new(instance) else {
            return self.schedule_rational(instance);
        };
        while !builder.all_done() {
            let order = Self::scaled_priority_order(&builder);
            serve_units_in_order(&mut builder, &order);
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::properties::{is_balanced, is_non_wasting, is_progressive};
    use cr_core::{bounds, InstanceBuilder, Ratio, SchedulingGraph};

    #[test]
    fn fig1_instance_takes_six_steps() {
        let inst = Instance::unit_from_percentages(&[
            &[20, 10, 10, 10],
            &[50, 55, 90, 55, 10],
            &[50, 40, 95],
        ]);
        // GreedyBalance prioritizes processor 1 (5 jobs), then 0/2 (4 and 3).
        let schedule = GreedyBalance::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        assert!(is_non_wasting(&trace));
        assert!(is_progressive(&trace));
        assert!(is_balanced(&trace));
        // Lower bound: ⌈4.95⌉ = 5 and n = 5; greedy needs at most 2·5 − ... steps.
        assert!(trace.makespan() >= 5);
        assert!(trace.makespan() <= 7);
    }

    #[test]
    fn produces_balanced_schedules_on_uneven_chains() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::from_percent(90); 1])
            .processor([Ratio::from_percent(40); 6])
            .processor([Ratio::from_percent(70); 3])
            .build();
        let schedule = GreedyBalance::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        assert!(
            is_balanced(&trace),
            "GreedyBalance must produce balanced schedules"
        );
        assert!(is_non_wasting(&trace));
        assert!(is_progressive(&trace));
    }

    #[test]
    fn respects_paper_approximation_guarantee_via_lower_bounds() {
        let inst = Instance::unit_from_percentages(&[
            &[80, 20, 60, 40],
            &[70, 30, 50, 50],
            &[10, 90, 25, 75],
        ]);
        let schedule = GreedyBalance::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let graph = SchedulingGraph::build(&inst, &trace);
        let lower = bounds::best_lower_bound(&inst, &graph);
        let m = inst.processors() as f64;
        let ratio = trace.makespan() as f64 / lower as f64;
        assert!(
            ratio <= 2.0 - 1.0 / m + 1e-9,
            "approximation ratio {ratio} exceeds 2 - 1/m"
        );
    }

    #[test]
    fn single_processor_is_optimal() {
        let inst = Instance::unit_from_percentages(&[&[100, 100, 50, 50]]);
        // One processor: every job needs its own step regardless of requirement.
        assert_eq!(GreedyBalance::new().makespan(&inst), 4);
    }

    #[test]
    fn empty_processors_are_ignored() {
        let inst = InstanceBuilder::new()
            .processor([Ratio::from_percent(50), Ratio::from_percent(50)])
            .empty_processor()
            .build();
        assert_eq!(GreedyBalance::new().makespan(&inst), 2);
    }

    #[test]
    fn ties_prefer_larger_remaining_requirement() {
        // Both processors have one job; the larger requirement is served first,
        // so the smaller one is the partially processed leftover.
        let inst = Instance::unit_from_percentages(&[&[60], &[80]]);
        let schedule = GreedyBalance::new().schedule(&inst);
        assert_eq!(schedule.share(0, 1), Ratio::from_percent(80));
        assert_eq!(schedule.share(0, 0), Ratio::from_percent(20));
        assert_eq!(schedule.makespan(&inst).unwrap(), 2);
    }
}
