//! E8 — Theorem 7 in practice: the approximation ratio of balanced schedules
//! (GreedyBalance) against the exact optimum on thousands of small random
//! instances, and against the best lower bound on larger ones.  The measured
//! ratios must never exceed 2 − 1/m, and are typically much smaller.

use cr_algos::{opt_m_makespan, GreedyBalance, RoundRobin, Scheduler};
use cr_core::{bounds, SchedulingGraph};
use cr_instances::{random_unit_instance, RandomConfig, RequirementProfile};

fn summarize(label: &str, m: usize, ratios: &[f64]) {
    let count = ratios.len() as f64;
    let mean = ratios.iter().sum::<f64>() / count;
    let max = ratios.iter().fold(0.0_f64, |a, &b| a.max(b));
    let at_one = ratios.iter().filter(|&&r| (r - 1.0).abs() < 1e-12).count();
    println!(
        "  {label:<34} mean {mean:.4}  max {max:.4}  optimal in {:>4.1}% of cases  (bound 2 − 1/m = {:.4})",
        100.0 * at_one as f64 / count,
        2.0 - 1.0 / m as f64
    );
}

fn main() {
    println!("E8 / Theorem 7 — approximation-ratio distribution of GreedyBalance\n");

    // Exact comparison against OptResAssignment2 on small instances.
    println!("against the exact optimum (small instances, 200 seeds each):");
    for &(m, n) in &[(2usize, 4usize), (3, 3), (3, 4), (4, 3)] {
        for profile in [RequirementProfile::Uniform, RequirementProfile::Heavy] {
            // Heavy-requirement instances on four processors make the exact
            // configuration search expensive (see E7); keep this cell out of
            // the default sweep so the experiment finishes in seconds.
            if m >= 4 && matches!(profile, RequirementProfile::Heavy) {
                continue;
            }
            let mut greedy_ratios = Vec::new();
            let mut rr_ratios = Vec::new();
            for seed in 0..200u64 {
                let cfg = RandomConfig {
                    profile,
                    ..RandomConfig::uniform(m, n)
                };
                let instance = random_unit_instance(&cfg, seed);
                let opt = opt_m_makespan(&instance) as f64;
                let greedy = GreedyBalance::new().makespan(&instance) as f64;
                let rr = RoundRobin::new().makespan(&instance) as f64;
                assert!(
                    greedy <= (2.0 - 1.0 / m as f64) * opt + 1e-9,
                    "Theorem 7 violated on m={m} n={n} seed={seed}"
                );
                assert!(rr <= 2.0 * opt + 1e-9, "Theorem 3 violated");
                greedy_ratios.push(greedy / opt);
                rr_ratios.push(rr / opt);
            }
            summarize(&format!("GreedyBalance m={m} n={n} {profile:?}"), m, &greedy_ratios);
            summarize(&format!("RoundRobin    m={m} n={n} {profile:?}"), m, &rr_ratios);
        }
    }

    // Against the best lower bound on larger instances (the true ratio is at
    // most the reported one).
    println!("\nagainst the best lower bound (larger instances, 50 seeds each):");
    for &(m, n) in &[(4usize, 20usize), (8, 20), (16, 40)] {
        let mut ratios = Vec::new();
        for seed in 0..50u64 {
            let instance = random_unit_instance(&RandomConfig::uniform(m, n), seed);
            let schedule = GreedyBalance::new().schedule(&instance);
            let trace = schedule.trace(&instance).expect("feasible");
            let graph = SchedulingGraph::build(&instance, &trace);
            let lb = bounds::best_lower_bound(&instance, &graph) as f64;
            ratios.push(trace.makespan() as f64 / lb);
        }
        summarize(&format!("GreedyBalance m={m} n={n} uniform"), m, &ratios);
    }
    println!(
        "\npaper: Theorem 7 — every non-wasting, progressive, balanced schedule is a\n\
         (2 − 1/m)-approximation; Theorem 8 — the bound is tight in the worst case, but the\n\
         table shows typical instances sit far below it."
    );
}
