//! Seeded random instance generators.
//!
//! All generators are deterministic functions of their [`RandomConfig`] and a
//! seed, so every experiment in the harness is reproducible.  Requirements
//! are drawn on a fixed rational grid (`1/denominator` steps) to keep the
//! exact arithmetic of `cr-core` cheap.

use cr_core::{Instance, Job, Ratio};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The shape of the requirement distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequirementProfile {
    /// Requirements uniform on `{1, …, denominator} / denominator`.
    Uniform,
    /// With probability `heavy_probability` a requirement from the heavy band
    /// `[0.7, 1.0]`, otherwise from the light band `(0, 0.25]`.  Models a mix
    /// of I/O-bound and compute-bound phases.
    Bimodal {
        /// Probability of drawing a heavy requirement.
        heavy_probability: f64,
    },
    /// Requirements concentrated near the low end (`max 30%`), the regime in
    /// which many jobs can run in parallel and resource assignment is easy.
    Light,
    /// Requirements concentrated near the high end (`min 70%`), the regime in
    /// which the resource is the hard bottleneck.
    Heavy,
}

/// Configuration of the random instance generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomConfig {
    /// Number of processors `m`.
    pub processors: usize,
    /// Number of jobs per processor (chains may be shortened by
    /// `chain_variation`).
    pub jobs_per_processor: usize,
    /// Maximum number of jobs a chain may be shorter than
    /// `jobs_per_processor` (0 = all chains equally long).
    pub chain_variation: usize,
    /// Grid denominator for requirements.
    pub denominator: u64,
    /// Requirement distribution.
    pub profile: RequirementProfile,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            processors: 3,
            jobs_per_processor: 4,
            chain_variation: 0,
            denominator: 100,
            profile: RequirementProfile::Uniform,
        }
    }
}

impl RandomConfig {
    /// Uniform requirements with equal chain lengths.
    #[must_use]
    pub fn uniform(processors: usize, jobs_per_processor: usize) -> Self {
        RandomConfig {
            processors,
            jobs_per_processor,
            ..Default::default()
        }
    }
}

fn draw_requirement(cfg: &RandomConfig, rng: &mut StdRng) -> Ratio {
    let d = cfg.denominator.max(1);
    let in_band = |rng: &mut StdRng, lo: f64, hi: f64| -> Ratio {
        let lo_ticks = ((lo * d as f64).ceil() as u64).clamp(1, d);
        let hi_ticks = ((hi * d as f64).floor() as u64).clamp(lo_ticks, d);
        Ratio::from_parts(rng.random_range(lo_ticks..=hi_ticks), d)
    };
    match cfg.profile {
        RequirementProfile::Uniform => Ratio::from_parts(rng.random_range(1..=d), d),
        RequirementProfile::Bimodal { heavy_probability } => {
            if rng.random_bool(heavy_probability.clamp(0.0, 1.0)) {
                in_band(rng, 0.7, 1.0)
            } else {
                in_band(rng, 0.0, 0.25)
            }
        }
        RequirementProfile::Light => in_band(rng, 0.0, 0.3),
        RequirementProfile::Heavy => in_band(rng, 0.7, 1.0),
    }
}

/// Generates a unit-size instance from `cfg` and `seed`.
#[must_use]
pub fn random_unit_instance(cfg: &RandomConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Ratio>> = (0..cfg.processors)
        .map(|_| {
            let shorten = if cfg.chain_variation > 0 {
                rng.random_range(0..=cfg.chain_variation)
            } else {
                0
            };
            let len = cfg.jobs_per_processor.saturating_sub(shorten).max(1);
            (0..len).map(|_| draw_requirement(cfg, &mut rng)).collect()
        })
        .collect();
    Instance::unit_from_requirements(rows)
}

/// Generates an arbitrary-size instance: requirements as in
/// [`random_unit_instance`], volumes uniform on `{1, …, max_volume}`.
#[must_use]
pub fn random_sized_instance(cfg: &RandomConfig, max_volume: u64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<Job>> = (0..cfg.processors)
        .map(|_| {
            (0..cfg.jobs_per_processor)
                .map(|_| {
                    let requirement = draw_requirement(cfg, &mut rng);
                    let volume =
                        Ratio::from_integer(rng.random_range(1..=max_volume.max(1)) as i64);
                    Job::new(requirement, volume)
                })
                .collect()
        })
        .collect();
    Instance::new(rows).expect("generated instance is valid")
}

/// Generates a batch of unit-size instances with consecutive seeds, handy for
/// ratio-distribution experiments.
#[must_use]
pub fn random_batch(cfg: &RandomConfig, base_seed: u64, count: usize) -> Vec<Instance> {
    (0..count)
        .map(|k| random_unit_instance(cfg, base_seed.wrapping_add(k as u64)))
        .collect()
}

/// Generates a unit-size instance carrying `resources` independent resource
/// layers, each drawn from `cfg`'s profile on `cfg`'s grid (all layers share
/// the chain lengths drawn for the instance).
///
/// `resources == 1` degenerates to [`random_unit_instance`]'s shape (though
/// not to its exact draw sequence — the layered generator draws chain
/// lengths up front).
///
/// # Panics
///
/// Panics if `resources == 0`.
#[must_use]
pub fn random_multi_unit_instance(cfg: &RandomConfig, resources: usize, seed: u64) -> Instance {
    assert!(resources >= 1, "an instance has at least one resource");
    let mut rng = StdRng::seed_from_u64(seed);
    let lengths: Vec<usize> = (0..cfg.processors)
        .map(|_| {
            let shorten = if cfg.chain_variation > 0 {
                rng.random_range(0..=cfg.chain_variation)
            } else {
                0
            };
            cfg.jobs_per_processor.saturating_sub(shorten).max(1)
        })
        .collect();
    let layers: Vec<Vec<Vec<Ratio>>> = (0..resources)
        .map(|_| {
            lengths
                .iter()
                .map(|&len| (0..len).map(|_| draw_requirement(cfg, &mut rng)).collect())
                .collect()
        })
        .collect();
    Instance::multi_unit_from_requirements(layers).expect("all layers share the drawn chain grid")
}

/// A batch of [`random_multi_unit_instance`]s with consecutive seeds.
#[must_use]
pub fn random_multi_batch(
    cfg: &RandomConfig,
    resources: usize,
    base_seed: u64,
    count: usize,
) -> Vec<Instance> {
    (0..count)
        .map(|k| random_multi_unit_instance(cfg, resources, base_seed.wrapping_add(k as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = RandomConfig::uniform(4, 6);
        let a = random_unit_instance(&cfg, 7);
        let b = random_unit_instance(&cfg, 7);
        let c = random_unit_instance(&cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_match_config() {
        let cfg = RandomConfig::uniform(5, 3);
        let inst = random_unit_instance(&cfg, 1);
        assert_eq!(inst.processors(), 5);
        assert!(inst.is_unit_size());
        assert_eq!(inst.max_chain_length(), 3);
        for i in 0..5 {
            assert_eq!(inst.jobs_on(i), 3);
        }
    }

    #[test]
    fn requirements_respect_profiles() {
        let light = RandomConfig {
            profile: RequirementProfile::Light,
            ..RandomConfig::uniform(3, 20)
        };
        let inst = random_unit_instance(&light, 11);
        assert!(inst.max_requirement() <= Ratio::from_percent(30));

        let heavy = RandomConfig {
            profile: RequirementProfile::Heavy,
            ..RandomConfig::uniform(3, 20)
        };
        let inst = random_unit_instance(&heavy, 11);
        for (_, job) in inst.iter_jobs() {
            assert!(job.requirement >= Ratio::from_percent(70));
        }
    }

    #[test]
    fn bimodal_produces_both_bands() {
        let cfg = RandomConfig {
            profile: RequirementProfile::Bimodal {
                heavy_probability: 0.5,
            },
            ..RandomConfig::uniform(4, 50)
        };
        let inst = random_unit_instance(&cfg, 3);
        let heavy = inst
            .iter_jobs()
            .filter(|(_, j)| j.requirement >= Ratio::from_percent(70))
            .count();
        let light = inst
            .iter_jobs()
            .filter(|(_, j)| j.requirement <= Ratio::from_percent(25))
            .count();
        assert!(heavy > 0);
        assert!(light > 0);
        assert_eq!(heavy + light, inst.total_jobs());
    }

    #[test]
    fn chain_variation_shortens_some_chains() {
        let cfg = RandomConfig {
            chain_variation: 3,
            ..RandomConfig::uniform(8, 6)
        };
        let inst = random_unit_instance(&cfg, 5);
        assert!(inst.max_chain_length() <= 6);
        assert!((0..8).all(|i| inst.jobs_on(i) >= 1));
    }

    #[test]
    fn sized_instances_have_bounded_volumes() {
        let cfg = RandomConfig::uniform(3, 4);
        let inst = random_sized_instance(&cfg, 5, 2);
        assert!(!inst.is_unit_size() || inst.total_jobs() > 0);
        for (_, job) in inst.iter_jobs() {
            assert!(job.volume >= Ratio::ONE);
            assert!(job.volume <= Ratio::from_integer(5));
        }
    }

    #[test]
    fn batch_generation() {
        let cfg = RandomConfig::uniform(2, 3);
        let batch = random_batch(&cfg, 100, 5);
        assert_eq!(batch.len(), 5);
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn multi_generation_is_deterministic_with_shared_chains() {
        let cfg = RandomConfig {
            chain_variation: 2,
            ..RandomConfig::uniform(4, 5)
        };
        let a = random_multi_unit_instance(&cfg, 3, 9);
        let b = random_multi_unit_instance(&cfg, 3, 9);
        assert_eq!(a, b);
        assert_eq!(a.resources(), 3);
        assert_eq!(a.processors(), 4);
        // Every extra layer mirrors the base layer's chain lengths.
        for layer in a.extra_layers() {
            for (i, row) in layer.iter().enumerate() {
                assert_eq!(row.len(), a.jobs_on(i));
            }
        }
        assert_ne!(a, random_multi_unit_instance(&cfg, 3, 10));
    }

    #[test]
    fn multi_layers_respect_the_profile() {
        let cfg = RandomConfig {
            profile: RequirementProfile::Heavy,
            ..RandomConfig::uniform(3, 4)
        };
        let inst = random_multi_unit_instance(&cfg, 2, 5);
        for r in 0..inst.resources() {
            for i in 0..inst.processors() {
                for j in 0..inst.jobs_on(i) {
                    let req = inst.requirement_on(r, cr_core::JobId::new(i, j));
                    assert!(req >= Ratio::from_percent(70), "layer {r} job ({i},{j})");
                }
            }
        }
        let batch = random_multi_batch(&cfg, 2, 50, 3);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
    }
}
