//! E3 / E5 — evaluating the algorithms on the paper's adversarial families
//! (construction cost + schedule cost), so regressions in the constructions
//! themselves are caught.

use cr_algos::{GreedyBalance, RoundRobin, Scheduler};
use cr_instances::{greedy_balance_worst_case, round_robin_worst_case};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig3_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_round_robin_family");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[100usize, 500] {
        let instance = round_robin_worst_case(n);
        group.bench_with_input(BenchmarkId::new("RoundRobin", n), &instance, |b, inst| {
            b.iter(|| black_box(RoundRobin::new().makespan(black_box(inst))));
        });
        group.bench_with_input(
            BenchmarkId::new("GreedyBalance", n),
            &instance,
            |b, inst| {
                b.iter(|| black_box(GreedyBalance::new().makespan(black_box(inst))));
            },
        );
    }
    group.finish();
}

fn bench_fig5_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_greedy_balance_family");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &m in &[3usize, 5] {
        let instance = greedy_balance_worst_case(m, 1000, 8);
        group.bench_with_input(
            BenchmarkId::new("GreedyBalance", m),
            &instance,
            |b, inst| {
                b.iter(|| black_box(GreedyBalance::new().makespan(black_box(inst))));
            },
        );
        group.bench_with_input(BenchmarkId::new("RoundRobin", m), &instance, |b, inst| {
            b.iter(|| black_box(RoundRobin::new().makespan(black_box(inst))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_family, bench_fig5_family);
criterion_main!(benches);
