//! Lower bounds on the optimal makespan.
//!
//! * Observation 1: `OPT ≥ Σ_ij r_ij · p_ij` (total workload in the
//!   alternative model interpretation, processed at aggregated speed ≤ 1).
//! * Chain bound: `OPT ≥ n = maxᵢ nᵢ`, because a processor finishes at most
//!   one job per step.
//! * Lemma 5: for the scheduling graph of any *non-wasting* schedule,
//!   `OPT ≥ Σ_k (#_k − 1)`.
//! * Lemma 6: for the scheduling graph of a *balanced* schedule,
//!   `OPT ≥ n ≥ Σ_{k<N} |C_k| / q_k + |C_N| / m`.

use crate::hypergraph::SchedulingGraph;
use crate::instance::Instance;
use crate::rational::Ratio;

/// Observation 1: the total workload `Σ r_ij · p_ij` on the **base**
/// resource, returned exactly.  For multi-resource instances see
/// [`workload_bound_on`] — every resource yields its own Observation 1
/// bound, and [`workload_bound_steps`] takes the strongest.
#[must_use]
pub fn workload_bound(instance: &Instance) -> Ratio {
    instance.total_workload()
}

/// Observation 1 on one resource: the total workload `Σ r^resource_ij ·
/// p_ij`, returned exactly.  Each shared resource is handed out at
/// aggregated speed ≤ 1 per step, so each layer's workload is a valid lower
/// bound on its own.
#[must_use]
pub fn workload_bound_on(instance: &Instance, resource: usize) -> Ratio {
    instance.total_workload_on(resource)
}

/// Converts a non-negative `i128` step count to `usize`, saturating at
/// `usize::MAX`.
///
/// Saturating (rather than collapsing to `0`, as this module did before
/// ISSUE 4) matters because these are *lower* bounds: an instance whose
/// exact bound overflows `usize` needs an astronomically large number of
/// steps, and reporting `0` instead turned the strongest bounds into
/// vacuous ones — normalized-makespan ratios computed against them silently
/// lost their denominator.
fn saturating_steps(b: i128) -> usize {
    usize::try_from(b.max(0)).unwrap_or(usize::MAX)
}

/// Observation 1 rounded up to an integral number of time steps (saturating
/// at `usize::MAX` when the exact bound overflows), taken as the **maximum
/// over all shared resources** — the binding resource gives the strongest
/// workload bound.  Single-resource instances reduce to the scalar
/// Observation 1 exactly as before.
#[must_use]
pub fn workload_bound_steps(instance: &Instance) -> usize {
    (0..instance.resources())
        .map(|r| saturating_steps(workload_bound_on(instance, r).ceil()))
        .max()
        .unwrap_or(0)
}

/// The chain bound `n = maxᵢ nᵢ` (valid for unit-size jobs; for general
/// volumes each job still needs at least one step, so it remains a valid
/// lower bound).
#[must_use]
pub fn chain_bound(instance: &Instance) -> usize {
    instance.max_chain_length()
}

/// For arbitrary volumes, a slightly stronger chain bound: the maximum over
/// processors of `Σ_j ⌈p_ij⌉` (every job needs at least `⌈p⌉` steps even at
/// full speed).  Saturates at `usize::MAX` — both per job and across a
/// chain — when the exact bound overflows.
#[must_use]
pub fn volume_chain_bound(instance: &Instance) -> usize {
    (0..instance.processors())
        .map(|i| {
            instance
                .processor_jobs(i)
                .iter()
                .map(|job| saturating_steps(job.volume.ceil()))
                .fold(0usize, usize::saturating_add)
        })
        .max()
        .unwrap_or(0)
}

/// The combined trivial lower bound `max(⌈Σ r·p⌉, chain bound)` available
/// without any schedule in hand.  This is the bound the RoundRobin analysis
/// (Theorem 3) compares against.
#[must_use]
pub fn trivial_lower_bound(instance: &Instance) -> usize {
    workload_bound_steps(instance)
        .max(chain_bound(instance))
        .max(volume_chain_bound(instance))
}

/// Lemma 5: `OPT ≥ Σ_k (#_k − 1)` for the scheduling graph of a non-wasting
/// schedule.
#[must_use]
pub fn component_bound(graph: &SchedulingGraph) -> usize {
    graph
        .components()
        .iter()
        .map(|c| c.num_edges().saturating_sub(1))
        .sum()
}

/// Lemma 6: `OPT ≥ Σ_{k<N} |C_k| / q_k + |C_N| / m` for the scheduling graph
/// of a balanced schedule on `m` processors.  Returned exactly as a rational.
#[must_use]
pub fn class_bound(graph: &SchedulingGraph, processors: usize) -> Ratio {
    let comps = graph.components();
    let n = comps.len();
    if n == 0 {
        return Ratio::ZERO;
    }
    let mut total = Ratio::ZERO;
    for (k, c) in comps.iter().enumerate() {
        let denom = if k + 1 < n { c.class } else { processors };
        total += Ratio::new(c.num_nodes() as i128, denom.max(1) as i128);
    }
    total
}

/// Lemma 6 rounded up to an integral number of time steps (saturating at
/// `usize::MAX` when the exact bound overflows).
#[must_use]
pub fn class_bound_steps(graph: &SchedulingGraph, processors: usize) -> usize {
    saturating_steps(class_bound(graph, processors).ceil())
}

/// The strongest lower bound available from an instance together with the
/// scheduling graph of a non-wasting, balanced schedule for it.
#[must_use]
pub fn best_lower_bound(instance: &Instance, graph: &SchedulingGraph) -> usize {
    trivial_lower_bound(instance)
        .max(component_bound(graph))
        .max(class_bound_steps(graph, instance.processors()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, InstanceBuilder};
    use crate::job::Job;
    use crate::rational::{ratio, Ratio};
    use crate::schedule::{Schedule, ScheduleBuilder};

    fn fig1_instance() -> Instance {
        Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]])
    }

    fn greedy_fewest_left(inst: &Instance) -> Schedule {
        // Serve active jobs in order of increasing remaining requirement.
        let m = inst.processors();
        let mut b = ScheduleBuilder::new(inst);
        while !b.all_done() {
            let mut order: Vec<usize> = (0..m).filter(|&i| b.is_active(i)).collect();
            order.sort_by_key(|&i| b.remaining_workload(i));
            let mut shares = vec![Ratio::ZERO; m];
            let mut left = Ratio::ONE;
            for i in order {
                let give = b.step_demand(i).min(left);
                shares[i] = give;
                left -= give;
            }
            b.push_step(shares);
        }
        b.finish()
    }

    #[test]
    fn workload_and_chain_bounds() {
        let inst = fig1_instance();
        assert_eq!(workload_bound(&inst), ratio(495, 100));
        assert_eq!(workload_bound_steps(&inst), 5);
        assert_eq!(chain_bound(&inst), 5);
        assert_eq!(trivial_lower_bound(&inst), 5);
    }

    #[test]
    fn volume_chain_bound_counts_large_jobs() {
        let inst = InstanceBuilder::new()
            .processor_jobs([
                Job::new(ratio(1, 10), ratio(5, 2)),
                Job::new(ratio(1, 10), Ratio::ONE),
            ])
            .processor([ratio(1, 2)])
            .build();
        // First processor needs at least ⌈2.5⌉ + 1 = 4 steps.
        assert_eq!(volume_chain_bound(&inst), 4);
        assert_eq!(chain_bound(&inst), 2);
        assert_eq!(trivial_lower_bound(&inst), 4);
    }

    #[test]
    fn overflowing_bounds_saturate_to_usize_max() {
        // One job whose volume exceeds usize::MAX by exactly one: both the
        // workload bound (r = 1, so workload = volume) and the volume-chain
        // bound must saturate instead of collapsing to a vacuous 0.
        let just_over = i128::try_from(usize::MAX).unwrap() + 1;
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ONE, Ratio::new(just_over, 1))])
            .build();
        assert_eq!(workload_bound_steps(&inst), usize::MAX);
        assert_eq!(volume_chain_bound(&inst), usize::MAX);
        assert_eq!(trivial_lower_bound(&inst), usize::MAX);

        // The largest representable bound still converts exactly.
        let at_max = i128::try_from(usize::MAX).unwrap();
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ONE, Ratio::new(at_max, 1))])
            .build();
        assert_eq!(workload_bound_steps(&inst), usize::MAX);
        assert_eq!(volume_chain_bound(&inst), usize::MAX);

        // A chain of huge-but-representable volumes overflows the *sum*:
        // the fold saturates instead of wrapping (or panicking in debug).
        let half = i128::try_from(usize::MAX / 2 + 1).unwrap();
        let inst = InstanceBuilder::new()
            .processor_jobs([
                Job::new(Ratio::ONE, Ratio::new(half, 1)),
                Job::new(Ratio::ONE, Ratio::new(half, 1)),
            ])
            .build();
        assert_eq!(volume_chain_bound(&inst), usize::MAX);
    }

    #[test]
    fn component_and_class_bounds_on_fig1() {
        let inst = fig1_instance();
        let schedule = greedy_fewest_left(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let graph = crate::hypergraph::SchedulingGraph::build(&inst, &trace);
        // Components have 2, 3 and 1 edges → Lemma 5 gives (2-1)+(3-1)+(1-1) = 3.
        assert_eq!(component_bound(&graph), 3);
        // Lemma 6: 5/3 + 6/3 + 1/3 = 4.
        assert_eq!(class_bound(&graph, 3), ratio(4, 1));
        assert_eq!(class_bound_steps(&graph, 3), 4);
        // The combined bound is dominated by the trivial bound here.
        assert_eq!(best_lower_bound(&inst, &graph), 5);
        // All lower bounds are indeed at most the schedule's makespan.
        assert!(best_lower_bound(&inst, &graph) <= trace.makespan());
    }

    #[test]
    fn multi_resource_workload_bound_takes_the_binding_resource() {
        // Base layer sums to 0.75, the extra layer to 2.6: the extra
        // resource is binding and pushes the trivial bound to ⌈2.6⌉ = 3.
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 4), ratio(1, 4)])
            .processor([ratio(1, 4)])
            .extra_layer([vec![ratio(9, 10), ratio(9, 10)], vec![ratio(8, 10)]])
            .build();
        assert_eq!(workload_bound(&inst), ratio(3, 4));
        assert_eq!(workload_bound_on(&inst, 1), ratio(26, 10));
        assert_eq!(workload_bound_steps(&inst), 3);
        assert_eq!(trivial_lower_bound(&inst), 3);
    }

    #[test]
    fn empty_graph_bounds_are_zero() {
        let inst = InstanceBuilder::new().processor([ratio(1, 2)]).build();
        let schedule = Schedule::new(vec![vec![ratio(1, 2)]]);
        let trace = schedule.trace(&inst).unwrap();
        let graph = crate::hypergraph::SchedulingGraph::build(&inst, &trace);
        assert_eq!(component_bound(&graph), 0);
        assert_eq!(class_bound(&graph, 1), Ratio::ONE);
    }
}
