//! # cr-viz — rendering of CRSharing instances and schedules
//!
//! Text and SVG renderings in the spirit of the paper's figures: instances as
//! rows of requirement percentages (Figures 1–5 use exactly this notation),
//! schedules as per-step Gantt rows, and scheduling hypergraphs as component
//! summaries.  The experiment binaries in `cr-bench` use these renderers to
//! regenerate the figures on the terminal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod svg;

pub use render::{
    percent_label, render_components, render_instance, render_schedule, render_share_matrix,
};
pub use svg::schedule_svg;
