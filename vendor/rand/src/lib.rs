//! Minimal, workspace-local stand-in for the `rand` crate.
//!
//! Provides exactly what the instance generators use: a deterministic
//! [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension trait with `random_range` / `random_bool`.
//!
//! The generator is SplitMix64: tiny, fast, platform-independent and
//! statistically solid for experiment sampling.  Determinism is the hard
//! requirement here — every experiment cell must reproduce byte-identically
//! from its seed on any host.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// Random number generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// The raw 64-bit output interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The value one below `self` (used to close half-open ranges).
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                // 128 random bits modulo the span: the bias is at most
                // 2^-64 for the span sizes used in this repository.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let offset = (wide % span) as i128;
                ((lo as i128) + offset) as $ty
            }
            fn prev(self) -> Self {
                self.checked_sub(1)
                    .expect("random_range: empty half-open range")
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&lo) => lo,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("random_range requires an inclusive lower bound")
            }
        };
        let hi = match range.end_bound() {
            Bound::Included(&hi) => hi,
            Bound::Excluded(&hi) => hi.prev(),
            Bound::Unbounded => panic!("random_range requires a bounded upper end"),
        };
        T::sample_inclusive(self, lo, hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against 53 uniform mantissa bits.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.random_range(1u64..=6);
            assert!((1..=6).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(0usize..5);
            assert!(v < 5);
        }
        // Signed ranges.
        for _ in 0..100 {
            let v = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "heads = {heads}");
    }
}
