//! E7 — verifies Theorem 6 empirically: `OptResAssignment2` matches the
//! brute-force optimum (and the two-processor DP where applicable) on random
//! instances, and the domination pruning keeps the configuration counts far
//! below the brute-force state counts.
//!
//! The verification sweep fans out through `cr_bench::pipeline::par_check`.

#![forbid(unsafe_code)]

use cr_algos::{brute_force_with_stats, opt_m_makespan, opt_two_makespan, OptM, Scheduler};
use cr_bench::pipeline::par_check;
use cr_instances::{random_unit_instance, RandomConfig};

fn main() {
    println!("E7 / Theorem 6 — OptResAssignment2 verification\n");

    // Keep the brute-force reference tractable: the undominating search
    // explodes beyond ~12 jobs.
    let mut points = Vec::new();
    for m in 2..=4usize {
        for n in 2..=4usize {
            if m * n > 12 {
                continue;
            }
            for seed in 0..10u64 {
                points.push((m, n, seed));
            }
        }
    }
    let failures = par_check(&points, |&(m, n, seed)| {
        let instance = random_unit_instance(&RandomConfig::uniform(m, n), seed * 31 + n as u64);
        let value = opt_m_makespan(&instance);
        let (brute, _) = brute_force_with_stats(&instance);
        if value != brute {
            return Err(format!(
                "OptM vs brute force mismatch (m={m}, n={n}, seed={seed})"
            ));
        }
        if m == 2 && value != opt_two_makespan(&instance) {
            return Err(format!("OptM vs DP mismatch (m={m}, n={n}, seed={seed})"));
        }
        if OptM::new().makespan(&instance) != value {
            return Err(format!(
                "schedule reconstruction (m={m}, n={n}, seed={seed})"
            ));
        }
        Ok(())
    });
    assert!(
        failures.is_empty(),
        "verification failures:\n{}",
        failures.join("\n")
    );
    println!(
        "optimality: {} random instances verified against brute force — all equal\n",
        points.len()
    );

    println!(
        "{:>4} {:>4} {:>10} {:>16} {:>14}",
        "m", "n", "optimum", "brute states", "time opt_m (ms)"
    );
    for &(m, n) in &[(2usize, 8usize), (2, 16), (3, 5), (3, 7), (4, 3), (4, 4)] {
        let instance = random_unit_instance(&RandomConfig::uniform(m, n), 17);
        let start = std::time::Instant::now();
        let value = opt_m_makespan(&instance);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let states = if m * n <= 12 {
            brute_force_with_stats(&instance).1.states.to_string()
        } else {
            "—".to_string()
        };
        println!("{m:>4} {n:>4} {value:>10} {states:>16} {elapsed:>14.2}");
    }
    println!(
        "\npaper: Theorem 6 — the configuration search with domination pruning is optimal and\n\
         polynomial for every fixed m (the polynomial degree grows with m)."
    );
}
