//! E4 — regenerates Figure 4 / Theorem 4 / Corollary 1: the Partition
//! reduction maps YES-instances to CRSharing instances of optimal makespan 4
//! and NO-instances to makespan ≥ 5.
//!
//! The grid comes from the shared builders in `cr_bench::grids`; the YES/NO
//! certificate checks stay explicit because they exercise the membership
//! reconstruction, not just makespans.

#![forbid(unsafe_code)]

use cr_bench::grids::{fig4_cells, fig4_default_cases};
use cr_bench::pipeline::{Algorithm, Runner};
use cr_instances::reduction::{
    is_yes_instance, partition_to_crsharing, solve_partition, yes_certificate_schedule,
    PartitionReduction,
};

fn main() {
    println!("E4 / Figure 4 — Partition ≤ₚ CRSharing (Theorem 4, Corollary 1)\n");

    let cases = fig4_default_cases();
    let runner = Runner::default();
    let table = runner.run_table("Reduced instances", &fig4_cells(&cases));

    // Theorem 4 gap and the Figure 4a certificate schedules.  Select the
    // exhaustive-search row per case by algorithm name so changes to the
    // per-case line-up fail loudly instead of mispairing rows.
    for values in &cases {
        let brute_row = table
            .results
            .iter()
            .find(|r| {
                r.algorithm == Algorithm::BruteForce.name()
                    && r.instance.starts_with(&format!("{values:?}"))
            })
            .expect("every Partition case has a BruteForce row");
        if is_yes_instance(values) {
            assert_eq!(
                brute_row.makespan,
                PartitionReduction::YES_MAKESPAN,
                "YES-instances must have makespan exactly 4"
            );
            let reduction = partition_to_crsharing(values);
            let membership = solve_partition(values).expect("YES instance");
            let certificate = yes_certificate_schedule(&reduction, &membership);
            assert_eq!(certificate.makespan(&reduction.instance).unwrap(), 4);
        } else {
            assert!(
                brute_row.makespan >= PartitionReduction::NO_MAKESPAN,
                "NO-instances must need at least 5 steps"
            );
        }
    }

    println!("{}", table.to_markdown());
    println!(
        "paper: YES ⟺ optimal makespan 4, NO ⟹ ≥ 5; hence no polynomial algorithm can\n\
         approximate CRSharing within a factor better than 5/4 unless P = NP (Corollary 1)."
    );
}
