//! The named rules. Each rule is individually suppressible with
//! `// lint: allow(<rule>) — <reason>`; `docs/LINTS.md` is the catalog.

pub mod cancel_coverage;
pub mod crate_hygiene;
pub mod lock_discipline;
pub mod panic_hygiene;
pub mod vocab_sync;

/// Every rule name a suppression comment may reference.
pub const RULE_NAMES: [&str; 5] = [
    cancel_coverage::RULE,
    panic_hygiene::RULE,
    lock_discipline::RULE,
    vocab_sync::RULE,
    crate_hygiene::RULE,
];
