//! `cr-serve` — the JSONL face of the batch solver service.
//!
//! Two transports, one protocol (specified in `docs/WIRE.md`):
//!
//! * **stdin mode** (default): reads request objects line by line from
//!   stdin.  A **blank line** flushes the accumulated batch through the
//!   warm [`SolverService`] — responses come back one line each, in input
//!   order, followed by a stdout flush — so a driver process can stream
//!   multiple batches through one process and keep the per-instance
//!   conversion cache warm across them.  EOF flushes the final batch and
//!   exits.  A blank-line flush with no accumulated requests answers with a
//!   structured `bad_request` row instead of being silently swallowed.
//! * **socket mode** (`--listen ADDR`): binds a TCP listener and serves
//!   many concurrent clients through `cr_service::net` — same line
//!   protocol per connection, plus per-client quotas (`quota_exceeded`),
//!   global load shedding (`overloaded`), schedule streaming and graceful
//!   drain on a `{"control":"shutdown"}` frame.  The bound address is
//!   printed as a `{"listening": "..."}` line on stdout so drivers can use
//!   port 0.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p cr-service --bin cr-serve < requests.jsonl
//! cargo run --release -p cr-service --bin cr-serve -- --listen 127.0.0.1:7878 \
//!     [--quota N] [--max-inflight N] [--max-clients N] [--stream-threshold N]
//! ```

use cr_service::net::{Server, ServerConfig};
use cr_service::{wire, SolverService};
use std::io::{self, BufRead, Write};
use std::sync::Arc;

fn flush_batch(
    service: &SolverService,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    out: &mut impl Write,
) {
    if batch.is_empty() {
        return;
    }
    let responses = wire::process_batch(service, batch, *next_id);
    *next_id += batch.len() as u64;
    batch.clear();
    for line in responses {
        writeln!(out, "{line}").expect("write response line");
    }
    out.flush().expect("flush responses");
}

fn serve_stdin() {
    let service = SolverService::with_standard_registry();
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut batch: Vec<String> = Vec::new();
    let mut next_id: u64 = 0;
    for line in stdin.lock().lines() {
        let line = line.expect("read request line");
        if line.trim().is_empty() {
            if batch.is_empty() {
                // A flush with nothing to flush is a protocol error the
                // client should hear about, not a silent no-op.
                let response = wire::empty_flush_line(next_id);
                next_id += 1;
                writeln!(out, "{response}").expect("write response line");
                out.flush().expect("flush responses");
            } else {
                flush_batch(&service, &mut batch, &mut next_id, &mut out);
            }
        } else {
            batch.push(line);
        }
    }
    flush_batch(&service, &mut batch, &mut next_id, &mut out);
}

fn serve_socket(addr: &str, config: ServerConfig) {
    let service = Arc::new(SolverService::with_standard_registry());
    let handle = Server::spawn(service, addr, config)
        .unwrap_or_else(|e| panic!("cr-serve: cannot bind {addr}: {e}"));
    println!("{{\"listening\":\"{}\"}}", handle.addr());
    io::stdout().flush().expect("flush listening line");
    // Serve until a client requests a drain via {"control":"shutdown"};
    // join() then returns once every in-flight batch has answered.
    handle.join();
}

fn parse_usize(flag: &str, value: Option<String>) -> usize {
    value
        .unwrap_or_else(|| panic!("{flag} requires a value"))
        .parse()
        .unwrap_or_else(|e| panic!("{flag}: {e}"))
}

fn main() {
    let mut listen: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => listen = Some(args.next().expect("--listen requires ADDR")),
            "--quota" => config.per_client_quota = parse_usize("--quota", args.next()),
            "--max-inflight" => config.max_inflight = parse_usize("--max-inflight", args.next()),
            "--max-clients" => config.max_clients = parse_usize("--max-clients", args.next()),
            "--stream-threshold" => {
                config.stream.threshold_steps = parse_usize("--stream-threshold", args.next());
            }
            "--help" | "-h" => {
                println!(
                    "usage: cr-serve [--listen ADDR [--quota N] [--max-inflight N] \
                     [--max-clients N] [--stream-threshold N]]\n\
                     Without --listen, serves the JSONL protocol on stdin/stdout."
                );
                return;
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    match listen {
        Some(addr) => serve_socket(&addr, config),
        None => serve_stdin(),
    }
}
