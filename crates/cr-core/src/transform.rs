//! The Lemma 1 normalization: every schedule can be turned into a
//! *non-wasting*, *progressive* and *nested* schedule without increasing its
//! makespan.
//!
//! The paper proves this with a sequence of local exchange arguments.  This
//! module implements an equivalent *constructive* normalization for unit-size
//! jobs: jobs are assigned a fixed priority according to their completion
//! step in the original schedule (predecessors on a chain always complete
//! strictly earlier, so the priority order respects the chain order), and a
//! new schedule is built step by step, always serving active jobs in priority
//! order and giving each job as much of the remaining resource as it can
//! still use.
//!
//! * The new schedule is **non-wasting**: a step only leaves resource unused
//!   when every active job has been completed in it.
//! * It is **progressive**: jobs are filled one after the other, so at most
//!   one resourced job per step is left partially processed.
//! * It is **nested**: a lower-priority job only receives resource in a step
//!   in which every active higher-priority job completes, so a job that
//!   started earlier can never run while a later-started job is unfinished.
//! * No completion time increases: every job completes no later than in the
//!   original schedule, hence the makespan does not increase.  (This is the
//!   standard list-scheduling argument for work-conserving policies whose
//!   priority order is consistent with the precedence order; the property is
//!   additionally exercised by randomized tests.)

use crate::instance::Instance;
use crate::job::JobId;
use crate::rational::Ratio;
use crate::schedule::{Schedule, ScheduleBuilder, ScheduleTrace};

/// Normalizes `schedule` for `instance` into a non-wasting, progressive and
/// nested schedule whose makespan does not exceed the original one
/// (Lemma 1 of the paper).
///
/// The guarantee is stated for unit-size jobs, the setting of the paper's
/// analysis; the function also accepts general instances, where it still
/// produces a feasible normalized schedule but the makespan guarantee is
/// only heuristic.
///
/// # Panics
///
/// Panics if `schedule` is not feasible for `instance`.
#[must_use]
pub fn normalize(instance: &Instance, schedule: &Schedule) -> Schedule {
    let trace = schedule
        .trace(instance)
        .expect("normalize requires a feasible schedule");
    normalize_from_trace(instance, &trace)
}

/// Same as [`normalize`] but starts from an already computed trace.
#[must_use]
pub fn normalize_from_trace(instance: &Instance, trace: &ScheduleTrace) -> Schedule {
    // Priority of a job: (original completion step, original start step
    // descending).  Lower tuple = served earlier.  Completion steps exist for
    // every job of a validated trace.
    let priority = |id: JobId| -> (usize, i64) {
        let completion = trace.completion_step(id).unwrap_or(usize::MAX);
        let start = trace.start_step(id).unwrap_or(0) as i64;
        (completion, -start)
    };

    let m = instance.processors();
    let mut builder = ScheduleBuilder::new(instance);
    // Safety valve: a normalized schedule never needs more steps than the
    // total number of jobs plus the original makespan.
    let step_limit = trace.makespan() + instance.total_jobs() + 1;

    while !builder.all_done() {
        assert!(
            builder.current_step() < step_limit,
            "normalization failed to terminate — schedule or instance is inconsistent"
        );
        let mut order: Vec<usize> = (0..m).filter(|&i| builder.is_active(i)).collect();
        // lint: allow(panic_hygiene) — `order` was filtered to active processors on the previous line
        order.sort_by_key(|&i| priority(builder.active_job(i).expect("active")));

        let mut shares = vec![Ratio::ZERO; m];
        let mut left = Ratio::ONE;
        for i in order {
            if left.is_zero() {
                break;
            }
            let give = builder.step_demand(i).min(left);
            shares[i] = give;
            left -= give;
        }
        builder.push_step(shares);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::properties::PropertyReport;
    use crate::rational::ratio;

    fn fig2_instance() -> Instance {
        InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2), ratio(1, 2), ratio(1, 2)])
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .build()
    }

    #[test]
    fn normalizing_the_unnested_figure2_schedule() {
        let inst = fig2_instance();
        // Figure 2c: non-wasting and progressive but not nested.
        let unnested = Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
        ]);
        assert_eq!(unnested.makespan(&inst).unwrap(), 4);

        let normalized = normalize(&inst, &unnested);
        let trace = normalized.trace(&inst).unwrap();
        assert!(trace.makespan() <= 4);
        let report = PropertyReport::analyze(&trace);
        assert!(
            report.is_normalized(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn normalizing_a_wasteful_schedule_shrinks_it() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 2)])
            .processor([ratio(1, 4)])
            .build();
        // A deliberately wasteful schedule: one job per step.
        let wasteful = Schedule::new(vec![
            vec![ratio(1, 2), Ratio::ZERO],
            vec![Ratio::ZERO, ratio(1, 4)],
            vec![ratio(1, 2), Ratio::ZERO],
        ]);
        assert_eq!(wasteful.makespan(&inst).unwrap(), 3);
        let normalized = normalize(&inst, &wasteful);
        let trace = normalized.trace(&inst).unwrap();
        assert!(trace.makespan() <= 3);
        let report = PropertyReport::analyze(&trace);
        assert!(report.is_normalized());
        // The workload is only 1.25, so the normalized schedule needs 2 steps.
        assert_eq!(trace.makespan(), 2);
    }

    #[test]
    fn normalized_schedule_is_idempotent_in_makespan() {
        let inst = fig2_instance();
        let nested = Schedule::new(vec![
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), ratio(1, 2), Ratio::ZERO],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
            vec![ratio(1, 2), Ratio::ZERO, ratio(1, 2)],
        ]);
        let once = normalize(&inst, &nested);
        let twice = normalize(&inst, &once);
        assert_eq!(
            once.makespan(&inst).unwrap(),
            twice.makespan(&inst).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "feasible schedule")]
    fn normalize_rejects_infeasible_schedules() {
        let inst = fig2_instance();
        let bad = Schedule::new(vec![vec![Ratio::ONE, Ratio::ONE, Ratio::ONE]]);
        let _ = normalize(&inst, &bad);
    }
}
