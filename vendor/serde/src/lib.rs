//! Minimal, workspace-local stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *exact* API surface its crates use: the
//! [`Serialize`] / [`Deserialize`] traits, their derive macros (re-exported
//! from `serde_derive`), and a self-describing [`Value`] tree that
//! `serde_json` renders to and parses from JSON text.
//!
//! The data model is intentionally JSON-shaped (null, bool, number, string,
//! array, object) — exactly what the experiment harness persists.  Numbers
//! keep an exact `i128` representation when possible so that the `Ratio`
//! type's numerators and denominators round-trip losslessly.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (exact integer where possible).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key/value map.  Insertion order is preserved so that serialization
    /// is deterministic (a requirement for byte-identical experiment dumps).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A JSON number: an exact integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integer that fits `i128` (covers every `Ratio` component).
    Int(i128),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// The value as `i128` if it is an exact integer.
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 2f64.powi(96) {
                    Some(f as i128)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered into the serde [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the serde [`Value`] data model.
///
/// The lifetime parameter mirrors the real serde API (`for<'de>` bounds in
/// downstream code must compile unchanged); this implementation never
/// borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Deserializes one named field of an object (helper used by the derive
/// macro expansion).
pub fn de_field<T: for<'de> Deserialize<'de>>(value: &Value, key: &str) -> Result<T, Error> {
    let field = value
        .get(key)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))?;
    T::deserialize(field).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Number(Number::Int(*self as i128))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        match i128::try_from(*self) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => n
                .as_i128()
                .and_then(|i| u128::try_from(i).ok())
                .ok_or_else(|| Error::custom("integer out of range for u128")),
            _ => Err(Error::custom("expected integer for u128")),
        }
    }
}

macro_rules! impl_serde_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Number(Number::Float(f64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $ty),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
