//! Exact rational arithmetic used throughout the CRSharing model.
//!
//! The paper's algorithms (the dynamic program of Algorithm 1, the
//! configuration-domination test of Algorithm 2, the non-wasting / balanced
//! schedule predicates) all rely on *exact* comparisons of sums of resource
//! requirements.  Floating point would make "does the remaining requirement
//! sum exceed 1?" unreliable, so the whole repository represents resource
//! shares as exact rationals with `i128` numerator and denominator.
//!
//! [`Ratio`] is deliberately small and self-contained: construction always
//! normalizes (reduced fraction, positive denominator), arithmetic reduces
//! eagerly and panics with a descriptive message on `i128` overflow (which
//! cannot occur for the instance families shipped in this repository, whose
//! denominators are bounded by a few million).
//!
//! # Two representations: `Ratio` at the boundary, scaled `u64` in hot loops
//!
//! `Ratio` is the **authoritative** representation at every public API
//! boundary — instances, schedules, bounds, serialization — because it is
//! closed under the arithmetic any caller may perform.  The exact solvers in
//! `cr-algos`, however, run their hot search loops on a
//! [`ScaledInstance`](crate::scaled::ScaledInstance), and the schedulers and
//! the `cr-sim` online arbiter run on a
//! [`ScaledScheduleBuilder`](crate::scaled::ScaledScheduleBuilder): all
//! requirements (and workloads) of one instance re-expressed as integer
//! units on the common grid `1/D` (`D` = the denominators' LCM), where sums,
//! capacity comparisons and share splits are single integer ops with no gcd.
//! The conversion round-trips exactly in both directions, so the two
//! representations never disagree; when the LCM would overflow the scaled
//! form's `u64` headroom, solvers and schedulers simply stay on the `Ratio`
//! path.  Property tests in `cr-algos` cross-check the two paths on random
//! instances.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
///
/// # Examples
///
/// ```
/// use cr_core::Ratio;
///
/// let half = Ratio::new(1, 2);
/// let third = Ratio::new(1, 3);
/// assert_eq!(half + third, Ratio::new(5, 6));
/// assert!(half > third);
/// assert_eq!(Ratio::from_percent(50), half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values (Euclid).  Works on
/// `unsigned_abs` so `i128::MIN` inputs are handled exactly; the result
/// always fits `i128` because it divides the (non-`MIN`) companion operand.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    // lint: allow(panic_hygiene) — only fires when both operands are i128::MIN, which the reduced-form invariant excludes
    i128::try_from(a).expect("gcd exceeds i128 (both operands were i128::MIN)")
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };
    /// The rational two (useful for approximation-ratio assertions).
    pub const TWO: Ratio = Ratio { num: 2, den: 1 };

    /// Creates a new ratio `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`, or if normalizing the sign overflows (which
    /// happens only for `i128::MIN`, whose negation does not exist).
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Ratio denominator must be non-zero");
        let (num, den) = if den < 0 {
            (
                num.checked_neg()
                    .expect("Ratio construction overflow (cannot negate i128::MIN numerator)"),
                den.checked_neg()
                    .expect("Ratio construction overflow (cannot negate i128::MIN denominator)"),
            )
        } else {
            (num, den)
        };
        if num == 0 {
            return Ratio { num: 0, den: 1 };
        }
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Creates the integer ratio `n / 1`.
    #[must_use]
    pub fn from_integer(n: i64) -> Self {
        Ratio {
            num: n as i128,
            den: 1,
        }
    }

    /// Creates `p / 100` — convenient because the paper labels all of its
    /// figures with requirements in percent.
    #[must_use]
    pub fn from_percent(p: i64) -> Self {
        Ratio::new(p as i128, 100)
    }

    /// Creates `p / q` from unsigned parts (convenience for generators).
    #[must_use]
    pub fn from_parts(p: u64, q: u64) -> Self {
        Ratio::new(p as i128, q as i128)
    }

    /// Numerator of the reduced fraction (sign carried here).
    #[must_use]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    #[must_use]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value lies in the closed unit interval `[0, 1]`,
    /// the admissible range for resource requirements and shares.
    #[must_use]
    pub fn in_unit_interval(&self) -> bool {
        !self.is_negative() && *self <= Ratio::ONE
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Self {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Minimum of two ratios.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two ratios.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps the value into `[lo, hi]`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        debug_assert!(lo <= hi);
        self.max(lo).min(hi)
    }

    /// Floor of the rational as an integer.
    #[must_use]
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling of the rational as an integer.  Used for the Observation 1
    /// lower bound `⌈Σ r_ij·p_ij⌉` on integral makespans.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Reciprocal.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "cannot take reciprocal of zero");
        Ratio::new(self.den, self.num)
    }

    /// Checked addition that reports overflow instead of panicking.
    #[must_use]
    pub fn checked_add(self, other: Self) -> Option<Self> {
        let num = self
            .num
            .checked_mul(other.den)?
            .checked_add(other.num.checked_mul(self.den)?)?;
        let den = self.den.checked_mul(other.den)?;
        Some(Ratio::new(num, den))
    }

    /// Checked multiplication that reports overflow instead of panicking.
    #[must_use]
    pub fn checked_mul(self, other: Self) -> Option<Self> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, other.den);
        let g2 = gcd(other.num, self.den);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Some(Ratio::new(num, den))
    }

    /// Approximate `f64` value (for reporting / plotting only, never for
    /// scheduling decisions).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Constructs the closest rational with the given denominator to an
    /// `f64` in `[0, 1]`.  Useful when importing measured traces.
    #[must_use]
    pub fn from_f64_with_denom(x: f64, den: u64) -> Self {
        let den = den.max(1) as i128;
        let num = (x * den as f64).round() as i128;
        Ratio::new(num, den)
    }

    /// Rounds the value **down** to the nearest multiple of `1/denominator`.
    ///
    /// This is the floor step of the deterministic largest-remainder
    /// splitting used by the scheduling layer (see
    /// [`scaled::largest_remainder_split_ratio`](crate::scaled::largest_remainder_split_ratio)):
    /// quantities snapped to an instance's unit grid keep bounded
    /// denominators over arbitrarily long schedules, and snapping down never
    /// overuses the resource.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is not positive or if `num · denominator`
    /// overflows `i128`.
    #[must_use]
    pub fn floor_to_denominator(&self, denominator: i128) -> Self {
        assert!(denominator > 0, "grid denominator must be positive");
        let scaled = self
            .num
            .checked_mul(denominator)
            .expect("Ratio floor_to_denominator overflow")
            .div_euclid(self.den);
        Ratio::new(scaled, denominator)
    }

    /// Sum of a slice (convenience wrapper that avoids iterator adapters in
    /// hot inner loops of the algorithms crate).
    #[must_use]
    pub fn sum_slice(values: &[Ratio]) -> Ratio {
        let mut acc = Ratio::ZERO;
        for v in values {
            acc += *v;
        }
        acc
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // Both denominators are positive, so cross multiplication preserves
        // the order.  Values in this repository are small enough that the
        // products fit into i128 comfortably; use checked ops defensively.
        let lhs = self
            .num
            .checked_mul(other.den)
            // lint: allow(panic_hygiene) — overflow here means the small-reduced-terms invariant was already broken; fail loudly
            .expect("Ratio comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            // lint: allow(panic_hygiene) — overflow here means the small-reduced-terms invariant was already broken; fail loudly
            .expect("Ratio comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, other: Ratio) -> Ratio {
        // lint: allow(panic_hygiene) — the operator form panics on overflow by design; checked_add is the fallible surface
        self.checked_add(other).expect("Ratio addition overflow")
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, other: Ratio) {
        *self = *self + other;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, other: Ratio) -> Ratio {
        self + (-other)
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, other: Ratio) {
        *self = *self - other;
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, other: Ratio) -> Ratio {
        self.checked_mul(other)
            // lint: allow(panic_hygiene) — the operator form panics on overflow by design; checked_mul is the fallible surface
            .expect("Ratio multiplication overflow")
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, other: Ratio) {
        *self = *self * other;
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division by the reciprocal is the intended exact-rational definition.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, other: Ratio) -> Ratio {
        self * other.recip()
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, other: Ratio) {
        *self = *self / other;
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |a, b| a + *b)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::from_integer(n)
    }
}

impl From<u32> for Ratio {
    fn from(n: u32) -> Self {
        Ratio::from_integer(n as i64)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Ratio`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError(pub String);

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRatioError {}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"a/b"`, `"a"` or `"x%"` literals.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some(pct) = s.strip_suffix('%') {
            let p: i128 = pct
                .trim()
                .parse()
                .map_err(|_| ParseRatioError(s.to_string()))?;
            return Ok(Ratio::new(p, 100));
        }
        if let Some((a, b)) = s.split_once('/') {
            let num: i128 = a
                .trim()
                .parse()
                .map_err(|_| ParseRatioError(s.to_string()))?;
            let den: i128 = b
                .trim()
                .parse()
                .map_err(|_| ParseRatioError(s.to_string()))?;
            if den == 0 {
                return Err(ParseRatioError(s.to_string()));
            }
            return Ok(Ratio::new(num, den));
        }
        let num: i128 = s.parse().map_err(|_| ParseRatioError(s.to_string()))?;
        Ok(Ratio::new(num, 1))
    }
}

/// Shorthand constructor used pervasively in tests and generators.
#[must_use]
pub fn ratio(num: i128, den: i128) -> Ratio {
    Ratio::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
        assert_eq!(Ratio::new(0, 7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "construction overflow")]
    fn min_numerator_negation_panics_descriptively() {
        let _ = Ratio::new(i128::MIN, -1);
    }

    #[test]
    #[should_panic(expected = "construction overflow")]
    fn min_denominator_negation_panics_descriptively() {
        let _ = Ratio::new(1, i128::MIN);
    }

    #[test]
    fn extreme_but_valid_constructions_still_work() {
        assert_eq!(Ratio::new(i128::MIN + 1, -1).numer(), i128::MAX);
        assert_eq!(Ratio::new(-1, 1), Ratio::new(1, -1));
        // i128::MIN numerators are representable; gcd works on unsigned_abs.
        assert_eq!(Ratio::new(i128::MIN, 1).numer(), i128::MIN);
        assert_eq!(Ratio::new(i128::MIN, 2), Ratio::new(i128::MIN / 2, 1));
        assert_eq!(Ratio::new(i128::MIN, i128::MAX).denom(), i128::MAX);
    }

    #[test]
    #[should_panic(expected = "floor_to_denominator overflow")]
    fn floor_to_denominator_overflow_panics_descriptively() {
        let _ = Ratio::new(i128::MAX / 2, 1).floor_to_denominator(1_000);
    }

    #[test]
    fn basic_arithmetic() {
        let a = ratio(1, 3);
        let b = ratio(1, 6);
        assert_eq!(a + b, ratio(1, 2));
        assert_eq!(a - b, ratio(1, 6));
        assert_eq!(a * b, ratio(1, 18));
        assert_eq!(a / b, ratio(2, 1));
        assert_eq!(-a, ratio(-1, 3));
    }

    #[test]
    fn assign_ops() {
        let mut x = ratio(1, 4);
        x += ratio(1, 4);
        assert_eq!(x, ratio(1, 2));
        x -= ratio(1, 8);
        assert_eq!(x, ratio(3, 8));
        x *= ratio(2, 1);
        assert_eq!(x, ratio(3, 4));
        x /= ratio(3, 1);
        assert_eq!(x, ratio(1, 4));
    }

    #[test]
    fn ordering() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < Ratio::ZERO);
        assert!(ratio(7, 7) == Ratio::ONE);
        assert!(ratio(101, 100) > Ratio::ONE);
        let mut v = vec![ratio(3, 4), ratio(1, 4), ratio(1, 2)];
        v.sort();
        assert_eq!(v, vec![ratio(1, 4), ratio(1, 2), ratio(3, 4)]);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(ratio(7, 2).floor(), 3);
        assert_eq!(ratio(7, 2).ceil(), 4);
        assert_eq!(ratio(-7, 2).floor(), -4);
        assert_eq!(ratio(-7, 2).ceil(), -3);
        assert_eq!(ratio(4, 2).ceil(), 2);
        assert_eq!(ratio(4, 2).floor(), 2);
        assert_eq!(Ratio::ZERO.ceil(), 0);
    }

    #[test]
    fn unit_interval_check() {
        assert!(Ratio::ZERO.in_unit_interval());
        assert!(Ratio::ONE.in_unit_interval());
        assert!(ratio(1, 2).in_unit_interval());
        assert!(!ratio(-1, 2).in_unit_interval());
        assert!(!ratio(3, 2).in_unit_interval());
    }

    #[test]
    fn percent_helpers() {
        assert_eq!(Ratio::from_percent(25), ratio(1, 4));
        assert_eq!(Ratio::from_percent(100), Ratio::ONE);
        assert_eq!(Ratio::from_percent(0), Ratio::ZERO);
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(ratio(1, 3).min(ratio(1, 2)), ratio(1, 3));
        assert_eq!(ratio(1, 3).max(ratio(1, 2)), ratio(1, 2));
        assert_eq!(ratio(5, 2).clamp(Ratio::ZERO, Ratio::ONE), Ratio::ONE);
        assert_eq!(ratio(-5, 2).clamp(Ratio::ZERO, Ratio::ONE), Ratio::ZERO);
    }

    #[test]
    fn sum_implementations() {
        let xs = vec![ratio(1, 4), ratio(1, 4), ratio(1, 2)];
        let s1: Ratio = xs.iter().sum();
        let s2: Ratio = xs.iter().copied().sum();
        let s3 = Ratio::sum_slice(&xs);
        assert_eq!(s1, Ratio::ONE);
        assert_eq!(s2, Ratio::ONE);
        assert_eq!(s3, Ratio::ONE);
    }

    #[test]
    fn parsing() {
        assert_eq!("1/2".parse::<Ratio>().unwrap(), ratio(1, 2));
        assert_eq!("  3 / 9 ".parse::<Ratio>().unwrap(), ratio(1, 3));
        assert_eq!("42".parse::<Ratio>().unwrap(), Ratio::from_integer(42));
        assert_eq!("75%".parse::<Ratio>().unwrap(), ratio(3, 4));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("abc".parse::<Ratio>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for r in [
            ratio(1, 3),
            ratio(-7, 5),
            Ratio::ZERO,
            Ratio::from_integer(9),
        ] {
            let s = r.to_string();
            assert_eq!(s.parse::<Ratio>().unwrap(), r);
        }
    }

    #[test]
    fn f64_conversions() {
        assert!((ratio(1, 3).to_f64() - 0.333_333).abs() < 1e-5);
        assert_eq!(Ratio::from_f64_with_denom(0.25, 100), ratio(1, 4));
        assert_eq!(Ratio::from_f64_with_denom(0.333, 1000), ratio(333, 1000));
    }

    #[test]
    fn serde_roundtrip() {
        let r = ratio(7, 13);
        let json = serde_json::to_string(&r).unwrap();
        let back: Ratio = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let huge = Ratio::new(i128::MAX / 2, 1);
        assert!(huge.checked_mul(huge).is_none());
        assert!(huge.checked_add(huge).is_some());
        let huge = Ratio::new(i128::MAX - 1, 1);
        assert!(huge.checked_add(huge).is_none());
    }

    #[test]
    fn floor_to_denominator_snaps_down() {
        assert_eq!(ratio(1, 3).floor_to_denominator(100), ratio(33, 100));
        assert_eq!(ratio(1, 2).floor_to_denominator(100), ratio(1, 2));
        assert_eq!(ratio(99, 100).floor_to_denominator(10), ratio(9, 10));
        assert_eq!(Ratio::ZERO.floor_to_denominator(7), Ratio::ZERO);
        assert_eq!(ratio(-1, 3).floor_to_denominator(3), ratio(-1, 3));
        // Never increases the value, never moves by more than one grid step.
        for (n, d) in [(7i128, 13i128), (5, 8), (123, 997)] {
            let x = ratio(n, d);
            let snapped = x.floor_to_denominator(1000);
            assert!(snapped <= x);
            assert!(x - snapped < ratio(1, 1000));
        }
    }

    #[test]
    fn recip() {
        assert_eq!(ratio(2, 3).recip(), ratio(3, 2));
        assert_eq!(ratio(-2, 3).recip(), ratio(-3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Ratio::ZERO.recip();
    }
}
