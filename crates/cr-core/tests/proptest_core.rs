//! Property-based tests for the core model: rational arithmetic laws,
//! schedule-builder/trace agreement and feasibility invariants.

use cr_core::{Instance, Ratio, Schedule, ScheduleBuilder};
use proptest::prelude::*;

/// Strategy for moderate rationals (numerators/denominators small enough that
/// products of several of them stay far from overflow).
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-200i128..=200, 1i128..=200).prop_map(|(n, d)| Ratio::new(n, d))
}

/// Strategy for requirements on the percent grid.
fn requirement() -> impl Strategy<Value = Ratio> {
    (1i64..=100).prop_map(Ratio::from_percent)
}

fn unit_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec(prop::collection::vec(requirement(), 1..=5), 1..=4)
        .prop_map(Instance::unit_from_requirements)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn addition_is_commutative_and_associative(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_distributes_over_addition(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn subtraction_and_negation_agree(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!(a - a, Ratio::ZERO);
    }

    #[test]
    fn division_inverts_multiplication(a in small_ratio(), b in small_ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn ordering_is_consistent_with_subtraction(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a < b, (a - b).is_negative());
        prop_assert_eq!(a == b, (a - b).is_zero());
        prop_assert_eq!(a.min(b) <= a.max(b), true);
    }

    #[test]
    fn floor_ceil_bracket_the_value(a in small_ratio()) {
        let fl = Ratio::from_integer(a.floor() as i64);
        let ce = Ratio::from_integer(a.ceil() as i64);
        prop_assert!(fl <= a);
        prop_assert!(a <= ce);
        prop_assert!(ce - fl <= Ratio::ONE);
    }

    #[test]
    fn display_parse_roundtrip(a in small_ratio()) {
        let text = a.to_string();
        prop_assert_eq!(text.parse::<Ratio>().unwrap(), a);
    }

    /// The builder's internal state always agrees with re-simulating the
    /// produced schedule through the trace machinery.
    #[test]
    fn builder_and_trace_agree(instance in unit_instance(), seed in 0u64..1000) {
        // A deterministic pseudo-random work-conserving policy.
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(&instance);
        let mut state = seed;
        let mut guard = 0usize;
        while !builder.all_done() {
            guard += 1;
            prop_assert!(guard <= instance.total_jobs() * 2 + 4, "policy failed to terminate");
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let offset = (state >> 33) as usize % m.max(1);
            let mut shares = vec![Ratio::ZERO; m];
            let mut left = Ratio::ONE;
            for k in 0..m {
                let i = (k + offset) % m;
                if !builder.is_active(i) {
                    continue;
                }
                let give = builder.step_demand(i).min(left);
                shares[i] = give;
                left -= give;
            }
            builder.push_step(shares);
        }
        let schedule = builder.finish();
        let trace = schedule.trace(&instance).expect("builder produced a feasible schedule");
        prop_assert_eq!(trace.makespan(), schedule.num_steps());
        // The total useful consumption equals the total workload.
        let consumed: Ratio = (0..trace.num_steps()).map(|t| trace.consumed_total(t)).sum();
        prop_assert_eq!(consumed, instance.total_workload());
    }

    /// Truncating a feasible schedule leaves jobs unfinished (the validator
    /// notices), and over-assigning shares is rejected.
    #[test]
    fn validator_rejects_bad_schedules(instance in unit_instance()) {
        prop_assume!(instance.total_workload() > Ratio::ONE);
        // One step cannot finish everything.
        let single_step = Schedule::new(vec![vec![Ratio::new(1, instance.processors() as i128); instance.processors()]]);
        prop_assert!(single_step.trace(&instance).is_err());

        let overused = Schedule::new(vec![vec![Ratio::ONE; instance.processors()]]);
        if instance.processors() > 1 {
            prop_assert!(overused.trace(&instance).is_err());
        }
    }
}
