//! Gallery of the paper's worst-case constructions (Figures 3 and 5) and the
//! illustrative examples (Figures 1 and 2), rendered as text.
//!
//! Run with:
//! ```text
//! cargo run --example worst_case_gallery
//! ```

use crsharing::algos::{opt_two_makespan, GreedyBalance, RoundRobin, Scheduler};
use crsharing::core::{bounds, transform};
use crsharing::instances::{
    figure1_instance, figure2_instance, greedy_balance_worst_case, round_robin_worst_case,
    round_robin_worst_case_opt,
};
use crsharing::viz::{render_instance, render_schedule};

fn main() {
    // ---------------------------------------------------------------- Figure 1
    println!("── Figure 1: hypergraph running example ────────────────────────");
    let fig1 = figure1_instance();
    println!("{}", render_instance(&fig1));

    // ---------------------------------------------------------------- Figure 2
    println!("── Figure 2: nested vs. unnested schedules ─────────────────────");
    let fig2 = figure2_instance();
    println!("{}", render_instance(&fig2));
    let greedy_schedule = GreedyBalance::new().schedule(&fig2);
    let normalized = transform::normalize(&fig2, &greedy_schedule);
    let trace = normalized.trace(&fig2).expect("feasible");
    println!("normalized (non-wasting, progressive, nested) schedule:");
    println!("{}", render_schedule(&fig2, &trace));

    // ---------------------------------------------------------------- Figure 3
    println!("── Figure 3: RoundRobin worst case (ratio → 2) ─────────────────");
    println!("{:>6} {:>8} {:>8} {:>8}", "n", "RR", "OPT", "ratio");
    for n in [5, 10, 25, 50, 100, 250] {
        let inst = round_robin_worst_case(n);
        let rr = RoundRobin::new().makespan(&inst);
        let opt = if n <= 50 {
            opt_two_makespan(&inst)
        } else {
            round_robin_worst_case_opt(n)
        };
        println!(
            "{:>6} {:>8} {:>8} {:>8.3}",
            n,
            rr,
            opt,
            rr as f64 / opt as f64
        );
    }
    println!();

    // ---------------------------------------------------------------- Figure 5
    println!("── Figure 5: GreedyBalance worst case (ratio → 2 − 1/m) ────────");
    let fig5 = greedy_balance_worst_case(3, 100, 3);
    println!("{}", render_instance(&fig5));
    println!(
        "{:>4} {:>8} {:>10} {:>12} {:>10}",
        "m", "blocks", "Greedy", "workload LB", "ratio"
    );
    for m in 2..=6 {
        let blocks = 4.min(crsharing::instances::greedy_balance_max_blocks(m, 1000));
        let inst = greedy_balance_worst_case(m, 1000, blocks);
        let greedy = GreedyBalance::new().makespan(&inst);
        let lb = bounds::workload_bound_steps(&inst);
        println!(
            "{:>4} {:>8} {:>10} {:>12} {:>10.3}  (2 − 1/m = {:.3})",
            m,
            blocks,
            greedy,
            lb,
            greedy as f64 / lb as f64,
            2.0 - 1.0 / m as f64
        );
    }
}
