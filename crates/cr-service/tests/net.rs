//! Socket serving tier contracts: multi-client byte-identity, order
//! stability, quota/overload shedding as structured errors, schedule
//! streaming, the empty-flush regression and graceful drain.

use cr_service::net::{Server, ServerConfig, ServerHandle};
use cr_service::wire::{self, StreamPolicy};
use cr_service::SolverService;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// The committed CI smoke batch (10 mixed requests, one over budget).
fn smoke_lines() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/smoke_batch.jsonl");
    std::fs::read_to_string(path)
        .expect("read smoke batch")
        .lines()
        .map(str::to_string)
        .collect()
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let service = Arc::new(SolverService::with_standard_registry());
    Server::spawn(service, "127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A test client: connects, sends `lines` plus a flushing blank line, reads
/// `expect` response lines.
fn drive(addr: std::net::SocketAddr, lines: &[String], expect: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    for line in lines {
        writeln!(stream, "{line}").expect("send request line");
    }
    writeln!(stream).expect("send flush line");
    stream.flush().expect("flush requests");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        responses.push(line.trim_end().to_string());
    }
    responses
}

/// The single-client reference rendering: exactly what the stdin mode (and
/// a lone socket client) would answer.
fn reference_responses(lines: &[String]) -> Vec<String> {
    let service = SolverService::with_standard_registry();
    wire::process_batch(&service, lines, 0)
}

#[test]
fn concurrent_clients_get_byte_identical_order_stable_responses() {
    const CLIENTS: usize = 6;
    let handle = spawn_server(ServerConfig::default());
    let addr = handle.addr();
    let lines = smoke_lines();
    let reference = reference_responses(&lines);

    let workers: Vec<std::thread::JoinHandle<Vec<String>>> = (0..CLIENTS)
        .map(|_| {
            let lines = lines.clone();
            std::thread::spawn(move || drive(addr, &lines, 10))
        })
        .collect();
    for worker in workers {
        let responses = worker.join().expect("client thread");
        assert_eq!(
            responses, reference,
            "a concurrent client's responses diverged from the single-client reference"
        );
        for (i, response) in responses.iter().enumerate() {
            assert!(
                response.starts_with(&format!("{{\"id\":{i},")),
                "order instability at slot {i}: {response}"
            );
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.connections, CLIENTS as u64);
    assert_eq!(stats.served, (CLIENTS * 10) as u64);
    assert_eq!(stats.inflight, 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn quota_rejections_are_structured_and_order_stable() {
    let handle = spawn_server(ServerConfig {
        per_client_quota: 4,
        ..ServerConfig::default()
    });
    let lines = smoke_lines();
    let reference = reference_responses(&lines);
    let responses = drive(handle.addr(), &lines, 10);
    // The first four slots are admitted and byte-identical to the
    // unthrottled reference; the rest answer quota_exceeded in order.
    assert_eq!(responses[..4], reference[..4]);
    for (i, response) in responses.iter().enumerate().skip(4) {
        assert!(
            response.contains("\"kind\":\"quota_exceeded\""),
            "slot {i} must be a structured quota rejection: {response}"
        );
        assert!(
            response.starts_with(&format!("{{\"id\":{i},")),
            "{response}"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.served, 4);
    assert_eq!(stats.quota_rejected, 6);
    handle.shutdown();
    handle.join();
}

#[test]
fn exhausted_global_cap_sheds_the_whole_flush_as_overloaded() {
    let handle = spawn_server(ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let lines = smoke_lines();
    let responses = drive(handle.addr(), &lines, 10);
    for (i, response) in responses.iter().enumerate() {
        assert!(
            response.contains("\"kind\":\"overloaded\""),
            "slot {i} must be shed: {response}"
        );
        assert!(
            response.starts_with(&format!("{{\"id\":{i},")),
            "{response}"
        );
    }
    assert_eq!(handle.stats().overloaded, 10);
    handle.shutdown();
    handle.join();
}

#[test]
fn empty_flush_answers_bad_request_and_ids_keep_counting() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // A lone blank line: previously swallowed silently, now a structured
    // bad_request row.
    writeln!(stream).expect("send empty flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.contains("\"kind\":\"bad_request\""), "{line}");
    assert!(line.contains("empty batch"), "{line}");
    assert!(line.starts_with("{\"id\":0,"), "{line}");
    // The empty flush consumed id 0; a real request now answers as id 1.
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50,50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read response");
    assert!(line.starts_with("{\"id\":1,"), "{line}");
    assert!(line.contains("\"makespan\":2"), "{line}");
    handle.shutdown();
    handle.join();
}

#[test]
fn long_schedules_stream_and_reassemble_byte_identically() {
    let handle = spawn_server(ServerConfig {
        stream: StreamPolicy {
            threshold_steps: 3,
            chunk_steps: 2,
        },
        ..ServerConfig::default()
    });
    // Three chained 100% jobs: a 3-step schedule, over the 3-step threshold
    // → head + 2 chunks + end.
    let request = vec![
        r#"{"method":"EqualShare","rows":[[100],[100],[100]],"want_schedule":true}"#.to_string(),
    ];
    let frames = drive(handle.addr(), &request, 4);
    assert!(frames[0].contains("\"frame\":\"head\""), "{}", frames[0]);
    assert!(frames[0].contains("\"schedule\":null"), "{}", frames[0]);
    assert!(
        frames[0].contains("\"stream\":{\"steps\":3,\"chunks\":2,\"chunk_steps\":2}"),
        "{}",
        frames[0]
    );
    assert!(frames[1].contains("\"frame\":\"chunk\""), "{}", frames[1]);
    assert!(frames[2].contains("\"seq\":1"), "{}", frames[2]);
    assert!(frames[3].contains("\"frame\":\"end\""), "{}", frames[3]);

    let assembled = wire::assemble_streamed(&frames).expect("reassemble stream");
    let reference = reference_responses(&request);
    assert_eq!(assembled, reference[0], "streamed ≠ buffered response");
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_control_frame_drains_gracefully() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Pending (un-flushed) work plus a shutdown control frame: the pending
    // batch completes before the drain acknowledgment.
    writeln!(stream, r#"{{"method":"OptTwo","rows":[[60,40],[40,60]]}}"#).expect("send");
    writeln!(stream, r#"{{"control":"stats"}}"#).expect("send stats");
    writeln!(stream, r#"{{"control":"shutdown"}}"#).expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stats");
    assert!(line.contains("\"control\":\"stats\""), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("read pending response");
    assert!(line.contains("\"makespan\":2"), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("read drain ack");
    assert!(
        line.contains("\"control\":\"shutdown\"") && line.contains("\"draining\":true"),
        "{line}"
    );
    // Clean close after the ack.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read EOF"), 0);
    assert!(handle.is_draining());
    handle.join();
}

#[test]
fn draining_server_answers_new_flushes_with_draining_errors() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Ensure the connection is up before the drain starts.
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.contains("\"makespan\":1"), "{line}");

    handle.shutdown();
    // An explicit flush after the drain started answers with structured
    // draining rows (the connection is not dropped mid-protocol).
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read draining row");
    assert!(line.contains("\"kind\":\"draining\""), "{line}");
    drop(stream);
    handle.join();
}
