//! E6 — runtime scaling of `OptResAssignment` (the exact O(n²) dynamic
//! program for two processors, Theorem 5), dense versus sparse variant.

use cr_algos::{opt_two_makespan, opt_two_makespan_sparse};
use cr_instances::{random_unit_instance, round_robin_worst_case, RandomConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_opt_two(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_two");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[32usize, 128, 512, 1024] {
        let instance = random_unit_instance(&RandomConfig::uniform(2, n), 11);
        group.bench_with_input(BenchmarkId::new("dense", n), &instance, |b, inst| {
            b.iter(|| black_box(opt_two_makespan(black_box(inst))));
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &instance, |b, inst| {
            b.iter(|| black_box(opt_two_makespan_sparse(black_box(inst))));
        });
    }
    group.finish();
}

fn bench_opt_two_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_two_fig3_family");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[100usize, 400] {
        let instance = round_robin_worst_case(n);
        group.bench_with_input(BenchmarkId::new("dense", n), &instance, |b, inst| {
            b.iter(|| black_box(opt_two_makespan(black_box(inst))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_opt_two, bench_opt_two_adversarial);
criterion_main!(benches);
