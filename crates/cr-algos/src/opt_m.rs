//! `OptResAssignment2` — the exact polynomial-time algorithm for any fixed
//! number of processors `m` (Algorithm 2, Theorem 6 of the paper).
//!
//! The algorithm performs a breadth-first search over *configurations*: the
//! vector of per-processor completed-job counts together with the amount of
//! resource already spent on each processor's current frontier job.  Round by
//! round it expands every configuration into its possible successors
//! (restricted, as justified by Lemma 1, to non-wasting and progressive
//! steps, i.e. a set of frontier jobs that complete plus at most one job that
//! receives the leftover), removes duplicates and *dominated* configurations
//! (Lemma 4), and stops as soon as a configuration with all jobs completed
//! appears.  The number of surviving configurations is polynomial in `n` for
//! fixed `m`, which yields Theorem 6's polynomial running time.
//!
//! Two implementations share this file's entry points: the hot path runs the
//! search on a [`ScaledInstance`] through the internal `scaled_engine` module (integer
//! units, packed configuration keys, FxHash memoization, rayon-parallel
//! round expansion), and the `Ratio`-based search is retained as
//! [`opt_m_makespan_rational`] — the fallback when scaling would overflow
//! (or a search round outgrows the engine's `u32` parent-index headroom,
//! surfaced as a structured [`crate::SearchError`]) and the reference the
//! property tests cross-check against.
//!
//! Both paths enumerate successors through the shared pruned DFS enumerator
//! (the internal `subset_enum` module), so any number of simultaneously active
//! processors is supported.  The pre-ISSUE-4 rational path scanned
//! `1u32 << k` subset masks, which shift-overflowed for `k ≥ 32` active
//! processors — a debug panic, and a silent wrap to a wrong (possibly
//! empty) successor enumeration in release builds.

use crate::scaled_engine;
use crate::subset_enum::{for_each_choice_cancellable, EnumScratch, CHOICE_CHECK_STRIDE};
use crate::traits::Scheduler;
use cr_core::{
    CancelGate, CancelReason, CancelToken, Instance, Ratio, ScaledInstance, Schedule,
    ScheduleBuilder,
};
use std::collections::HashMap;

/// A configuration: how many jobs each processor has completed and how much
/// resource has been spent on its current frontier job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Config {
    /// Completed job count per processor (the paper's `jᵢ(t)`).
    pub completed: Vec<usize>,
    /// Resource already spent on the active (frontier) job per processor
    /// (the paper's `vᵢ(t)`); zero when the frontier job has not started.
    pub spent: Vec<Ratio>,
}

impl Config {
    /// The initial configuration: nothing completed, nothing spent.
    pub(crate) fn initial(m: usize) -> Self {
        Config {
            completed: vec![0; m],
            spent: vec![Ratio::ZERO; m],
        }
    }

    /// Whether every processor has completed all of its jobs.
    pub(crate) fn is_final(&self, instance: &Instance) -> bool {
        self.completed
            .iter()
            .enumerate()
            .all(|(i, &c)| c >= instance.jobs_on(i))
    }

    /// Remaining requirement of processor `i`'s frontier job, or `None` if
    /// the processor has no jobs left.
    pub(crate) fn remaining(&self, instance: &Instance, i: usize) -> Option<Ratio> {
        if self.completed[i] < instance.jobs_on(i) {
            let req = instance.processor_jobs(i)[self.completed[i]].requirement;
            Some(req - self.spent[i])
        } else {
            None
        }
    }

    /// `true` if `self` dominates `other`: it is at least as far on every
    /// processor (more jobs completed, or equally many and at least as much
    /// spent on the frontier job).
    pub(crate) fn dominates(&self, other: &Config) -> bool {
        self.completed
            .iter()
            .zip(&other.completed)
            .zip(self.spent.iter().zip(&other.spent))
            .all(|((&ca, &cb), (&sa, &sb))| ca > cb || (ca == cb && sa >= sb))
    }
}

/// The decision taken in one time step: which frontier jobs complete and
/// which single processor (if any) receives the leftover resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StepChoice {
    /// Processors whose frontier job completes in this step.
    pub finished: Vec<usize>,
    /// Processor that receives the remaining resource without completing,
    /// together with the amount it receives.
    pub partial: Option<(usize, Ratio)>,
}

/// Generates all successor configurations of `config` reachable in one
/// normalized (non-wasting, progressive) time step, together with the step
/// decision that produces them.
///
/// Restricting the search to such steps is justified by Lemma 1: some optimal
/// schedule is non-wasting, progressive and nested, and for unit-size jobs
/// every such step completes at least one job.
///
/// Runs on the shared pruned DFS enumerator (`crate::subset_enum`): only
/// fitting subsets of the requirement-sorted active processors are visited,
/// zero-requirement frontiers always complete (the variants skipping them
/// are strictly dominated), and the active-processor count is unbounded.
pub(crate) fn successors_cancellable(
    instance: &Instance,
    config: &Config,
    gate: &mut CancelGate,
) -> Result<Vec<(Config, StepChoice)>, CancelReason> {
    let m = instance.processors();
    let active: Vec<usize> = (0..m)
        .filter(|&i| config.completed[i] < instance.jobs_on(i))
        .collect();
    if active.is_empty() {
        return Ok(Vec::new());
    }
    let remaining: Vec<Ratio> = active
        .iter()
        // lint: allow(panic_hygiene) — `active` holds exactly the processors whose remaining() is Some
        .map(|&i| config.remaining(instance, i).expect("active processor"))
        .collect();

    let mut scratch = EnumScratch::default();
    let mut out = Vec::new();
    for_each_choice_cancellable(
        &remaining,
        Ratio::ONE,
        &mut scratch,
        gate,
        &mut |finished, partial| {
            let mut next = config.clone();
            let mut finished_procs = Vec::with_capacity(finished.len());
            // lint: allow(cancel_coverage) — bounded: `finished` is a subset of the <= m active processors
            for &entry in finished {
                let i = active[entry as usize];
                next.completed[i] += 1;
                next.spent[i] = Ratio::ZERO;
                finished_procs.push(i);
            }
            let partial = partial.map(|(entry, amount)| {
                let p = active[entry as usize];
                next.spent[p] += amount;
                (p, amount)
            });
            out.push((
                next,
                StepChoice {
                    finished: finished_procs,
                    partial,
                },
            ));
        },
    )?;
    Ok(out)
}

/// One node of the round-by-round search, with a back pointer for schedule
/// reconstruction.
#[derive(Debug, Clone)]
struct Node {
    config: Config,
    parent: usize,
    choice: Option<StepChoice>,
}

fn assert_unit(instance: &Instance) {
    assert!(
        instance.is_unit_size(),
        "OptResAssignment2 requires unit-size jobs (the setting of Theorem 6)"
    );
}

/// Runs the configuration search and returns, per round, the surviving
/// (non-dominated) nodes.  The search stops after the first round containing
/// a final configuration.
fn run_search(instance: &Instance) -> Vec<Vec<Node>> {
    // lint: allow(panic_hygiene) — with no round cap the search always reaches a final configuration, so the limited form never returns None
    run_search_limited(instance, None).expect("uncapped search reaches a final configuration")
}

/// [`run_search`] with a hard cap on the number of expanded rounds (the
/// solver layer's `max_rounds` budget on the rational path).  `None` when
/// the cap cut the search off before any final configuration appeared —
/// the search genuinely stops early, mirroring the scaled engine's
/// `run_search_capped`.
fn run_search_limited(instance: &Instance, round_cap: Option<usize>) -> Option<Vec<Vec<Node>>> {
    run_search_limited_cancellable(instance, round_cap, &CancelToken::never())
        // lint: allow(panic_hygiene) — a never-token cannot fire
        .expect("a never token cannot fire")
}

/// [`run_search_limited`] with cooperative cancellation: the token is
/// checked at every round boundary and (through the shared gate) per DFS
/// extension inside the successor enumeration, so even a single huge round
/// observes the deadline within [`cr_core::cancel::CHECK_INTERVAL_MS`].
fn run_search_limited_cancellable(
    instance: &Instance,
    round_cap: Option<usize>,
    token: &CancelToken,
) -> Result<Option<Vec<Vec<Node>>>, CancelReason> {
    let _search_span = cr_obs::Span::enter(cr_obs::names::SPAN_OPTM_SEARCH);
    let m = instance.processors();
    let initial = Config::initial(m);
    let mut rounds: Vec<Vec<Node>> = vec![vec![Node {
        config: initial.clone(),
        parent: usize::MAX,
        choice: None,
    }]];

    if initial.is_final(instance) {
        return Ok(Some(rounds));
    }

    let mut gate = token.gate(CHOICE_CHECK_STRIDE);
    let mut filter_gate = token.gate(FILTER_CHECK_STRIDE);
    let max_rounds = instance.total_jobs() + 1;
    let round_limit = round_cap.map_or(max_rounds, |cap| cap.min(max_rounds));
    let mut found_final = false;
    for _round in 0..round_limit {
        token.check()?;
        let _round_span = cr_obs::Span::enter(cr_obs::names::SPAN_OPTM_ROUND);
        crate::obs::optm_rounds().inc();
        // lint: allow(panic_hygiene) — `rounds` is seeded with the initial round before this loop
        let prev = rounds.last().expect("at least the initial round");
        let mut seen: HashMap<Config, usize> = HashMap::new();
        let mut next: Vec<Node> = Vec::new();
        for (parent_idx, node) in prev.iter().enumerate() {
            for (config, choice) in successors_cancellable(instance, &node.config, &mut gate)? {
                if let Some(&existing) = seen.get(&config) {
                    // Exact duplicate: keep the first representative.
                    let _ = existing;
                    continue;
                }
                seen.insert(config.clone(), next.len());
                next.push(Node {
                    config,
                    parent: parent_idx,
                    choice: Some(choice),
                });
            }
        }

        // Remove dominated configurations (Lemma 4 guarantees that among
        // step-equal extended configurations one dominates, so pruning by
        // plain domination keeps an optimal continuation around).
        let mut keep = vec![true; next.len()];
        for a in 0..next.len() {
            filter_gate.tick()?;
            if !keep[a] {
                continue;
            }
            // lint: allow(cancel_coverage) — bounded: pairwise domination scan over one round; the round loop polls token.check() each iteration
            for b in 0..next.len() {
                if a == b || !keep[b] {
                    continue;
                }
                if next[a].config.dominates(&next[b].config) {
                    keep[b] = false;
                }
            }
        }
        crate::obs::optm_round_candidates().add(crate::obs::delta(next.len()));
        let filtered: Vec<Node> = next
            .into_iter()
            .zip(keep)
            .filter_map(|(node, k)| if k { Some(node) } else { None })
            .collect();
        crate::obs::optm_round_survivors().add(crate::obs::delta(filtered.len()));

        let done = filtered.iter().any(|n| n.config.is_final(instance));
        rounds.push(filtered);
        if done {
            found_final = true;
            break;
        }
    }
    if found_final {
        Ok(Some(rounds))
    } else {
        debug_assert!(round_cap.is_some(), "uncapped search must terminate");
        Ok(None)
    }
}

/// The per-candidate check stride for the quadratic dominance filter
/// (each outer iteration scans every other survivor, so checks stay cheap
/// relative to the work between them even at a small stride).
const FILTER_CHECK_STRIDE: u32 = 64;

/// One rational configuration search answering both questions at once:
/// the makespan plus (when requested) the reconstructed schedule, so the
/// solver layer never pays for the exponential search twice.  `None` when
/// `round_cap` cut the search off.
///
/// # Panics
///
/// Panics if the instance contains non-unit job sizes.
#[cfg(test)]
pub(crate) fn solve_rational(
    instance: &Instance,
    round_cap: Option<usize>,
    want_schedule: bool,
) -> Option<(usize, Option<Schedule>)> {
    solve_rational_cancellable(instance, round_cap, want_schedule, &CancelToken::never())
        .expect("a never token cannot fire")
}

/// [`solve_rational`] with cooperative cancellation — `Err` when the token
/// fired mid-search, `Ok(None)` when `round_cap` cut the search off.
///
/// # Panics
///
/// Panics if the instance contains non-unit job sizes.
pub(crate) fn solve_rational_cancellable(
    instance: &Instance,
    round_cap: Option<usize>,
    want_schedule: bool,
    token: &CancelToken,
) -> Result<Option<(usize, Option<Schedule>)>, CancelReason> {
    assert_unit(instance);
    let Some(rounds) = run_search_limited_cancellable(instance, round_cap, token)? else {
        return Ok(None);
    };
    let makespan = if rounds[0][0].config.is_final(instance) {
        0
    } else {
        rounds.len() - 1
    };
    let schedule = want_schedule.then(|| schedule_from_rounds(instance, &rounds));
    Ok(Some((makespan, schedule)))
}

/// The optimal makespan computed by the configuration search.
///
/// Runs on the scaled-integer engine (rayon-parallel round expansion)
/// whenever the instance's requirement denominators admit a `u64` LCM
/// (always, for the families in this repository), and falls back to the
/// exact rational search otherwise — either when scaling overflows or when
/// the engine reports a structured [`crate::SearchError`] because a search
/// round outgrew its `u32` parent-index headroom.
///
/// # Panics
///
/// Panics if the instance contains non-unit job sizes.
#[must_use]
pub fn opt_m_makespan(instance: &Instance) -> usize {
    try_opt_m_makespan(instance).unwrap_or_else(|_| opt_m_makespan_rational(instance))
}

/// Like [`opt_m_makespan`], but surfaces the scaled engine's structured
/// failure instead of silently recovering through the rational search.
///
/// Instances whose denominators do not scale at all still run (and succeed)
/// on the rational path; the only `Err` is a
/// [`SearchError`](crate::SearchError) from the scaled configuration search
/// itself — a round outgrowing the `u32` parent-index headroom — which
/// callers can either report or recover from via
/// [`opt_m_makespan_rational`] (exactly what [`opt_m_makespan`] does).
///
/// # Errors
///
/// [`crate::SearchError::RoundTooLarge`] when a scaled search round holds
/// more nodes than `u32` parent indices can address.
///
/// # Panics
///
/// Panics if the instance contains non-unit job sizes.
pub fn try_opt_m_makespan(instance: &Instance) -> Result<usize, crate::SearchError> {
    assert_unit(instance);
    match ScaledInstance::try_new(instance) {
        Some(scaled) => {
            let rounds = scaled_engine::run_search(&scaled)?;
            Ok(scaled_engine::search_makespan(&scaled, &rounds))
        }
        None => Ok(opt_m_makespan_rational(instance)),
    }
}

/// The original `Ratio`-arithmetic configuration search (reference path).
///
/// Kept verbatim so property tests can cross-check the scaled engine and as
/// the fallback for instances whose denominator LCM overflows `u64`.
///
/// # Panics
///
/// Panics if the instance contains non-unit job sizes.
#[must_use]
pub fn opt_m_makespan_rational(instance: &Instance) -> usize {
    assert_unit(instance);
    let rounds = run_search(instance);
    if rounds[0][0].config.is_final(instance) {
        return 0;
    }
    let last = rounds.len() - 1;
    assert!(
        rounds[last].iter().any(|n| n.config.is_final(instance)),
        "configuration search ended without reaching a final configuration"
    );
    last
}

/// The exact algorithm for an arbitrary fixed number of processors.
///
/// # Examples
///
/// ```
/// use cr_algos::{OptM, Scheduler};
/// use cr_core::Instance;
///
/// let inst = Instance::unit_from_percentages(&[&[60, 40], &[40, 60], &[100]]);
/// assert_eq!(OptM::new().makespan(&inst), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OptM;

impl OptM {
    /// Creates the solver.
    #[must_use]
    pub fn new() -> Self {
        OptM
    }
}

impl Scheduler for OptM {
    fn name(&self) -> &'static str {
        "OptResAssignment2"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        assert_unit(instance);
        if let Some(scaled) = ScaledInstance::try_new(instance) {
            if let Ok(rounds) = scaled_engine::run_search(&scaled) {
                return scaled_engine::search_schedule(instance, &scaled, &rounds);
            }
        }
        schedule_rational(instance)
    }
}

/// Runs the rational configuration search and reconstructs an optimal
/// schedule (the reference / fallback path of [`OptM::schedule`]).
pub(crate) fn schedule_rational(instance: &Instance) -> Schedule {
    schedule_from_rounds(instance, &run_search(instance))
}

/// Reconstructs an optimal schedule from a finished rational search by
/// back-tracing the winner and replaying the per-step decisions.
fn schedule_from_rounds(instance: &Instance, rounds: &[Vec<Node>]) -> Schedule {
    let last = rounds.len() - 1;
    if last == 0 {
        return Schedule::empty();
    }
    let winner = rounds[last]
        .iter()
        .position(|n| n.config.is_final(instance))
        // lint: allow(panic_hygiene) — `last` is set only once its round contains a final configuration
        .expect("search ended on a final configuration");

    // Walk back through the rounds, collecting the per-step decisions.
    let mut choices = Vec::with_capacity(last);
    let mut round = last;
    let mut idx = winner;
    // lint: allow(cancel_coverage) — bounded: the back-trace visits one node per round of the already-gated search
    while round > 0 {
        let node = &rounds[round][idx];
        // lint: allow(panic_hygiene) — only the choice-less initial node lives in round 0, and the walk stops there
        choices.push(node.choice.clone().expect("non-initial node has a choice"));
        idx = node.parent;
        round -= 1;
    }
    choices.reverse();

    // Replay the decisions into an explicit resource assignment.
    let m = instance.processors();
    let mut builder = ScheduleBuilder::new(instance);
    // lint: allow(cancel_coverage) — bounded: replays one already-gated search round per step
    for choice in choices {
        let mut shares = vec![Ratio::ZERO; m];
        // lint: allow(cancel_coverage) — bounded: a choice finishes at most m processors
        for &i in &choice.finished {
            shares[i] = builder.remaining_workload(i);
        }
        if let Some((p, amount)) = choice.partial {
            shares[p] = amount;
        }
        builder.push_step(shares);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_balance::GreedyBalance;
    use crate::opt_two::opt_two_makespan;
    use cr_core::bounds;

    #[test]
    fn matches_two_processor_dp() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]),
            Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]),
            Instance::unit_from_percentages(&[&[100, 1, 100], &[1, 100, 1]]),
            Instance::unit_from_percentages(&[&[25, 75], &[75, 25]]),
        ];
        for inst in instances {
            assert_eq!(opt_m_makespan(&inst), opt_two_makespan(&inst), "{inst}");
        }
    }

    #[test]
    fn three_processor_instances() {
        // Three jobs of 100% on three processors: only one can run per step.
        let inst = Instance::unit_from_percentages(&[&[100], &[100], &[100]]);
        assert_eq!(opt_m_makespan(&inst), 3);

        // Perfectly packable columns.
        let inst = Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]);
        assert_eq!(opt_m_makespan(&inst), 2);

        // The Figure 2 input needs 4 steps (2 + 0.5·4 = 4 total workload, chain 4).
        let inst = Instance::unit_from_percentages(&[&[50, 50, 50, 50], &[100], &[100]]);
        assert_eq!(opt_m_makespan(&inst), 4);
    }

    #[test]
    fn schedule_reconstruction_matches_makespan() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]),
            Instance::unit_from_percentages(&[
                &[20, 10, 10, 10],
                &[50, 55, 90, 55, 10],
                &[50, 40, 95],
            ]),
            Instance::unit_from_percentages(&[&[90, 5], &[80, 15], &[70, 25]]),
        ];
        for inst in instances {
            let value = opt_m_makespan(&inst);
            let schedule = OptM::new().schedule(&inst);
            assert_eq!(schedule.makespan(&inst).unwrap(), value);
            assert!(value >= bounds::trivial_lower_bound(&inst));
            assert!(value <= GreedyBalance::new().makespan(&inst));
        }
    }

    #[test]
    fn optimum_never_exceeds_greedy_and_respects_bounds() {
        let inst = Instance::unit_from_percentages(&[
            &[80, 20, 60],
            &[70, 30, 50],
            &[10, 90, 25],
            &[55, 45, 35],
        ]);
        let opt = opt_m_makespan(&inst);
        let greedy = GreedyBalance::new().makespan(&inst);
        assert!(opt <= greedy);
        assert!(opt >= bounds::trivial_lower_bound(&inst));
        let m = inst.processors() as f64;
        assert!(greedy as f64 <= (2.0 - 1.0 / m) * opt as f64 + 1e-9);
    }

    #[test]
    fn scaled_and_rational_paths_agree() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]),
            Instance::unit_from_percentages(&[&[100], &[100], &[100]]),
            Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]),
            Instance::unit_from_percentages(&[&[0, 100], &[100, 0], &[50, 50]]),
            Instance::unit_from_percentages(&[&[90, 5], &[80, 15], &[70, 25]]),
        ];
        for inst in instances {
            let scaled = opt_m_makespan(&inst);
            let rational = opt_m_makespan_rational(&inst);
            assert_eq!(scaled, rational, "{inst}");
            assert_eq!(OptM::new().schedule(&inst).makespan(&inst).unwrap(), scaled);
        }
    }

    #[test]
    fn try_variant_agrees_with_the_silent_fallback_entry_point() {
        let instances = vec![
            Instance::unit_from_percentages(&[&[60, 40], &[60, 40]]),
            Instance::unit_from_percentages(&[&[50, 20], &[30, 30], &[20, 50]]),
        ];
        for inst in instances {
            assert_eq!(try_opt_m_makespan(&inst).unwrap(), opt_m_makespan(&inst));
        }
    }

    #[test]
    fn forty_processor_oversubscribed_instance_solves_exactly() {
        // 40 simultaneously active processors: 4 oversubscribed heavies
        // (90% each — any two exceed the resource) plus 36 processors whose
        // chains of zero-requirement jobs keep them in the active set.  The
        // pre-ISSUE-4 scaled engine asserted `k < 32`; the rational path
        // shift-overflowed `1u32 << 40` (a debug panic, and a silent wrap to
        // a wrong enumeration in release).
        let mut reqs: Vec<Vec<Ratio>> = vec![vec![Ratio::from_percent(90)]; 4];
        reqs.extend(vec![vec![Ratio::ZERO; 2]; 36]);
        let inst = Instance::unit_from_requirements(reqs);

        // Workload 3.6 rounds up to 4: finish one heavy per step, handing
        // the growing leftover to the next (10, 20, 30 units).
        let scaled = opt_m_makespan(&inst);
        assert_eq!(scaled, 4);
        assert_eq!(opt_m_makespan_rational(&inst), 4);
        assert_eq!(crate::brute_force::brute_force_makespan(&inst), 4);
        let schedule = OptM::new().schedule(&inst);
        assert_eq!(schedule.makespan(&inst).unwrap(), 4);
    }

    #[test]
    fn empty_instance_has_zero_makespan() {
        let inst = cr_core::InstanceBuilder::new()
            .empty_processor()
            .empty_processor()
            .build();
        assert_eq!(opt_m_makespan(&inst), 0);
        assert_eq!(OptM::new().schedule(&inst).num_steps(), 0);
    }

    #[test]
    fn cancelled_rational_search_stops_early() {
        let inst = Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]]);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            solve_rational_cancellable(&inst, None, false, &token),
            Err(CancelReason::Cancelled)
        );
        // A live token reproduces the plain path exactly.
        let live = CancelToken::new();
        assert_eq!(
            solve_rational_cancellable(&inst, None, false, &live).unwrap(),
            solve_rational(&inst, None, false)
        );
    }

    #[test]
    fn domination_is_reflexive_and_ordered() {
        let a = Config {
            completed: vec![2, 1],
            spent: vec![Ratio::ZERO, Ratio::from_percent(30)],
        };
        let b = Config {
            completed: vec![1, 1],
            spent: vec![Ratio::from_percent(90), Ratio::from_percent(10)],
        };
        assert!(a.dominates(&a));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }
}
