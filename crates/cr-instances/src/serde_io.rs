//! JSON (de)serialization of instances, schedules and experiment records.
//!
//! Experiments in `cr-bench` write their measurements as JSON so that the
//! tables of `EXPERIMENTS.md` can be regenerated and post-processed without
//! re-running the harness.

use cr_core::{Instance, Schedule};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// An instance together with a human-readable name and provenance note.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedInstance {
    /// Short identifier (e.g. `"fig3-n100"`).
    pub name: String,
    /// Free-form description of how the instance was generated.
    pub description: String,
    /// The instance itself.
    pub instance: Instance,
}

/// One measurement row of an experiment: algorithm, instance and makespan,
/// plus the best lower bound known for the instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Experiment identifier (`"E3"`, `"fig5"`, …).
    pub experiment: String,
    /// Instance identifier.
    pub instance: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of processors.
    pub processors: usize,
    /// Maximum chain length `n`.
    pub max_chain: usize,
    /// Measured makespan.
    pub makespan: usize,
    /// Lower bound used for the ratio column (optimal value where available).
    pub lower_bound: usize,
}

impl MeasurementRecord {
    /// The approximation ratio implied by the record (makespan over lower
    /// bound), as `f64` for reporting.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.lower_bound == 0 {
            return 1.0;
        }
        self.makespan as f64 / self.lower_bound as f64
    }
}

/// Serializes any serde-serializable value to pretty JSON at `path`.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, text)
}

/// Reads a serde-deserializable value from JSON at `path`.
pub fn read_json<T: for<'de> Deserialize<'de>>(path: &Path) -> io::Result<T> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Writes an instance (with metadata) to `path`.
pub fn write_instance(path: &Path, named: &NamedInstance) -> io::Result<()> {
    write_json(path, named)
}

/// Reads an instance (with metadata) from `path`.
pub fn read_instance(path: &Path) -> io::Result<NamedInstance> {
    read_json(path)
}

/// Serializes a schedule to a JSON string (handy for golden tests and for
/// attaching schedules to experiment reports).
pub fn schedule_to_json(schedule: &Schedule) -> String {
    serde_json::to_string(schedule).expect("schedules always serialize")
}

/// Parses a schedule from its JSON representation.
pub fn schedule_from_json(text: &str) -> serde_json::Result<Schedule> {
    serde_json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::Ratio;

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cr-instances-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn instance_roundtrip_through_file() {
        let dir = tempdir();
        let path = dir.join("instance.json");
        let named = NamedInstance {
            name: "fig1".to_string(),
            description: "Figure 1 running example".to_string(),
            instance: crate::worst_case::figure1_instance(),
        };
        write_instance(&path, &named).unwrap();
        let back = read_instance(&path).unwrap();
        assert_eq!(back, named);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn schedule_roundtrip() {
        let schedule = Schedule::new(vec![vec![Ratio::new(1, 3), Ratio::new(2, 3)]]);
        let json = schedule_to_json(&schedule);
        let back = schedule_from_json(&json).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn measurement_ratio() {
        let record = MeasurementRecord {
            experiment: "E3".into(),
            instance: "fig3-n100".into(),
            algorithm: "RoundRobin".into(),
            processors: 2,
            max_chain: 100,
            makespan: 200,
            lower_bound: 101,
        };
        assert!((record.ratio() - 200.0 / 101.0).abs() < 1e-12);
        let json = serde_json::to_string(&record).unwrap();
        let back: MeasurementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn read_json_reports_missing_files() {
        let missing: io::Result<NamedInstance> =
            read_json(Path::new("/nonexistent/definitely/not/here.json"));
        assert!(missing.is_err());
    }
}
