//! Many-core bus-arbitration scenario: the motivating system of the paper's
//! introduction, reproduced on the synthetic shared-bus simulator.
//!
//! A 16-core chip runs a mix of I/O-bound and compute-bound tasks; the cores
//! share one memory bus.  Four online arbitration policies distribute the bus
//! every time step, and the example reports makespan, bus utilization and
//! per-task slowdown for each policy.
//!
//! Run with:
//! ```text
//! cargo run --example manycore_io
//! ```

use crsharing::instances::{generate_workload, TaskMix, WorkloadConfig};
use crsharing::sim::{standard_policies, Simulator};

fn main() {
    for (label, mix) in [
        ("I/O-bound", TaskMix::IoBound),
        ("mixed", TaskMix::Mixed),
        ("bursty", TaskMix::Bursty),
        ("compute-bound", TaskMix::ComputeBound),
    ] {
        let cfg = WorkloadConfig {
            cores: 16,
            phases_per_task: 12,
            mix,
            denominator: 100,
            unit_phases: true,
        };
        let workload = generate_workload(&cfg, 2024);
        let sim = Simulator::from_instance(&workload);

        println!("=== {label} workload on {} cores ===", cfg.cores);
        println!(
            "    total bus demand {:.1} steps, longest task {} phases",
            workload.total_workload().to_f64(),
            workload.max_chain_length()
        );
        let mut policies = standard_policies();
        for report in sim.compare(&mut policies).expect("simulation completes") {
            println!("    {}", report.summary());
        }
        println!();
    }

    println!(
        "Observation: on bandwidth-bound workloads the balance-aware policy tracks the\n\
         lower bound within 2 − 1/m (Theorem 7), while requirement-oblivious policies\n\
         (EqualShare) and phase-synchronized ones (RoundRobin) leave bus bandwidth unused."
    );
}
