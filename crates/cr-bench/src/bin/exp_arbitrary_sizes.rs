//! E12 — the Section 9 outlook: arbitrary job sizes.  Compares GreedyBalance
//! and RoundRobin on arbitrary-size instances against the trivial lower
//! bound, and checks that splitting integral volumes into unit jobs (which
//! makes the exact algorithms applicable) preserves optimal makespans on
//! small cases.
//!
//! The grid comes from the shared builders in `cr_bench::grids` (the same
//! sweep the `experiments` binary runs) and fans out through the rayon
//! pipeline.

#![forbid(unsafe_code)]

use cr_algos::arbitrary::split_into_unit_jobs;
use cr_algos::{opt_m_makespan, GreedyBalance, Scheduler};
use cr_bench::grids::sized_cells;
use cr_bench::pipeline::Runner;
use cr_core::bounds;
use cr_instances::{random_sized_instance, RandomConfig};

fn main() {
    println!("E12 / Section 9 — arbitrary job sizes\n");

    let runner = Runner::default();
    println!(
        "{}",
        runner
            .run_table(
                "Arbitrary-size instances (vs. trivial lower bound)",
                &sized_cells(3)
            )
            .to_markdown()
    );

    // Unit-splitting sanity check on tiny instances: the unit-size optimum of
    // the split instance is a valid makespan for the original as well.
    println!("unit-splitting check (integral volumes):");
    for seed in 0..5u64 {
        let instance = random_sized_instance(&RandomConfig::uniform(3, 2), 2, seed);
        let split = split_into_unit_jobs(&instance).expect("integral volumes");
        let opt_split = opt_m_makespan(&split);
        let greedy_orig = GreedyBalance::new().makespan(&instance);
        let lb = bounds::trivial_lower_bound(&instance);
        println!(
            "  seed {seed}: unit-split optimum {opt_split:>3}   GreedyBalance on original {greedy_orig:>3}   lower bound {lb:>3}"
        );
        assert!(opt_split >= lb);
    }
    println!(
        "\npaper: the analysis is stated for unit-size jobs; the authors conjecture that the\n\
         results transfer to arbitrary sizes (Section 9).  The measurements above are the\n\
         empirical side of that conjecture: the same algorithms remain feasible and close to\n\
         the lower bound."
    );
}
