//! E6 — verifies Theorem 5 empirically: `OptResAssignment` (the O(n²) DP for
//! two processors) matches the brute-force optimum on many small random
//! instances, its dense and sparse variants agree everywhere, and the
//! reconstructed schedules achieve the claimed makespan.
//!
//! The verification sweep fans out through `cr_bench::pipeline::par_check`.

#![forbid(unsafe_code)]

use cr_algos::{
    brute_force_makespan, opt_two_makespan, opt_two_makespan_sparse, OptTwo, Scheduler,
};
use cr_bench::pipeline::par_check;
use cr_instances::{random_unit_instance, RandomConfig, RequirementProfile};

fn main() {
    println!("E6 / Theorem 5 — OptResAssignment (m = 2) verification\n");

    let profiles = [
        ("uniform", RequirementProfile::Uniform),
        ("heavy", RequirementProfile::Heavy),
        ("light", RequirementProfile::Light),
        (
            "bimodal",
            RequirementProfile::Bimodal {
                heavy_probability: 0.4,
            },
        ),
    ];

    // Part 1: optimality against brute force on small instances — one
    // independent check per (profile, n, seed) point, fanned out in parallel.
    let mut points = Vec::new();
    for (name, profile) in profiles {
        for n in 2..=6usize {
            for seed in 0..20u64 {
                points.push((name, profile, n, seed));
            }
        }
    }
    let failures = par_check(&points, |&(name, profile, n, seed)| {
        let cfg = RandomConfig {
            profile,
            ..RandomConfig::uniform(2, n)
        };
        let instance = random_unit_instance(&cfg, 1000 * n as u64 + seed);
        let dp = opt_two_makespan(&instance);
        let sparse = opt_two_makespan_sparse(&instance);
        let brute = brute_force_makespan(&instance);
        let schedule_makespan = OptTwo::new().makespan(&instance);
        if dp != brute {
            return Err(format!(
                "DP vs brute force mismatch ({name}, n={n}, seed={seed})"
            ));
        }
        if dp != sparse {
            return Err(format!(
                "dense vs sparse mismatch ({name}, n={n}, seed={seed})"
            ));
        }
        if dp != schedule_makespan {
            return Err(format!(
                "schedule reconstruction mismatch ({name}, n={n}, seed={seed})"
            ));
        }
        Ok(())
    });
    assert!(
        failures.is_empty(),
        "verification failures:\n{}",
        failures.join("\n")
    );
    println!(
        "optimality: {} random instances verified against brute force — all equal\n",
        points.len()
    );

    // Part 2: the DP scales quadratically; report table sizes and wall time.
    println!("{:>8} {:>12} {:>14}", "n", "makespan", "time (ms)");
    for n in [100usize, 200, 400, 800, 1600, 3200] {
        let instance = random_unit_instance(&RandomConfig::uniform(2, n), 7);
        let start = std::time::Instant::now();
        let makespan = opt_two_makespan(&instance);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!("{n:>8} {makespan:>12} {elapsed:>14.2}");
    }
    println!("\npaper: Theorem 5 — the DP is optimal and runs in O(n²) time.");
}
