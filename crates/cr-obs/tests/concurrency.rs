//! Concurrency properties of the registry, under proptest-driven thread
//! schedules:
//!
//! * **monotonicity** — counter values never decrease across successive
//!   snapshots taken while writers are running;
//! * **snapshot consistency** — writers bump the `*.total` counter
//!   *before* the per-part counters, and a snapshot reads names in
//!   alphabetical order (parts sort before `total`), so no snapshot ever
//!   shows `sum(parts) > total`, even mid-run;
//! * **quiescent agreement** — after every writer joins,
//!   `sum(parts) == total` exactly.
//!
//! Everything runs on a *local* [`Registry`], so the suite neither
//! pollutes nor races the process-global one.

use cr_obs::{MetricValue, Registry, Snapshot};
use proptest::prelude::*;

/// Reads a counter out of a snapshot (0 when absent, as under `obs-off`).
fn counter(snapshot: &Snapshot, name: &str) -> u64 {
    snapshot
        .metrics
        .iter()
        .find(|m| m.name == name)
        .map_or(0, |m| match m.value {
            MetricValue::Counter(v) => v,
            _ => 0,
        })
}

/// Sum of the per-part counters `t.part.<i>`.
fn part_sum(snapshot: &Snapshot, parts: usize) -> u64 {
    (0..parts)
        .map(|i| counter(snapshot, &format!("t.part.{i}")))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshots_stay_monotone_and_parts_never_outrun_total(
        threads in 2usize..=4,
        ops in 16usize..=96,
        parts in 2usize..=3,
        probes in 4usize..=16,
    ) {
        let registry = Registry::new();
        // Pre-register so every probe sees the same metric set.
        let total = registry.counter("t.total");
        let part_handles: Vec<_> = (0..parts)
            .map(|i| registry.counter(&format!("t.part.{i}")))
            .collect();

        std::thread::scope(|scope| {
            for t in 0..threads {
                let total = total.clone();
                let part_handles = part_handles.clone();
                scope.spawn(move || {
                    for i in 0..ops {
                        // Total first, part second: the order the
                        // snapshot-consistency invariant rests on.
                        total.inc();
                        part_handles[(t + i) % part_handles.len()].inc();
                    }
                });
            }

            // Probe concurrently with the writers.
            let mut last_total = 0u64;
            let mut last_parts = vec![0u64; parts];
            for _ in 0..probes {
                let snapshot = registry.snapshot();
                let seen_total = counter(&snapshot, "t.total");
                prop_assert!(seen_total >= last_total, "total went backwards");
                last_total = seen_total;
                for (i, last) in last_parts.iter_mut().enumerate() {
                    let seen = counter(&snapshot, &format!("t.part.{i}"));
                    prop_assert!(seen >= *last, "part {i} went backwards");
                    *last = seen;
                }
                prop_assert!(
                    part_sum(&snapshot, parts) <= seen_total,
                    "a snapshot showed the parts ahead of the total"
                );
                std::thread::yield_now();
            }
            Ok(())
        })?;

        // Quiescence: everything joined, the books must balance.
        let snapshot = registry.snapshot();
        let expected = if registry.enabled() {
            (threads * ops) as u64
        } else {
            0 // obs-off build: recording is compiled out entirely.
        };
        prop_assert_eq!(counter(&snapshot, "t.total"), expected);
        prop_assert_eq!(part_sum(&snapshot, parts), expected);
    }

    #[test]
    fn concurrent_histogram_observations_are_all_accounted(
        threads in 2usize..=4,
        ops in 16usize..=64,
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("t.lat", &[10, 100, 1000]);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..ops {
                        hist.observe((t * ops + i) as u64);
                    }
                });
            }
        });
        let snapshot = hist.snapshot();
        if registry.enabled() {
            let n = (threads * ops) as u64;
            prop_assert_eq!(snapshot.count, n);
            prop_assert_eq!(snapshot.counts.iter().sum::<u64>(), n);
            prop_assert_eq!(snapshot.max, (threads * ops - 1) as u64);
            // Sum of 0..threads*ops.
            prop_assert_eq!(snapshot.sum, n * (n - 1) / 2);
        } else {
            prop_assert_eq!(snapshot.count, 0);
        }
    }
}
