//! Baseline heuristics.
//!
//! The discrete-continuous scheduling literature surveyed in Section 2 of the
//! paper mostly relies on heuristics without worst-case guarantees.  The
//! heuristics in this module play that role in the experiment harness: they
//! are natural resource-arbitration policies a practitioner might deploy on a
//! shared-bus many-core, and the benchmarks compare them against the paper's
//! algorithms.
//!
//! * [`EqualShare`] — split the resource uniformly among active processors,
//!   ignoring requirements entirely (wastes whatever a job cannot absorb).
//! * [`ProportionalShare`] — split the resource proportionally to the active
//!   jobs' current step demands.
//! * [`LargestRequirementFirst`] — serve active jobs in order of decreasing
//!   remaining requirement (a "clear the big rocks first" greedy).
//! * [`SmallestRequirementFirst`] — serve active jobs in order of increasing
//!   remaining requirement (maximizes the number of jobs finished per step;
//!   this is the schedule depicted in Figure 1 of the paper).

use crate::traits::Scheduler;
use cr_core::{Instance, Ratio, Schedule, ScheduleBuilder};

/// Grid used to quantize the shares of the requirement-oblivious heuristics,
/// so that long schedules keep bounded denominators in the exact arithmetic
/// (see `cr_core::Ratio::floor_to_denominator`).
const SHARE_GRID: i128 = 100_000;

/// Splits the resource uniformly among all active processors.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualShare;

impl EqualShare {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        EqualShare
    }
}

impl Scheduler for EqualShare {
    fn name(&self) -> &'static str {
        "EqualShare"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(instance);
        while !builder.all_done() {
            let active: Vec<usize> = (0..m).filter(|&i| builder.is_active(i)).collect();
            let share = Ratio::new(1, active.len() as i128).floor_to_denominator(SHARE_GRID);
            let mut shares = vec![Ratio::ZERO; m];
            for &i in &active {
                // The uniform share is handed out regardless of the job's
                // demand; anything the job cannot absorb is wasted.
                shares[i] = share;
            }
            builder.push_step(shares);
        }
        builder.finish()
    }
}

/// Splits the resource proportionally to the active jobs' step demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalShare;

impl ProportionalShare {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        ProportionalShare
    }
}

impl Scheduler for ProportionalShare {
    fn name(&self) -> &'static str {
        "ProportionalShare"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        let m = instance.processors();
        let mut builder = ScheduleBuilder::new(instance);
        while !builder.all_done() {
            let demands: Vec<Ratio> = (0..m).map(|i| builder.step_demand(i)).collect();
            let total: Ratio = demands.iter().sum();
            let mut shares = vec![Ratio::ZERO; m];
            if total <= Ratio::ONE {
                // Everything fits: give every job exactly what it needs.
                shares.clone_from_slice(&demands);
            } else {
                for i in 0..m {
                    shares[i] = (demands[i] / total).floor_to_denominator(SHARE_GRID);
                }
            }
            builder.push_step(shares);
        }
        builder.finish()
    }
}

/// Serves active jobs in order of decreasing remaining requirement.
#[derive(Debug, Clone, Copy, Default)]
pub struct LargestRequirementFirst;

impl LargestRequirementFirst {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        LargestRequirementFirst
    }
}

/// Serves active jobs in order of increasing remaining requirement,
/// greedily maximizing the number of jobs finished per step (the schedule of
/// Figure 1 in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallestRequirementFirst;

impl SmallestRequirementFirst {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Self {
        SmallestRequirementFirst
    }
}

fn serve_in_order(instance: &Instance, order_desc: bool) -> Schedule {
    let m = instance.processors();
    let mut builder = ScheduleBuilder::new(instance);
    while !builder.all_done() {
        let mut order: Vec<usize> = (0..m).filter(|&i| builder.is_active(i)).collect();
        order.sort_by(|&a, &b| {
            let cmp = builder
                .remaining_workload(a)
                .cmp(&builder.remaining_workload(b));
            let cmp = if order_desc { cmp.reverse() } else { cmp };
            cmp.then_with(|| a.cmp(&b))
        });
        let mut shares = vec![Ratio::ZERO; m];
        let mut left = Ratio::ONE;
        for i in order {
            if left.is_zero() {
                break;
            }
            let give = builder.step_demand(i).min(left);
            shares[i] = give;
            left -= give;
        }
        builder.push_step(shares);
    }
    builder.finish()
}

impl Scheduler for LargestRequirementFirst {
    fn name(&self) -> &'static str {
        "LargestRequirementFirst"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        serve_in_order(instance, true)
    }
}

impl Scheduler for SmallestRequirementFirst {
    fn name(&self) -> &'static str {
        "SmallestRequirementFirst"
    }

    fn schedule(&self, instance: &Instance) -> Schedule {
        serve_in_order(instance, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::bounds;
    use cr_core::properties::{is_non_wasting, is_progressive};

    fn sample_instances() -> Vec<Instance> {
        vec![
            Instance::unit_from_percentages(&[
                &[20, 10, 10, 10],
                &[50, 55, 90, 55, 10],
                &[50, 40, 95],
            ]),
            Instance::unit_from_percentages(&[&[100], &[100], &[100]]),
            Instance::unit_from_percentages(&[&[25, 75], &[75, 25], &[50, 50]]),
            Instance::unit_from_percentages(&[&[0, 50], &[100, 0]]),
        ]
    }

    #[test]
    fn all_heuristics_produce_feasible_schedules() {
        let heuristics: Vec<Box<dyn Scheduler>> = vec![
            Box::new(EqualShare::new()),
            Box::new(ProportionalShare::new()),
            Box::new(LargestRequirementFirst::new()),
            Box::new(SmallestRequirementFirst::new()),
        ];
        for inst in sample_instances() {
            for h in &heuristics {
                let schedule = h.schedule(&inst);
                let trace = schedule.trace(&inst).unwrap();
                assert!(
                    trace.makespan() >= bounds::trivial_lower_bound(&inst).min(trace.makespan()),
                    "{} produced impossible makespan",
                    h.name()
                );
            }
        }
    }

    #[test]
    fn priority_heuristics_are_non_wasting_and_progressive() {
        for inst in sample_instances() {
            for h in [
                Box::new(LargestRequirementFirst::new()) as Box<dyn Scheduler>,
                Box::new(SmallestRequirementFirst::new()),
            ] {
                let trace = h.schedule(&inst).trace(&inst).unwrap();
                assert!(is_non_wasting(&trace), "{}", h.name());
                assert!(is_progressive(&trace), "{}", h.name());
            }
        }
    }

    #[test]
    fn smallest_first_reproduces_figure1_makespan() {
        let inst = Instance::unit_from_percentages(&[
            &[20, 10, 10, 10],
            &[50, 55, 90, 55, 10],
            &[50, 40, 95],
        ]);
        assert_eq!(SmallestRequirementFirst::new().makespan(&inst), 6);
    }

    #[test]
    fn equal_share_can_be_wasteful_but_is_feasible() {
        // Two processors, requirements 100% and 10%: the uniform split gives
        // each 50%, wasting 40% on the small job.
        let inst = Instance::unit_from_percentages(&[&[100], &[10]]);
        let schedule = EqualShare::new().schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 2);
        // GreedyBalance-style serving would have finished in 2 steps as well,
        // but EqualShare needs 2 steps even though total workload is 1.1.
        assert!(!is_non_wasting(&trace) || trace.makespan() == 2);
    }

    #[test]
    fn proportional_share_finishes_exact_fits_in_one_step() {
        let inst = Instance::unit_from_percentages(&[&[40], &[60]]);
        assert_eq!(ProportionalShare::new().makespan(&inst), 1);
    }

    #[test]
    fn proportional_share_scales_down_when_oversubscribed() {
        let inst = Instance::unit_from_percentages(&[&[80], &[80]]);
        let schedule = ProportionalShare::new().schedule(&inst);
        // Each job gets 1/2 per step; they need 80% → finish in step 1 (second).
        assert_eq!(schedule.makespan(&inst).unwrap(), 2);
        assert_eq!(schedule.share(0, 0), Ratio::new(1, 2));
    }
}
