//! # cr-sim — a discrete-time many-core shared-bus simulator
//!
//! The paper motivates the CRSharing model with many-core processors whose
//! cores share one memory/I-O bus: when tasks are I/O-bound, the *bandwidth
//! distribution* — not core speed — decides how fast the machine computes.
//! The paper never measures such a platform; this crate provides the
//! synthetic stand-in.  Cores run multi-phase [`Task`]s, a bus arbiter
//! ([`OnlinePolicy`]) splits the bus every time step, and the engine collects
//! makespan, utilization and slowdown metrics.  Every simulation step follows
//! the exact CRSharing semantics on the scaled-integer grid (via
//! `cr_core::ScaledScheduleBuilder`): the bus is a pool of integer bandwidth
//! units, policies answer in units — like a hardware credit-based arbiter —
//! and all consumption/waste metrics are exact.  Simulation results are
//! bit-for-bit CRSharing schedules, directly comparable to the offline
//! algorithms and bounds of `cr-algos`/`cr-core`.  The [`solver`] module
//! exposes every policy through the unified `cr_algos::solver::Solver`
//! interface (with optional per-core arrival traces), so online and offline
//! methods are selectable from one registry ([`full_registry`]).
//! Multi-resource workloads (`k ≥ 2` shared resources) run through
//! [`Simulator::run_multi`]: every built-in policy lifts layer by layer via
//! [`OnlinePolicy::allocate_multi`], and the run reports exact per-resource
//! consumption and waste in a [`MultiSimReport`].
//!
//! ```
//! use cr_sim::{Simulator, GreedyBalancePolicy};
//! use cr_instances::{generate_workload, WorkloadConfig};
//!
//! let workload = generate_workload(&WorkloadConfig::default(), 42);
//! let sim = Simulator::from_instance(&workload);
//! let outcome = sim.run(&mut GreedyBalancePolicy).unwrap();
//! assert!(outcome.report.makespan >= outcome.report.lower_bound);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod obs;
pub mod policies;
pub mod solver;
pub mod task;

pub use engine::{SimError, SimOutcome, Simulator};
pub use metrics::{CoreReport, MultiSimReport, SimReport};
pub use policies::{
    standard_policies, CoreView, EqualSharePolicy, GreedyBalancePolicy, MultiCoreView,
    OnlinePolicy, ProportionalSharePolicy, RoundRobinPolicy,
};
pub use solver::{full_registry, register_online, OnlinePolicySolver, ONLINE_METHODS};
pub use task::{instance_to_tasks, tasks_to_instance, Phase, Task};
