//! End-to-end tests over the committed fixture workspaces: the good tree
//! must come back clean, the bad tree must trip every rule (and the
//! suppression checker), and the installed binary's exit codes and JSON
//! artifact must match what CI relies on.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

const EVERY_RULE: [&str; 6] = [
    "cancel_coverage",
    "panic_hygiene",
    "lock_discipline",
    "vocab_sync",
    "crate_hygiene",
    "suppression",
];

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn good_workspace_is_clean() {
    let report = cr_lint::run(&fixture("good_workspace")).expect("fixture root is a workspace");
    assert!(
        report.is_clean(),
        "unexpected findings: {:#?}",
        report.diagnostics
    );
    assert_eq!(report.files_scanned, 7);
}

#[test]
fn bad_workspace_trips_every_rule() {
    let report = cr_lint::run(&fixture("bad_workspace")).expect("fixture root is a workspace");
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in EVERY_RULE {
        assert!(
            fired.contains(rule),
            "rule `{rule}` did not fire on the bad fixture: {:#?}",
            report.diagnostics
        );
    }
    // Spot-check one finding end to end: the ungated `while` loop, with a
    // rustc-style path:line anchor.
    assert!(
        report.diagnostics.iter().any(|d| {
            d.path == "crates/cr-algos/src/scaled_engine.rs"
                && d.line == 7
                && d.rule == "cancel_coverage"
        }),
        "missing the ungated-loop finding: {:#?}",
        report.diagnostics
    );
    // Both directions of vocabulary drift are reported.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "vocab_sync" && d.message.contains("deadline_exceeded")));
    assert!(report.diagnostics.iter().any(|d| d.rule == "vocab_sync"
        && d.path == "docs/WIRE.md"
        && d.message.contains("gone_kind")));
    // Both directions of observability-catalog drift are reported too.
    assert!(report.diagnostics.iter().any(|d| d.rule == "vocab_sync"
        && d.path == "crates/cr-obs/src/names.rs"
        && d.message.contains("optm.rounds")));
    assert!(report.diagnostics.iter().any(|d| d.rule == "vocab_sync"
        && d.path == "docs/OBSERVABILITY.md"
        && d.message.contains("ghost.metric")));
}

#[test]
fn nonexistent_root_is_an_error() {
    assert!(cr_lint::run(Path::new("/nonexistent/not-a-workspace")).is_err());
}

#[test]
fn binary_exits_zero_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_cr-lint"))
        .arg("--root")
        .arg(fixture("good_workspace"))
        .output()
        .expect("run cr-lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn binary_exits_one_and_names_rules_on_the_bad_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_cr-lint"))
        .arg("--root")
        .arg(fixture("bad_workspace"))
        .output()
        .expect("run cr-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in EVERY_RULE {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "text output does not name `{rule}`:\n{stdout}"
        );
    }
}

#[test]
fn binary_json_artifact_carries_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_cr-lint"))
        .arg("--json")
        .arg("--root")
        .arg(fixture("bad_workspace"))
        .output()
        .expect("run cr-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in EVERY_RULE {
        assert!(
            stdout.contains(&format!("\"rule\": \"{rule}\"")),
            "JSON output does not name `{rule}`:\n{stdout}"
        );
    }
    assert!(stdout.contains("\"files_scanned\": 7"));
}

#[test]
fn binary_exits_two_on_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_cr-lint"))
        .arg("--bogus-flag")
        .output()
        .expect("run cr-lint");
    assert_eq!(out.status.code(), Some(2));
}
